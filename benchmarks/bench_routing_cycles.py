"""E14 (ablation) — the per-router routing time Ri.

The paper states Ri is "at least 7 clock cycles" in their control logic.
This ablation quantifies what that control-logic depth costs: unloaded
latency grows linearly with routing_cycles (slope n, the closed form's
per-hop term) and saturation throughput falls, since every packet
occupies the centralised control for Ri cycles per hop.
"""

import pytest

from conftest import report
from repro.analysis import hops, measure_point, mesh_factory, model_latency
from repro.noc import HermesNetwork

RCS = [1, 3, 7, 11]


def unloaded_latency(rc):
    net = HermesNetwork(4, 4, routing_cycles=rc)
    sim = net.make_simulator()
    net.send((0, 0), (3, 3), [0xAA] * 8)
    net.run_to_drain(sim, max_cycles=100_000)
    return net.collect_received()[0].latency


def test_routing_cycles_ablation(benchmark):
    def run():
        latencies = {rc: unloaded_latency(rc) for rc in RCS}
        throughputs = {
            rc: measure_point(
                mesh_factory(4, 4, routing_cycles=rc), rate=0.08, duration=1200
            ).accepted_flits_per_cycle
            for rc in RCS
        }
        return latencies, throughputs

    latencies, throughputs = benchmark(run)
    n = hops((0, 0), (3, 3))
    rows = []
    for rc in RCS:
        rows.append(
            (
                f"Ri={rc}: unloaded latency / accepted f/c",
                f"model {model_latency(n, 10, rc)} / (falls with Ri)",
                f"{latencies[rc]} / {throughputs[rc]:.2f}",
            )
        )
    report(benchmark, "E14 routing-time (Ri) ablation", rows)

    for rc in RCS:
        assert latencies[rc] == model_latency(n, 10, routing_cycles=rc)
    # latency slope in Ri is exactly the hop count
    assert latencies[11] - latencies[7] == 4 * n
    # cheaper control logic buys throughput
    series = [throughputs[rc] for rc in RCS]
    assert series == sorted(series, reverse=True)
    assert throughputs[1] > 1.3 * throughputs[11]
