"""Kernel scheduling benchmark: quiescence-aware vs strict lock-step.

The simulator's quiescence-aware scheduler (see DESIGN.md, "Simulation
kernel") only evaluates components that have work and fast-forwards the
cycle counter over fully idle spans.  This benchmark measures the three
regimes that bound its behaviour:

* **idle** — a launched platform sitting quiet: every unit is asleep,
  the kernel should fast-forward and the cycles/second rate must be at
  least 2x the strict lock-step rate (CI gate; in practice it is
  orders of magnitude higher).
* **saturated** — a mesh under heavy synthetic traffic: nothing can
  sleep, so the quiescent path must not cost materially more than
  lock-step (its overhead is the per-unit awake check).
* **mixed** — bursty traffic with idle gaps, the realistic middle.

All three scenarios also double as equivalence checks: delivered packet
counts and final cycle numbers must match bit-for-bit across modes.
"""

import time

from conftest import report
from repro.apps.workloads import TrafficConfig, drive_traffic
from repro.core import MultiNoCPlatform
from repro.noc.network import HermesNetwork

IDLE_CYCLES = 100_000


def _rate(cycles, seconds):
    return cycles / seconds if seconds > 0 else float("inf")


def _time_idle(strict):
    session = MultiNoCPlatform.standard().launch(strict_lockstep=strict)
    sim = session.sim
    start = sim.cycle
    t0 = time.perf_counter()
    sim.step(IDLE_CYCLES)
    dt = time.perf_counter() - t0
    assert sim.cycle - start == IDLE_CYCLES
    return dt


def _time_traffic(strict, rate, duration):
    net = HermesNetwork(3, 3)
    sim = net.make_simulator(strict_lockstep=strict)
    sources = drive_traffic(
        net, TrafficConfig(pattern="uniform", rate=rate, duration=duration)
    )
    sim.reset()
    t0 = time.perf_counter()
    sim.run_until(
        lambda: all(s.done for s in sources) and net.drained,
        max_cycles=duration * 50,
        label="traffic drain",
    )
    dt = time.perf_counter() - t0
    delivered = len(net.collect_received())
    return dt, sim.cycle, delivered


def test_kernel_idle_fast_forward(benchmark):
    """Idle platform: the quiescent kernel must be >=2x faster (CI gate)."""

    def both():
        return _time_idle(strict=True), _time_idle(strict=False)

    strict_dt, quiescent_dt = benchmark(both)
    strict_rate = _rate(IDLE_CYCLES, strict_dt)
    quiescent_rate = _rate(IDLE_CYCLES, quiescent_dt)
    speedup = quiescent_rate / strict_rate
    report(
        benchmark,
        "Kernel idle throughput (fast-forward)",
        [
            ("strict lock-step (cycles/s)", "(baseline)", f"{strict_rate:,.0f}"),
            ("quiescent (cycles/s)", ">=2x strict", f"{quiescent_rate:,.0f}"),
            ("idle speedup", ">=2x (CI gate)", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 2.0, (
        f"quiescent idle stepping must be at least 2x strict lock-step, "
        f"got {speedup:.2f}x"
    )


def test_kernel_saturated_throughput(benchmark):
    """Saturated mesh: every unit busy, quiescent overhead must be small."""

    def both():
        s = _time_traffic(strict=True, rate=0.25, duration=2000)
        q = _time_traffic(strict=False, rate=0.25, duration=2000)
        return s, q

    (s_dt, s_cyc, s_pkts), (q_dt, q_cyc, q_pkts) = benchmark(both)
    assert (s_cyc, s_pkts) == (q_cyc, q_pkts), "modes must agree bit-for-bit"
    ratio = _rate(q_cyc, q_dt) / _rate(s_cyc, s_dt)
    report(
        benchmark,
        "Kernel saturated throughput (nothing can sleep)",
        [
            ("packets delivered", "identical", f"{q_pkts} (both modes)"),
            ("drain cycles", "identical", f"{q_cyc} (both modes)"),
            ("strict (cycles/s)", "(baseline)", f"{_rate(s_cyc, s_dt):,.0f}"),
            ("quiescent (cycles/s)", "~1x strict", f"{_rate(q_cyc, q_dt):,.0f}"),
            ("quiescent/strict", ">=0.5x", f"{ratio:.2f}x"),
        ],
    )
    assert ratio >= 0.5, "quiescent bookkeeping must not halve throughput"


def test_kernel_mixed_duty_cycle(benchmark):
    """Bursty traffic with idle gaps: the realistic regime in between."""

    def both():
        s = _time_traffic(strict=True, rate=0.002, duration=20_000)
        q = _time_traffic(strict=False, rate=0.002, duration=20_000)
        return s, q

    (s_dt, s_cyc, s_pkts), (q_dt, q_cyc, q_pkts) = benchmark(both)
    assert (s_cyc, s_pkts) == (q_cyc, q_pkts), "modes must agree bit-for-bit"
    speedup = _rate(q_cyc, q_dt) / _rate(s_cyc, s_dt)
    report(
        benchmark,
        "Kernel mixed duty cycle (bursts + idle gaps)",
        [
            ("packets delivered", "identical", f"{q_pkts} (both modes)"),
            ("strict (cycles/s)", "(baseline)", f"{_rate(s_cyc, s_dt):,.0f}"),
            ("quiescent (cycles/s)", "(faster)", f"{_rate(q_cyc, q_dt):,.0f}"),
            ("mixed speedup", ">1x", f"{speedup:.2f}x"),
        ],
    )
    assert speedup > 1.0, "idle gaps must make the quiescent path faster"
