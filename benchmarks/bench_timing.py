"""E6 — Section 3: timing analysis estimated 21.23 MHz; the 50 MHz
board clock was divided by two with a clkdll and the system ran at
25 MHz anyway ("the circuit worked correctly").
"""

import pytest

from conftest import report
from repro.fpga import prototype


def test_timing_estimate_and_clock_plan(benchmark):
    rep = benchmark(lambda: prototype(anneal_iterations=2500, seed=1))
    report(
        benchmark,
        "E6 timing estimate and clocking",
        [
            ("estimated Fmax", "21.23 MHz", f"{rep.timing.fmax_mhz:.2f} MHz"),
            ("critical path", "47.1 ns", f"{rep.timing.critical_path_ns:.2f} ns"),
            ("clkdll division", "50 MHz / 2", f"50 MHz / {rep.clock.division}"),
            ("operating clock", "25 MHz", f"{rep.clock.output_mhz:.0f} MHz"),
            ("runs above the estimate", "yes (worked anyway)",
             not rep.clock.meets_timing),
        ],
    )
    assert rep.timing.fmax_mhz == pytest.approx(21.23, abs=1.5)
    assert rep.clock.division == 2
    assert rep.clock.output_mhz == pytest.approx(25.0)
    # the paper's gamble: the chosen clock exceeds the static estimate
    assert not rep.clock.meets_timing
