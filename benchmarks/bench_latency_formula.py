"""E1 — Section 2.1 latency formula: latency = (sum Ri + P) x 2.

Sweeps hop count and payload size on an idle mesh and compares the
measured injection-to-delivery latency against (a) this simulator's
exact closed form and (b) the paper's formula.
"""

import pytest

from conftest import report
from repro.analysis import hops, model_latency, paper_latency
from repro.noc import HermesNetwork


def measure_latency(src, dst, payload_flits, routing_cycles=7):
    net = HermesNetwork(5, 5, routing_cycles=routing_cycles)
    sim = net.make_simulator()
    net.send(src, dst, [0xAA] * payload_flits)
    net.run_to_drain(sim, max_cycles=100_000)
    return net.collect_received()[0].latency


SWEEP = [
    ((0, 0), (1, 0), 4),
    ((0, 0), (3, 0), 4),
    ((0, 0), (4, 4), 4),
    ((0, 0), (2, 2), 16),
    ((0, 0), (2, 2), 64),
]


def test_latency_formula(benchmark):
    def run_sweep():
        return [
            (src, dst, p, measure_latency(src, dst, p)) for src, dst, p in SWEEP
        ]

    results = benchmark(run_sweep)
    rows = []
    for src, dst, payload, measured in results:
        n = hops(src, dst)
        packet = payload + 2
        exact = model_latency(n, packet)
        paper = paper_latency(n, packet)
        rows.append(
            (
                f"n={n} P={packet}",
                f"{paper} (formula)",
                f"{measured} (model {exact})",
            )
        )
        assert measured == exact, "simulator must match its closed form"
        # same shape: linear, identical payload slope, within ~35% of the
        # paper's absolute numbers at Ri=7
        assert measured <= paper <= measured * 1.5
    report(benchmark, "E1 latency = (sum Ri + P) x 2", rows)


def test_latency_formula_equivalent_ri(benchmark):
    """With routing_cycles=11 (the paper's 2xRi accounting at Ri=7) the
    absolute numbers match the formula within a 3-cycle constant."""

    def run():
        out = []
        for src, dst, payload in SWEEP:
            out.append(
                (src, dst, payload, measure_latency(src, dst, payload, 11))
            )
        return out

    results = benchmark(run)
    rows = []
    for src, dst, payload, measured in results:
        n = hops(src, dst)
        paper = paper_latency(n, payload + 2)
        rows.append((f"n={n} P={payload + 2}", paper, measured))
        assert abs(measured - paper) <= 3
    report(benchmark, "E1b latency with equivalent Ri", rows)
