"""Live observation plane overhead on the edge detection workload.

The observation plane's contract is "watchable for (nearly) free": a
:class:`~repro.telemetry.live.LiveStream` folding frames every stride
must not meaningfully slow the simulation it observes.  This benchmark
runs the full parallel edge detection flow (launch + deploy + Sobel on
two processors) unobserved and again with a live stream, an in-process
subscriber and a rendering :class:`~repro.telemetry.top.MeshTop`
attached, and gates the wall-clock overhead at 15% — the same bound CI
enforces through the benchmarks job.

The two sides run as interleaved pairs and each takes its minimum, so
neither a single scheduler hiccup nor slow machine-wide drift (thermal,
noisy CI neighbours) lands on one side only.  The observed run's results
are asserted bit-identical to the unobserved run (cycle count and
output image), so the overhead being measured cannot come from
divergent behaviour.
"""

import io
import random
import tempfile
import time

from conftest import report
from repro.apps import EdgeDetectionApp, reference_sobel
from repro.core import MultiNoCPlatform
from repro.telemetry import MeshTop, RunRegistry

#: CI gate: live observation may cost at most this fraction of runtime
MAX_OVERHEAD = 0.15

#: CI gate: appending one run record may cost at most this fraction
MAX_RECORD_OVERHEAD = 0.02

#: CI gate: evaluating alert/SLO rules may cost at most this fraction
#: on top of the live stream they subscribe to
MAX_ALERT_OVERHEAD = 0.03

#: CI gate: the sampling host profiler may cost at most this fraction
#: (ISSUE 10 acceptance criterion: <= 5% wall-clock overhead)
MAX_HOSTPERF_OVERHEAD = 0.05

#: frame cadence: the LiveStream default, still dozens of frames here
STRIDE = 1024

#: representative rule mix: vector + regex matcher, scalar thresholds,
#: a for-duration, a string comparison and an SLO with burn-rate alert
ALERT_RULES = """
alert link_hot
    expr: link_util{link=~".*"} > 0.9
    for: 2048
    severity: page
    annotation: link {{link}} utilisation {{value}}

alert queue_deep
    expr: router_occupancy > 12
    for: 1024

alert mesh_stalled
    expr: throughput < 0.00001
    for: 8192

alert cpu_wedged
    expr: cpu_state{cpu=~"proc.*"} == "illegal"

alert health_violating
    expr: health == violating

slo delivery_latency
    expr: latency_p99 <= 200
    target: 0.95
    window: 16384
    burn: 4.0
"""


def make_image(height=6, width=16, seed=11):
    rng = random.Random(seed)
    return [[rng.randrange(256) for _ in range(width)] for _ in range(height)]


def run_flow(observe: bool):
    """One full edge detection flow; returns (seconds, cycles, frames)."""
    image = make_image()
    t0 = time.perf_counter()
    session = MultiNoCPlatform.standard().launch()
    frames = 0
    server = None
    if observe:
        live = session.live_stream(stride=STRIDE)
        top = MeshTop(color=False, stream=io.StringIO())
        top.attach(live)
        live.subscribe(lambda frame: None)
        server = session.serve_telemetry()
    app = EdgeDetectionApp(session.host, processors=[1, 2])
    app.deploy()
    result = app.run(image)
    elapsed = time.perf_counter() - t0
    if server is not None:
        server.close()
    assert result.output == reference_sobel(image), "must match golden Sobel"
    if observe:
        frames = session.live.frames_emitted
        assert frames > 0, "stride frames must fire during the flow"
    return elapsed, result.cycles, frames


def test_live_stream_overhead(benchmark):
    def both():
        # interleaved min-of-3 pairs: drift hits both sides equally
        pairs = [
            (run_flow(observe=False), run_flow(observe=True))
            for _ in range(3)
        ]
        return min(p[0] for p in pairs), min(p[1] for p in pairs)

    (base_s, base_cycles, _), (live_s, live_cycles, frames) = benchmark(both)
    overhead = live_s / base_s - 1
    report(
        benchmark,
        "Live observation plane overhead (edge detection)",
        [
            ("unobserved flow (s)", "(baseline)", f"{base_s:.3f}"),
            ("observed flow (s)", "(+stream/top/HTTP)", f"{live_s:.3f}"),
            ("frames emitted", f"every {STRIDE} cycles", frames),
            ("cycles identical", "bit-identical run", base_cycles == live_cycles),
            ("overhead", f"<= {MAX_OVERHEAD:.0%}", f"{overhead:+.1%}"),
        ],
    )
    assert base_cycles == live_cycles, "observation must not perturb the run"
    assert overhead <= MAX_OVERHEAD, (
        f"live observation costs {overhead:+.1%}, gate is {MAX_OVERHEAD:.0%}"
    )


def run_hostperf_flow(profiled: bool):
    """One edge detection flow, optionally under the sampling host
    profiler; returns (seconds, cycles, samples)."""
    image = make_image()
    t0 = time.perf_counter()
    session = MultiNoCPlatform.standard().launch()
    prof = None
    if profiled:
        prof = session.profile_host()
    app = EdgeDetectionApp(session.host, processors=[1, 2])
    app.deploy()
    result = app.run(image)
    if prof is not None:
        prof.stop()
    elapsed = time.perf_counter() - t0
    assert result.output == reference_sobel(image), "must match golden Sobel"
    samples = prof.samples if prof is not None else 0
    return elapsed, result.cycles, samples


def test_hostperf_sampling_overhead(benchmark):
    """Sampling the simulator's stack must stay within 5%.

    Unlike the lock-step :class:`~repro.telemetry.profiler.KernelProfiler`,
    the :class:`~repro.telemetry.hostperf.HostPerfProfiler` observes
    from a side thread and never changes the kernel's execution mode, so
    its entire cost is GIL contention from periodic
    ``sys._current_frames()`` walks — gated here at 5% (the ISSUE 10
    acceptance bound).  Cycle counts are asserted identical: sampling
    only reads simulator state.
    """

    def both():
        pairs = [
            (run_hostperf_flow(profiled=False), run_hostperf_flow(profiled=True))
            for _ in range(3)
        ]
        return min(p[0] for p in pairs), min(p[1] for p in pairs)

    (base_s, base_cycles, _), (prof_s, prof_cycles, samples) = benchmark(both)
    overhead = prof_s / base_s - 1
    report(
        benchmark,
        "Host sampling-profiler overhead (edge detection)",
        [
            ("unprofiled flow (s)", "(baseline)", f"{base_s:.3f}"),
            ("profiled flow (s)", "(+stack sampler)", f"{prof_s:.3f}"),
            ("stack samples", "5 ms interval", samples),
            ("cycles identical", "bit-identical run", base_cycles == prof_cycles),
            ("overhead", f"<= {MAX_HOSTPERF_OVERHEAD:.0%}", f"{overhead:+.1%}"),
        ],
    )
    assert base_cycles == prof_cycles, "sampling must not perturb the run"
    assert overhead <= MAX_HOSTPERF_OVERHEAD, (
        f"host sampling costs {overhead:+.1%}, "
        f"gate is {MAX_HOSTPERF_OVERHEAD:.0%}"
    )


def run_alert_flow(alerted: bool):
    """One edge detection flow under a live stream; returns
    (seconds, cycles, frames evaluated by the engine)."""
    image = make_image()
    t0 = time.perf_counter()
    session = MultiNoCPlatform.standard().launch()
    session.live_stream(stride=STRIDE)
    if alerted:
        session.alert_engine(ALERT_RULES)
    app = EdgeDetectionApp(session.host, processors=[1, 2])
    app.deploy()
    result = app.run(image)
    elapsed = time.perf_counter() - t0
    assert result.output == reference_sobel(image), "must match golden Sobel"
    frames = 0
    if alerted:
        frames = session.alerts.frames_seen
        assert frames > 0, "the engine must evaluate stride frames"
    return elapsed, result.cycles, frames


def test_alert_engine_overhead(benchmark):
    """Evaluating a representative rule set must stay within 3%.

    Both sides carry the same live stream; the alerted side adds an
    :class:`~repro.telemetry.alerts.AlertEngine` with six rules across
    every expression shape (vector regex, scalar thresholds with
    for-durations, string equality, an SLO with burn-rate alert), so
    the 3% gate isolates pure rule-evaluation cost per frame.  Cycle
    counts are asserted identical: alerting only reads frames.
    """

    def both():
        pairs = [
            (run_alert_flow(alerted=False), run_alert_flow(alerted=True))
            for _ in range(3)
        ]
        return min(p[0] for p in pairs), min(p[1] for p in pairs)

    (base_s, base_cycles, _), (alert_s, alert_cycles, frames) = benchmark(both)
    overhead = alert_s / base_s - 1
    report(
        benchmark,
        "Alert/SLO rule-engine overhead (edge detection)",
        [
            ("streamed flow (s)", "(baseline)", f"{base_s:.3f}"),
            ("alerted flow (s)", "(+6-rule engine)", f"{alert_s:.3f}"),
            ("frames evaluated", f"every {STRIDE} cycles", frames),
            ("cycles identical", "bit-identical run", base_cycles == alert_cycles),
            ("overhead", f"<= {MAX_ALERT_OVERHEAD:.0%}", f"{overhead:+.1%}"),
        ],
    )
    assert base_cycles == alert_cycles, "alerting must not perturb the run"
    assert overhead <= MAX_ALERT_OVERHEAD, (
        f"rule evaluation costs {overhead:+.1%}, gate is {MAX_ALERT_OVERHEAD:.0%}"
    )


def test_run_record_overhead(benchmark):
    """Appending one registry record must stay within 2% of the flow.

    The cross-run registry's contract mirrors the live plane's: history
    for (nearly) free.  One record per run is a couple of ``json.dumps``
    calls and two small file writes, so it is gated far tighter than the
    streaming plane — 2% of the edge detection flow's wall clock.  The
    registry root lives in a tempdir created outside the timed region,
    and ``git_rev`` is passed explicitly so the subprocess-free hot path
    is what gets measured.
    """

    def flow_then_record():
        image = make_image()
        t0 = time.perf_counter()
        session = MultiNoCPlatform.standard().launch()
        app = EdgeDetectionApp(session.host, processors=[1, 2])
        app.deploy()
        result = app.run(image)
        flow_s = time.perf_counter() - t0
        with tempfile.TemporaryDirectory() as tmp:
            registry = RunRegistry(tmp)
            t1 = time.perf_counter()
            record = session.record_run(
                registry=registry, git_rev="bench", kind="bench"
            )
            record_s = time.perf_counter() - t1
            loaded = registry.load(record["run_id"])
        assert result.output == reference_sobel(image)
        assert loaded["metrics"]["cycles"] == float(session.sim.cycle)
        return flow_s, record_s

    flow_s, record_s = benchmark(flow_then_record)
    overhead = record_s / flow_s
    report(
        benchmark,
        "Run-record append overhead (cross-run registry)",
        [
            ("edge detection flow (s)", "(baseline)", f"{flow_s:.3f}"),
            ("record append (s)", "(2 file writes)", f"{record_s:.4f}"),
            ("overhead", f"<= {MAX_RECORD_OVERHEAD:.0%}", f"{overhead:+.2%}"),
        ],
    )
    assert overhead <= MAX_RECORD_OVERHEAD, (
        f"run record costs {overhead:+.2%} of the flow, "
        f"gate is {MAX_RECORD_OVERHEAD:.0%}"
    )
