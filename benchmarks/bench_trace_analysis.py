"""Post-mortem analyzer throughput: reconstructing every packet's
critical path from a ~100k-event trace must stay interactive.

A 4x4 Hermes mesh runs repeated all-to-all bursts with telemetry
attached, producing a trace of roughly 100k raw events.  The benchmark
measures ``analyze_trace`` alone — event bucketing, positional chain
reconstruction, latency decomposition and congestion attribution — and
guards a throughput floor so the offline tooling keeps up with traces
from long simulations.
"""

from conftest import report
from repro.noc import HermesNetwork
from repro.telemetry import TelemetrySink, analyze_trace

SIDE = 4
BURSTS = 28  # ~102k events on a 4x4 mesh
MIN_EVENTS = 90_000
MIN_EVENTS_PER_SEC = 20_000


def _record_workload():
    sink = TelemetrySink()
    net = HermesNetwork(SIDE, SIDE, telemetry=sink)
    sim = net.make_simulator()
    sim.reset()
    for burst in range(BURSTS):
        for sx in range(SIDE):
            for sy in range(SIDE):
                for tx in range(SIDE):
                    for ty in range(SIDE):
                        if (sx, sy) != (tx, ty):
                            net.send((sx, sy), (tx, ty), [burst, sx, ty])
    net.run_to_drain(sim, max_cycles=5_000_000)
    return sink, net


def test_analyzer_throughput(benchmark):
    sink, net = _record_workload()
    events = len(sink.events)
    assert events >= MIN_EVENTS, f"workload too small: {events} events"

    analysis = benchmark(analyze_trace, sink)

    # correctness first: every injected packet reconstructed, cycle-exact
    assert len(analysis.packets) == net.stats.packets_injected
    assert analysis.unresolved_hops == 0
    assert all(
        sum(p.decomposition().values()) == p.latency
        for p in analysis.delivered()
    )

    per_sec = events / benchmark.stats.stats.mean
    report(
        benchmark,
        "Post-mortem analyzer throughput (~100k-event trace)",
        [
            ("trace events", "~100k", events),
            ("packets reconstructed", len(analysis.packets),
             len(analysis.packets)),
            ("events/second", f">{MIN_EVENTS_PER_SEC}", round(per_sec)),
        ],
    )
    assert per_sec >= MIN_EVENTS_PER_SEC
