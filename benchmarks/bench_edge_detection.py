"""E10 — Figure 10 + Section 4: the parallel edge detection demo.

The host streams image lines to the embedded processors; each computes
the Sobel gradients gx and gy, adds them and notifies the host.  The
benchmark checks correctness against the golden model and measures the
two-processor speedup over one processor (the reason MultiNoC is a
*multi*processing platform).
"""

import random
import time

import pytest

from conftest import report
from repro.apps import EdgeDetectionApp, reference_sobel
from repro.core import MultiNoCPlatform


def make_image(height=6, width=16, seed=11):
    rng = random.Random(seed)
    return [[rng.randrange(256) for _ in range(width)] for _ in range(height)]


def run_edge_detection(processors):
    image = make_image()
    session = MultiNoCPlatform.standard().launch()
    app = EdgeDetectionApp(session.host, processors=processors)
    app.deploy()
    result = app.run(image)
    assert result.output == reference_sobel(image), "must match golden Sobel"
    return result


def test_parallel_edge_detection_speedup(benchmark):
    def both():
        serial = run_edge_detection([1])
        parallel = run_edge_detection([1, 2])
        return serial, parallel

    serial, parallel = benchmark(both)
    speedup = serial.cycles / parallel.cycles
    report(
        benchmark,
        "E10 parallel edge detection (Figure 10)",
        [
            ("output matches Sobel golden model", "correct images", True),
            ("1-processor run (cycles)", "(baseline)", serial.cycles),
            ("2-processor run (cycles)", "(faster)", parallel.cycles),
            ("speedup", ">1 (parallelism pays)", f"{speedup:.2f}x"),
            ("line split across processors", "both work",
             parallel.lines_per_processor),
        ],
    )
    assert speedup > 1.1, "two processors must beat one"
    assert all(n > 0 for n in parallel.lines_per_processor.values())


def test_quiescent_kernel_wallclock_speedup(benchmark):
    """The quiescence-aware kernel must run the full edge detection flow
    (launch + deploy + run) at least 3x faster in wall-clock time than
    strict lock-step, with bit-identical results: same final cycle
    count, same output image, same per-core retirement/stall counters.
    The host, serial bridge and routers sleep through the long serial
    transfers and the CPUs' local compute phases; lock-step evaluates
    all of them every cycle."""

    def flow(strict):
        t0 = time.perf_counter()
        session = MultiNoCPlatform.standard().launch(strict_lockstep=strict)
        app = EdgeDetectionApp(session.host, processors=[1, 2])
        app.deploy()
        result = app.run(make_image())
        elapsed = time.perf_counter() - t0
        cpu = session.system.processor(1).cpu
        counters = (
            cpu.instructions_retired,
            cpu.cycles_active,
            cpu.cycles_stalled,
        )
        return elapsed, session.sim.cycle, result.output, counters

    def both():
        # best-of-2 per mode to keep the ratio stable under CI noise
        strict_runs = [flow(strict=True) for _ in range(2)]
        quiet_runs = [flow(strict=False) for _ in range(2)]
        return min(strict_runs), min(quiet_runs)

    strict_best, quiet_best = benchmark(both)
    s_dt, s_cycles, s_output, s_counters = strict_best
    q_dt, q_cycles, q_output, q_counters = quiet_best
    assert q_cycles == s_cycles, "cycle counts must match bit-for-bit"
    assert q_output == s_output, "output images must be identical"
    assert q_counters == s_counters, "CPU counters must be identical"
    speedup = s_dt / q_dt
    report(
        benchmark,
        "Quiescent kernel wall-clock speedup (edge detection)",
        [
            ("results identical across modes", "cycle-exact", True),
            ("strict lock-step wall clock (s)", "(baseline)", f"{s_dt:.3f}"),
            ("quiescent wall clock (s)", "(faster)", f"{q_dt:.3f}"),
            ("wall-clock speedup", ">=3x", f"{speedup:.2f}x"),
        ],
    )
    assert speedup >= 3.0, (
        f"quiescent kernel must be >=3x faster on edge detection, "
        f"got {speedup:.2f}x"
    )


def test_edge_detection_compute_only_scaling(benchmark):
    """Without the serial-link Amdahl term (pre-loaded lines), the
    per-line compute on the two CPUs overlaps almost fully."""

    def measure_line_cost():
        image = make_image(height=4, width=16)
        session = MultiNoCPlatform.standard().launch()
        app = EdgeDetectionApp(session.host, processors=[1])
        app.deploy()
        result = app.run(image)
        proc = session.system.processor(1)
        lines = sum(result.lines_per_processor.values())
        return proc.cpu.cycles_active / max(lines, 1)

    cycles_per_line = benchmark(measure_line_cost)
    report(
        benchmark,
        "E10b per-line compute cost",
        [("R8 cycles per 16-pixel line", "(gx+gy per pixel)",
          f"{cycles_per_line:.0f}")],
    )
    assert cycles_per_line > 1000  # real work per line
