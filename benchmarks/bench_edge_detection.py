"""E10 — Figure 10 + Section 4: the parallel edge detection demo.

The host streams image lines to the embedded processors; each computes
the Sobel gradients gx and gy, adds them and notifies the host.  The
benchmark checks correctness against the golden model and measures the
two-processor speedup over one processor (the reason MultiNoC is a
*multi*processing platform).
"""

import random

import pytest

from conftest import report
from repro.apps import EdgeDetectionApp, reference_sobel
from repro.core import MultiNoCPlatform


def make_image(height=6, width=16, seed=11):
    rng = random.Random(seed)
    return [[rng.randrange(256) for _ in range(width)] for _ in range(height)]


def run_edge_detection(processors):
    image = make_image()
    session = MultiNoCPlatform.standard().launch()
    app = EdgeDetectionApp(session.host, processors=processors)
    app.deploy()
    result = app.run(image)
    assert result.output == reference_sobel(image), "must match golden Sobel"
    return result


def test_parallel_edge_detection_speedup(benchmark):
    def both():
        serial = run_edge_detection([1])
        parallel = run_edge_detection([1, 2])
        return serial, parallel

    serial, parallel = benchmark(both)
    speedup = serial.cycles / parallel.cycles
    report(
        benchmark,
        "E10 parallel edge detection (Figure 10)",
        [
            ("output matches Sobel golden model", "correct images", True),
            ("1-processor run (cycles)", "(baseline)", serial.cycles),
            ("2-processor run (cycles)", "(faster)", parallel.cycles),
            ("speedup", ">1 (parallelism pays)", f"{speedup:.2f}x"),
            ("line split across processors", "both work",
             parallel.lines_per_processor),
        ],
    )
    assert speedup > 1.1, "two processors must beat one"
    assert all(n > 0 for n in parallel.lines_per_processor.values())


def test_edge_detection_compute_only_scaling(benchmark):
    """Without the serial-link Amdahl term (pre-loaded lines), the
    per-line compute on the two CPUs overlaps almost fully."""

    def measure_line_cost():
        image = make_image(height=4, width=16)
        session = MultiNoCPlatform.standard().launch()
        app = EdgeDetectionApp(session.host, processors=[1])
        app.deploy()
        result = app.run(image)
        proc = session.system.processor(1)
        lines = sum(result.lines_per_processor.values())
        return proc.cpu.cycles_active / max(lines, 1)

    cycles_per_line = benchmark(measure_line_cost)
    report(
        benchmark,
        "E10b per-line compute cost",
        [("R8 cycles per 16-pixel line", "(gx+gy per pixel)",
          f"{cycles_per_line:.0f}")],
    )
    assert cycles_per_line > 1000  # real work per line
