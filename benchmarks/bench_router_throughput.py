"""E2 — Section 2.1: "the theoretical peak throughput of each Hermes
router is 1Gbits/s" (50 MHz, 8-bit flits, five ports).

Five continuous wormholes are driven through all five output ports of a
centre router; the measured aggregate flit rate is converted to bits/s
at the paper's 50 MHz clock.
"""

import pytest

from conftest import report
from repro.analysis import router_peak_bps
from repro.noc import HermesNetwork

CLOCK_HZ = 50e6

#: five flows that each occupy a distinct output port of router (1,1)
FLOWS = [
    ((0, 1), (2, 1)),  # -> EAST
    ((2, 1), (0, 1)),  # -> WEST
    ((1, 0), (1, 2)),  # -> NORTH
    ((1, 2), (1, 0)),  # -> SOUTH
    ((1, 1), (1, 1)),  # -> LOCAL
]

WARMUP = 300
WINDOW = 2000


def saturate_center_router():
    net = HermesNetwork(3, 3, routing_cycles=1)
    sim = net.make_simulator()
    # enough long packets to keep every port busy through the window
    for _ in range(6):
        for src, dst in FLOWS:
            net.send(src, dst, [0x55] * 250)
    sim.step(WARMUP)
    center = (1, 1)
    start_flits = net.stats.router_flits_sent(center)
    sim.step(WINDOW)
    flits = net.stats.router_flits_sent(center) - start_flits
    return flits / WINDOW  # flits per cycle through the router


def test_router_peak_throughput(benchmark):
    flits_per_cycle = benchmark(saturate_center_router)
    measured_bps = flits_per_cycle * 8 * CLOCK_HZ
    peak = router_peak_bps(5, CLOCK_HZ, 8)
    report(
        benchmark,
        "E2 router peak throughput @50MHz",
        [
            ("aggregate (5 ports)", "1.000 Gbit/s", f"{measured_bps / 1e9:.3f} Gbit/s"),
            ("flits/cycle", 2.5, round(flits_per_cycle, 3)),
        ],
    )
    # each port moves 1 flit per 2 cycles: 2.5 flits/cycle aggregate
    assert measured_bps == pytest.approx(1e9, rel=0.05)
    assert measured_bps <= peak + 1e-6


def test_single_port_throughput(benchmark):
    """One port alone moves 200 Mbit/s: the handshake's 2-cycle bound."""

    def single_flow():
        net = HermesNetwork(2, 1, routing_cycles=1)
        sim = net.make_simulator()
        for _ in range(6):
            net.send((0, 0), (1, 0), [0xAA] * 250)
        sim.step(WARMUP)
        start = net.stats.router_flits_sent((1, 0))
        sim.step(WINDOW)
        return (net.stats.router_flits_sent((1, 0)) - start) / WINDOW

    flits_per_cycle = benchmark(single_flow)
    measured = flits_per_cycle * 8 * CLOCK_HZ
    report(
        benchmark,
        "E2b single-port throughput",
        [("one port", "200 Mbit/s", f"{measured / 1e6:.1f} Mbit/s")],
    )
    assert measured == pytest.approx(200e6, rel=0.05)
