"""E4 — Section 3: "The MultiNoC system uses 98% of the available
slices and 78% of the LUTs" of the Spartan-IIe XC2S200E.
"""

import pytest

from conftest import report
from repro.fpga import AreaModel, XC2S200E
from repro.system import SystemConfig


def estimate():
    model = AreaModel()
    area = model.system(SystemConfig.paper())
    return area, area.utilization(XC2S200E)


def test_area_utilization(benchmark):
    area, util = benchmark(estimate)
    report(
        benchmark,
        "E4 XC2S200E utilisation",
        [
            ("slices", "98%", f"{util['slices']:.1%}"),
            ("LUTs", "78%", f"{util['luts']:.1%}"),
            ("BlockRAMs", "(not stated)", f"{util['brams']:.1%}"),
            ("NoC share of logic", "(significant)", f"{area.noc_fraction():.1%}"),
        ],
    )
    assert util["slices"] == pytest.approx(0.98, abs=0.005)
    assert util["luts"] == pytest.approx(0.78, abs=0.005)
    assert area.total.fits(XC2S200E)
    # Section 3: "The NoC area can be seen to be an important part of
    # the design" in this small prototype
    assert area.noc_fraction() > 0.15


def test_smaller_device_does_not_fit(benchmark):
    """The design needs the 200E: the next part down overflows."""
    from repro.fpga import device

    area = benchmark(lambda: AreaModel().system(SystemConfig.paper()))
    assert not area.total.fits(device("XC2S150E"))
