"""E13 — Section 1, claim (ii): "scalability of bandwidth, when
compared to traditional bus architectures".

The same uniform-random workload drives the Hermes mesh and a
traditional shared bus (one transaction at a time, round-robin
arbitration) at growing system sizes.  The expected shape: the bus is
competitive — even ahead — for the tiny 2x2 prototype (no multi-hop
latency), but completion time explodes with IP count while the mesh
scales, which is the paper's reason to pay the NoC's area cost.
"""

import pytest

from conftest import report
from repro.apps.workloads import TrafficConfig, drive_traffic
from repro.noc import HermesNetwork, SharedBusNetwork

SIZES = [2, 3, 4, 6]


def run_fabric(make, n):
    net = make(n, n)
    cfg = TrafficConfig(
        pattern="uniform", rate=0.01, duration=2500, payload_flits=8, seed=3
    )
    drive_traffic(net, cfg)
    sim = net.make_simulator()
    sim.step(cfg.duration)
    net.run_to_drain(sim, max_cycles=2_000_000)
    net.collect_received()
    return {
        "completion": sim.cycle,
        "delivered": net.stats.packets_delivered,
    }


def test_bandwidth_scalability_vs_bus(benchmark):
    def sweep():
        return {
            n: {
                "bus": run_fabric(SharedBusNetwork, n),
                "noc": run_fabric(HermesNetwork, n),
            }
            for n in SIZES
        }

    results = benchmark(sweep)
    rows = []
    for n in SIZES:
        bus = results[n]["bus"]
        noc = results[n]["noc"]
        assert bus["delivered"] == noc["delivered"]
        ratio = bus["completion"] / noc["completion"]
        rows.append(
            (
                f"{n}x{n} ({n * n} IPs): completion bus vs noc",
                "NoC scales, bus saturates",
                f"{bus['completion']} vs {noc['completion']} ({ratio:.2f}x)",
            )
        )
    report(benchmark, "E13 shared bus vs Hermes NoC", rows)

    # small system: bus is competitive (within 20%) — the prototype size
    # does not showcase the NoC's bandwidth yet
    r2 = results[2]
    assert r2["bus"]["completion"] < r2["noc"]["completion"] * 1.2
    # large system: the NoC finishes the same work at least 2x sooner
    r6 = results[6]
    assert r6["bus"]["completion"] > 2 * r6["noc"]["completion"]
    # and the gap widens monotonically with system size
    ratios = [
        results[n]["bus"]["completion"] / results[n]["noc"]["completion"]
        for n in SIZES
    ]
    assert ratios == sorted(ratios)


def test_saturation_throughput(benchmark):
    """Offered load far beyond the bus's 1 flit/cycle: accepted
    throughput of the mesh keeps growing with size, the bus's cannot."""

    def saturate(make, n):
        net = make(n, n)
        cfg = TrafficConfig(
            pattern="uniform", rate=0.08, duration=2000, payload_flits=8, seed=7
        )
        drive_traffic(net, cfg)
        sim = net.make_simulator()
        sim.step(cfg.duration)
        net.run_to_drain(sim, max_cycles=5_000_000)
        net.collect_received()
        return net.stats.delivered_flits / sim.cycle

    results = benchmark(
        lambda: {
            n: (saturate(SharedBusNetwork, n), saturate(HermesNetwork, n))
            for n in (2, 4, 6)
        }
    )
    rows = []
    for n, (bus_rate, noc_rate) in results.items():
        rows.append(
            (
                f"{n}x{n} accepted flits/cycle (bus vs noc)",
                "bus capped at ~1",
                f"{bus_rate:.2f} vs {noc_rate:.2f}",
            )
        )
    report(benchmark, "E13b saturation throughput", rows)
    for n, (bus_rate, noc_rate) in results.items():
        assert bus_rate <= 1.05  # a bus moves at most one flit per cycle
    # the mesh's accepted bandwidth grows with size
    noc_rates = [results[n][1] for n in (2, 4, 6)]
    assert noc_rates == sorted(noc_rates)
    assert results[6][1] > 2 * results[6][0]
