"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark prints a small "paper vs measured" table (visible with
``pytest -s`` and in captured output on failure) and stores the same
numbers in ``benchmark.extra_info`` for the JSON report.
"""

from __future__ import annotations


def report(benchmark, title: str, rows):
    """Record and print a paper-vs-measured comparison.

    *rows* is a list of (label, paper_value, measured_value) tuples.
    """
    lines = [f"\n== {title} =="]
    for label, paper, measured in rows:
        lines.append(f"  {label:<44} paper: {paper!s:>12}  measured: {measured!s:>12}")
        if benchmark is not None:
            benchmark.extra_info[label] = str(measured)
    text = "\n".join(lines)
    print(text)
    return text
