"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark prints a small "paper vs measured" table (visible with
``pytest -s`` and in captured output on failure) and stores the same
numbers in ``benchmark.extra_info`` for the JSON report.  The platform
construction/workload helpers used by the scaling benchmarks live here
too, so ``bench_noc_scaling`` and ``bench_platform_scaling`` build
fabrics the same way.
"""

from __future__ import annotations

#: the standard compute kernel for scaling runs: sum 200..1 = 20100
WORK_PROGRAM = """
        CLR  R0
        LDI  R1, 200
        LDL  R2, 1
        CLR  R3
loop:   ADD  R3, R3, R1
        SUB  R1, R1, R2
        JMPZD done
        JMP  loop
done:   LDI  R4, 0xFFFF
        ST   R3, R4, R0
        HALT
"""

WORK_RESULT = 20100


def build_platform(n_processors, mesh=None, topology=None, n_memories=1):
    """One construction path for every scaling benchmark."""
    from repro.core import MultiNoCPlatform

    kwargs = {"n_processors": n_processors, "n_memories": n_memories}
    if topology is not None:
        kwargs["topology"] = topology
    elif mesh is not None:
        kwargs["mesh"] = mesh
    return MultiNoCPlatform(**kwargs)


def run_compute_workload(
    n_processors,
    mesh=None,
    topology=None,
    n_memories=1,
    max_cycles=5_000_000,
):
    """Run :data:`WORK_PROGRAM` on every processor; return run metrics."""
    session = build_platform(
        n_processors, mesh=mesh, topology=topology, n_memories=n_memories
    ).launch()
    session.host.sync()
    for pid in range(1, n_processors + 1):
        session.start(pid, WORK_PROGRAM)
    start = session.sim.cycle
    session.wait_all_halted(max_cycles=max_cycles)
    elapsed = session.sim.cycle - start
    session.sim.step(5000)  # drain printfs
    for pid in range(1, n_processors + 1):
        values = session.host.monitor(pid).printf_values
        assert values == [WORK_RESULT], f"P{pid} computed {values}"
    retired = sum(
        p.cpu.instructions_retired for p in session.system.processors.values()
    )
    return {"elapsed": elapsed, "retired": retired}


def noc_factory(topology, **kwargs):
    """Factory-factory for load sweeps over arbitrary fabric specs."""
    from repro.noc import HermesNetwork

    return lambda: HermesNetwork(topology=topology, **kwargs)


def report(benchmark, title: str, rows):
    """Record and print a paper-vs-measured comparison.

    *rows* is a list of (label, paper_value, measured_value) tuples.
    """
    lines = [f"\n== {title} =="]
    for label, paper, measured in rows:
        lines.append(f"  {label:<44} paper: {paper!s:>12}  measured: {measured!s:>12}")
        if benchmark is not None:
            benchmark.extra_info[label] = str(measured)
    text = "\n".join(lines)
    print(text)
    return text
