"""E5 — Section 3 + Figure 7: floorplanning is required at 98%
occupancy, and the paper's placement rationale emerges from wirelength
optimisation (serial next to its pins, NoC in the middle, processors at
the BlockRAM edges).
"""

import pytest

from conftest import report
from repro.fpga import Floorplanner, XC2S200E


def plan():
    planner = Floorplanner()
    annealed = planner.anneal(iterations=2500, seed=1)
    randoms = [planner.random_placement(seed=s) for s in range(8)]
    return annealed, randoms


def test_floorplan_quality(benchmark):
    annealed, randoms = benchmark(plan)
    avg_random_cost = sum(p.cost for p in randoms) / len(randoms)
    avg_random_wl = sum(p.wirelength for p in randoms) / len(randoms)
    report(
        benchmark,
        "E5 floorplanning at 98% occupancy",
        [
            ("annealed placement fits", "fits (after effort)", annealed.fits),
            ("wirelength (CLB, annealed vs random avg)", "(better)",
             f"{annealed.wirelength:.0f} vs {avg_random_wl:.0f}"),
            ("cost (annealed vs random avg)", "(better)",
             f"{annealed.cost:.0f} vs {avg_random_cost:.0f}"),
        ],
    )
    assert annealed.fits
    assert annealed.cost < avg_random_cost


def test_figure7_placement_rationale(benchmark):
    annealed = benchmark(
        lambda: Floorplanner(pin_column=0).anneal(iterations=2500, seed=1)
    )
    cols = XC2S200E.clb_cols
    serial_x, _ = annealed.centroid("serial")
    noc_x, _ = annealed.centroid("noc")
    mem_x, _ = annealed.centroid("mem0")
    p1_x, _ = annealed.centroid("proc1")
    p2_x, _ = annealed.centroid("proc2")
    report(
        benchmark,
        "E5b Figure 7 placement rationale (x centroids, die is 0..42)",
        [
            ("serial IP near the I/O pins", "die edge", f"{serial_x:.1f}"),
            ("NoC centred for all IPs", "middle", f"{noc_x:.1f}"),
            ("memory IP near BlockRAM column", "edge", f"{mem_x:.1f}"),
            ("processors flank the NoC", "left/right", f"{p1_x:.1f} / {p2_x:.1f}"),
        ],
    )
    assert serial_x < cols / 3  # next to the pads
    assert cols * 0.25 < noc_x < cols * 0.75  # central
    assert min(mem_x, cols - mem_x) < cols / 4  # near a BRAM edge
    # processors sit on opposite sides of the NoC
    assert (p1_x - noc_x) * (p2_x - noc_x) < 0
