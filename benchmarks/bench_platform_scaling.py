"""E12 — Sections 1 and 5: "The approach can be extended to any number
of processor IPs and/or memory IPs, using the natural scalability of
NoCs" / "Increasing the number of identical IPs enhances the
parallelism degree."

Builds and runs progressively larger MultiNoC instances, and measures
aggregate compute throughput as processors are added.
"""

import pytest

from conftest import build_platform, report, run_compute_workload


def run_platform(mesh, n_processors, n_memories=1):
    return run_compute_workload(
        n_processors, mesh=mesh, n_memories=n_memories
    )


CONFIGS = [
    ((2, 2), 2),
    ((3, 3), 4),
    ((3, 3), 7),
    ((4, 4), 10),
]


def test_platform_scales_to_many_processors(benchmark):
    results = benchmark(lambda: {n: run_platform(m, n) for m, n in CONFIGS})
    rows = []
    throughputs = {}
    for (mesh, n), r in zip(CONFIGS, results.values()):
        ipc = r["retired"] / r["elapsed"]
        throughputs[n] = ipc
        rows.append(
            (
                f"{mesh[0]}x{mesh[1]} mesh, {n} processors",
                "builds and runs",
                f"{r['retired']} instrs, {ipc:.2f} aggregate IPC",
            )
        )
    report(benchmark, "E12 platform scalability", rows)
    # parallelism degree rises with identical IPs (paper Section 5)
    ns = [n for _, n in CONFIGS]
    assert throughputs[ns[-1]] > throughputs[ns[0]] * 3
    series = [throughputs[n] for n in ns]
    assert series == sorted(series)


def test_construction_cost_of_10x10(benchmark):
    """A hundred-IP platform (the paper's 10x10 vision) instantiates."""

    def build():
        platform = build_platform(60, mesh=(10, 10), n_memories=39)
        system = platform.build()
        return sum(1 for _ in system.iter_components())

    n_components = benchmark(build)
    report(
        benchmark,
        "E12b 10x10 instantiation",
        [("components in a 100-IP system", "(feasible)", n_components)],
    )
    assert n_components > 300  # 100 routers + 60 processor IPs + ...
