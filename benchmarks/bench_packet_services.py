"""E8 — Section 2.1: the nine packet services, exercised end to end on
the full system, with measured round-trip cycle costs.
"""

import pytest

from conftest import report
from repro.host import SerialSoftware
from repro.r8 import assemble
from repro.system import MultiNoC


def build_session():
    system = MultiNoC()
    sim = system.make_simulator()
    host = SerialSoftware(system).connect(sim)
    host.sync()
    return system, sim, host


def exercise_all_services():
    system, sim, host = build_session()
    costs = {}

    t0 = sim.cycle
    host.write_memory((1, 1), 0x10, [0xABCD])  # service: write in memory
    costs["write in memory"] = sim.cycle - t0

    t0 = sim.cycle
    words = host.read_memory((1, 1), 0x10, 1)  # read + read return
    costs["read + read return"] = sim.cycle - t0
    assert words == [0xABCD]

    # activate + printf + scanf + scanf return
    host.set_scanf_handler(1, lambda: 21)
    t0 = sim.cycle
    host.run_program((0, 1), 1, assemble(
        "CLR R0\nLDI R2, 0xFFFF\n"
        "LD R1, R2, R0\n"      # scanf -> scanf return
        "ADD R1, R1, R1\n"
        "ST R1, R2, R0\n"      # printf
        "HALT"
    ))
    costs["activate/scanf/scanf-return/printf"] = sim.cycle - t0
    assert host.monitor(1).printf_values == [42]

    # notify + wait between the processors
    t0 = sim.cycle
    host.load_program((0, 1), assemble(
        "CLR R0\nLDL R3, 2\nLDI R2, 0xFFFE\nST R3, R2, R0\nHALT"  # wait
    ))
    host.load_program((1, 0), assemble(
        "CLR R0\nLDL R3, 1\nLDI R2, 0xFFFD\nST R3, R2, R0\nHALT"  # notify
    ))
    host.activate((0, 1))
    host.activate((1, 0))
    sim.run_until(lambda: system.all_halted, max_cycles=200_000)
    costs["wait + notify pair"] = sim.cycle - t0
    return system, costs


def test_all_nine_services(benchmark):
    system, costs = benchmark(exercise_all_services)
    rows = [
        (f"{name} (cycles incl. serial I/O)", "works", cycles)
        for name, cycles in costs.items()
    ]
    report(benchmark, "E8 the nine packet services", rows)
    assert all(c > 0 for c in costs.values())
    # nothing was dropped anywhere
    assert not system.memory(0).dropped_packets
    for proc in system.processors.values():
        assert not proc.dropped_packets
    assert not system.serial.dropped_packets


def test_remote_memory_load_store_cost(benchmark):
    """NUMA latency: a remote LD stalls the core for the NoC round trip."""

    def measure():
        system, sim, host = build_session()
        host.write_memory((1, 1), 0, [7])
        host.run_program((0, 1), 1, assemble(
            "CLR R0\nLDI R2, 2048\n" + "LD R1, R2, R0\n" * 16 + "HALT"
        ))
        proc = system.processor(1)
        return proc.cpu.cycles_stalled / 16

    stall_per_load = benchmark(measure)
    report(
        benchmark,
        "E8b remote load stall",
        [("cycles stalled per remote LD", "(NoC round trip)",
          f"{stall_per_load:.1f}")],
    )
    # must cover two 3-router XY traversals plus memory service time
    assert 40 < stall_per_load < 200
