#!/usr/bin/env python
"""Run the whole benchmark suite and write ``BENCH_results.json``.

Each ``bench_*.py`` file is executed in its own pytest subprocess (one
crashing file cannot take down the rest) with ``--benchmark-json`` so
pytest-benchmark's per-test statistics are captured, then everything is
merged into a single machine-readable report.

Usage::

    python benchmarks/run_all.py                      # quick preset
    python benchmarks/run_all.py --preset full
    python benchmarks/run_all.py --files noc,router   # substring filter
    python benchmarks/run_all.py --output out.json
    python benchmarks/run_all.py --history            # append to registry

``--history`` appends the suite as one ``multinoc-run/1`` record to the
cross-run registry (``--runs-dir``, default ``.multinoc/runs`` or
``$MULTINOC_RUNS_DIR``) instead of clobbering ``BENCH_results.json``:
the full report is embedded under ``bench`` and every per-test mean and
numeric ``extra_info`` value is flattened into trendable metrics, so
``multinoc runs trend`` can gate regressions against the whole
trajectory.  The report always carries a machine fingerprint (python
version, platform, CPU count) so records gathered on different machines
are never trend-compared silently.

Presets:

* ``quick`` — one round per benchmark, no warmup, tiny calibration
  budget.  Timing numbers are rough; model metrics (``extra_info``) are
  exact.  This is what CI runs.
* ``full``  — pytest-benchmark defaults (calibrated rounds, warmup);
  timing numbers are stable enough to compare across commits.

Report schema ``multinoc-bench/1``::

    {
      "schema": "multinoc-bench/1",
      "preset": "quick" | "full",
      "python": "3.11.7",
      "platform": "linux",
      "started_unix": 1754400000,        # epoch seconds at suite start
      "total_wall_seconds": 12.34,       # whole-suite wall clock
      "benchmarks": [                    # one entry per bench file
        {
          "file": "bench_latency_formula.py",
          "status": "ok" | "failed",     # pytest exit status
          "wall_seconds": 1.23,          # subprocess wall clock
          "tests": [                     # one entry per benchmark test
            {
              "name": "test_latency_formula",
              "mean_seconds": 0.0012,    # per-round mean
              "stddev_seconds": 0.0001,
              "rounds": 5,
              "extra_info": {...}        # paper-vs-measured metrics
            }
          ]
        }
      ]
    }
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SCHEMA = "multinoc-bench/1"
BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

# the registry lives in the package; make it importable when this file
# runs as a plain script (``python benchmarks/run_all.py``)
sys.path.insert(0, str(REPO_ROOT / "src"))

PRESETS = {
    "quick": [
        "--benchmark-min-rounds=1",
        "--benchmark-warmup=off",
        "--benchmark-max-time=0.1",
        "--benchmark-calibration-precision=1",
    ],
    "full": [],
}


def discover(filters) -> list:
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if filters:
        files = [f for f in files if any(s in f.name for s in filters)]
    return files


def run_one(path: Path, preset: str) -> dict:
    """Run one bench file under pytest, return its report entry."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = tmp.name
    try:
        start = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", str(path), "-q",
                f"--benchmark-json={json_path}", *PRESETS[preset],
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        wall = time.perf_counter() - start
        tests = []
        try:
            data = json.loads(Path(json_path).read_text())
        except (OSError, ValueError):
            data = {"benchmarks": []}
        for bench in data.get("benchmarks", []):
            stats = bench.get("stats", {})
            tests.append(
                {
                    "name": bench.get("name", "?"),
                    "mean_seconds": stats.get("mean"),
                    "stddev_seconds": stats.get("stddev"),
                    "rounds": stats.get("rounds"),
                    "extra_info": bench.get("extra_info", {}),
                }
            )
        entry = {
            "file": path.name,
            "status": "ok" if proc.returncode == 0 else "failed",
            "wall_seconds": round(wall, 3),
            "tests": tests,
        }
        if proc.returncode != 0:
            entry["output_tail"] = proc.stdout[-2000:] + proc.stderr[-2000:]
        return entry
    finally:
        Path(json_path).unlink(missing_ok=True)


def trend_metrics(entries: list) -> dict:
    """Flatten per-test means and numeric extra_info into metric names."""
    metrics = {}
    for entry in entries:
        stem = entry["file"]
        if stem.startswith("bench_"):
            stem = stem[len("bench_"):]
        if stem.endswith(".py"):
            stem = stem[: -len(".py")]
        for test in entry["tests"]:
            base = f"{stem}.{test['name']}"
            if isinstance(test.get("mean_seconds"), (int, float)):
                metrics[f"{base}.mean_seconds"] = test["mean_seconds"]
            for key, value in (test.get("extra_info") or {}).items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    metrics[f"{base}.{key}"] = value
    return metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="quick",
        help="quick: 1 round/bench (CI); full: calibrated timing",
    )
    parser.add_argument(
        "--output", default=None,
        metavar="FILE", help="where to write the JSON report "
        "(default BENCH_results.json; with --history: registry only)",
    )
    parser.add_argument(
        "--files", metavar="SUBSTR[,SUBSTR...]",
        help="only run bench files whose name contains a substring",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="append the suite to the cross-run registry instead of "
        "clobbering BENCH_results.json",
    )
    parser.add_argument(
        "--runs-dir", metavar="DIR",
        help="registry root for --history "
        "(default: $MULTINOC_RUNS_DIR or .multinoc/runs)",
    )
    args = parser.parse_args(argv)

    filters = [s for s in (args.files or "").split(",") if s]
    files = discover(filters)
    if not files:
        print("no benchmark files matched", file=sys.stderr)
        return 2

    started = int(time.time())
    suite_start = time.perf_counter()
    entries = []
    for path in files:
        print(f"running {path.name} ...", flush=True)
        entry = run_one(path, args.preset)
        mark = "ok" if entry["status"] == "ok" else "FAILED"
        print(
            f"  {mark} in {entry['wall_seconds']:.1f}s "
            f"({len(entry['tests'])} benchmark(s))",
            flush=True,
        )
        entries.append(entry)

    from repro.telemetry.registry import machine_fingerprint

    machine = machine_fingerprint()
    report = {
        "schema": SCHEMA,
        "preset": args.preset,
        "python": machine["python"],
        "platform": machine["platform"],
        "machine": machine,
        "started_unix": started,
        "total_wall_seconds": round(time.perf_counter() - suite_start, 3),
        "benchmarks": entries,
    }
    failed = [e["file"] for e in entries if e["status"] != "ok"]

    destination = args.output
    if destination is None and not args.history:
        destination = str(REPO_ROOT / "BENCH_results.json")
    if destination is not None:
        Path(destination).write_text(json.dumps(report, indent=2))

    if args.history:
        from repro.telemetry.registry import AUTO, RunRegistry

        metrics = trend_metrics(entries)
        metrics["total_wall_seconds"] = report["total_wall_seconds"]
        record = RunRegistry(args.runs_dir).record(
            kind="bench",
            status="failed" if failed else "ok",
            exit_code=1 if failed else 0,
            timestamp=started,
            preset=args.preset,
            metrics=metrics,
            bench=report,
            machine=machine,
            artifacts={"report": destination} if destination else None,
            meta={"files": [e["file"] for e in entries]},
            git_rev=AUTO,
        )
        destination = (
            f"{record['run_id']} (+{destination})"
            if destination
            else record["run_id"]
        )

    total_tests = sum(len(e["tests"]) for e in entries)
    print(
        f"\n{len(files)} file(s), {total_tests} benchmark(s), "
        f"{len(failed)} failed, {report['total_wall_seconds']:.1f}s "
        f"-> {destination}"
    )
    for name in failed:
        print(f"  FAILED: {name}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
