#!/usr/bin/env python
"""Run the whole benchmark suite and write ``BENCH_results.json``.

Each ``bench_*.py`` file is executed in its own pytest subprocess (one
crashing file cannot take down the rest) with ``--benchmark-json`` so
pytest-benchmark's per-test statistics are captured, then everything is
merged into a single machine-readable report.

Usage::

    python benchmarks/run_all.py                      # quick preset
    python benchmarks/run_all.py --preset full
    python benchmarks/run_all.py --files noc,router   # substring filter
    python benchmarks/run_all.py --output out.json

Presets:

* ``quick`` — one round per benchmark, no warmup, tiny calibration
  budget.  Timing numbers are rough; model metrics (``extra_info``) are
  exact.  This is what CI runs.
* ``full``  — pytest-benchmark defaults (calibrated rounds, warmup);
  timing numbers are stable enough to compare across commits.

Report schema ``multinoc-bench/1``::

    {
      "schema": "multinoc-bench/1",
      "preset": "quick" | "full",
      "python": "3.11.7",
      "platform": "linux",
      "started_unix": 1754400000,        # epoch seconds at suite start
      "total_wall_seconds": 12.34,       # whole-suite wall clock
      "benchmarks": [                    # one entry per bench file
        {
          "file": "bench_latency_formula.py",
          "status": "ok" | "failed",     # pytest exit status
          "wall_seconds": 1.23,          # subprocess wall clock
          "tests": [                     # one entry per benchmark test
            {
              "name": "test_latency_formula",
              "mean_seconds": 0.0012,    # per-round mean
              "stddev_seconds": 0.0001,
              "rounds": 5,
              "extra_info": {...}        # paper-vs-measured metrics
            }
          ]
        }
      ]
    }
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SCHEMA = "multinoc-bench/1"
BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

PRESETS = {
    "quick": [
        "--benchmark-min-rounds=1",
        "--benchmark-warmup=off",
        "--benchmark-max-time=0.1",
        "--benchmark-calibration-precision=1",
    ],
    "full": [],
}


def discover(filters) -> list:
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if filters:
        files = [f for f in files if any(s in f.name for s in filters)]
    return files


def run_one(path: Path, preset: str) -> dict:
    """Run one bench file under pytest, return its report entry."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = tmp.name
    try:
        start = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", str(path), "-q",
                f"--benchmark-json={json_path}", *PRESETS[preset],
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        wall = time.perf_counter() - start
        tests = []
        try:
            data = json.loads(Path(json_path).read_text())
        except (OSError, ValueError):
            data = {"benchmarks": []}
        for bench in data.get("benchmarks", []):
            stats = bench.get("stats", {})
            tests.append(
                {
                    "name": bench.get("name", "?"),
                    "mean_seconds": stats.get("mean"),
                    "stddev_seconds": stats.get("stddev"),
                    "rounds": stats.get("rounds"),
                    "extra_info": bench.get("extra_info", {}),
                }
            )
        entry = {
            "file": path.name,
            "status": "ok" if proc.returncode == 0 else "failed",
            "wall_seconds": round(wall, 3),
            "tests": tests,
        }
        if proc.returncode != 0:
            entry["output_tail"] = proc.stdout[-2000:] + proc.stderr[-2000:]
        return entry
    finally:
        Path(json_path).unlink(missing_ok=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--preset", choices=sorted(PRESETS), default="quick",
        help="quick: 1 round/bench (CI); full: calibrated timing",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_results.json"),
        metavar="FILE", help="where to write the JSON report",
    )
    parser.add_argument(
        "--files", metavar="SUBSTR[,SUBSTR...]",
        help="only run bench files whose name contains a substring",
    )
    args = parser.parse_args(argv)

    filters = [s for s in (args.files or "").split(",") if s]
    files = discover(filters)
    if not files:
        print("no benchmark files matched", file=sys.stderr)
        return 2

    started = int(time.time())
    suite_start = time.perf_counter()
    entries = []
    for path in files:
        print(f"running {path.name} ...", flush=True)
        entry = run_one(path, args.preset)
        mark = "ok" if entry["status"] == "ok" else "FAILED"
        print(
            f"  {mark} in {entry['wall_seconds']:.1f}s "
            f"({len(entry['tests'])} benchmark(s))",
            flush=True,
        )
        entries.append(entry)

    report = {
        "schema": SCHEMA,
        "preset": args.preset,
        "python": ".".join(map(str, sys.version_info[:3])),
        "platform": sys.platform,
        "started_unix": started,
        "total_wall_seconds": round(time.perf_counter() - suite_start, 3),
        "benchmarks": entries,
    }
    Path(args.output).write_text(json.dumps(report, indent=2))

    failed = [e["file"] for e in entries if e["status"] != "ok"]
    total_tests = sum(len(e["tests"]) for e in entries)
    print(
        f"\n{len(files)} file(s), {total_tests} benchmark(s), "
        f"{len(failed)} failed, {report['total_wall_seconds']:.1f}s "
        f"-> {args.output}"
    )
    for name in failed:
        print(f"  FAILED: {name}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
