"""E3 — Section 2.1: 2-flit buffers bound the blocked-wormhole damage;
"Larger buffers can provide enhanced NoC performance".

A contended transpose workload runs to completion at several input
buffer depths; completion time and worst-case latency must improve
monotonically (while the 2-flit default remains the area-frugal choice
the paper made — see E4's router area formula).
"""

import pytest

from conftest import report
from repro.apps.workloads import TrafficConfig, drive_traffic
from repro.fpga import AreaModel
from repro.noc import HermesNetwork

DEPTHS = [2, 4, 8, 16]


def run_contended(depth):
    net = HermesNetwork(4, 4, buffer_depth=depth)
    cfg = TrafficConfig(
        pattern="transpose", rate=0.035, duration=3000, payload_flits=12, seed=5
    )
    drive_traffic(net, cfg)
    sim = net.make_simulator()
    sim.step(cfg.duration)
    net.run_to_drain(sim, max_cycles=500_000)
    net.collect_received()
    return {
        "completion": sim.cycle,
        "max_latency": net.stats.max_latency,
        "delivered": net.stats.packets_delivered,
    }


def test_buffer_depth_ablation(benchmark):
    results = benchmark(lambda: {d: run_contended(d) for d in DEPTHS})
    deliveries = {r["delivered"] for r in results.values()}
    assert len(deliveries) == 1, "same offered load at every depth"

    model = AreaModel()
    rows = []
    for depth in DEPTHS:
        r = results[depth]
        area = model.router(5, buffer_depth=depth).slices
        rows.append(
            (
                f"depth {depth:>2}: completion / max-latency / slices",
                "improves with depth" if depth > 2 else "2-flit baseline",
                f"{r['completion']} / {r['max_latency']} / {area}",
            )
        )
    report(benchmark, "E3 buffer depth vs performance vs area", rows)

    completions = [results[d]["completion"] for d in DEPTHS]
    max_latencies = [results[d]["max_latency"] for d in DEPTHS]
    areas = [model.router(5, buffer_depth=d).slices for d in DEPTHS]
    # performance improves ...
    assert completions == sorted(completions, reverse=True)
    assert max_latencies == sorted(max_latencies, reverse=True)
    # ... but area grows: the paper's 2-flit choice is the area trade-off
    assert areas == sorted(areas)
    assert completions[0] > completions[-1] * 1.2  # a real effect, not noise
