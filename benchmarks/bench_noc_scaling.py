"""E7 — Sections 1/3/5: NoC cost amortises with system size.

"NoCs are a feasible communication medium for systems containing more
than a hundred IPs (e.g. 10x10 NoCs). ... The router surface will
remain constant and the NoC dimensions will scale less than the IPs,
becoming a very small fraction of the whole system, typically less
than 10 or 5%."
"""

import pytest

from conftest import report
from repro.analysis import ip_scale_for_fraction, noc_fraction_sweep
from repro.fpga import AreaModel


def sweep():
    return {
        scale: noc_fraction_sweep([2, 3, 4, 6, 8, 10], ip_area_scale=scale)
        for scale in (1.0, 2.0, 4.0, 8.0)
    }


def test_noc_fraction_amortises(benchmark):
    curves = benchmark(sweep)
    rows = []
    for scale, points in curves.items():
        series = ", ".join(
            f"{p.mesh[0]}x{p.mesh[1]}:{p.noc_fraction:.1%}" for p in points
        )
        rows.append((f"IP scale x{scale:g}", "falls with richer IPs", series))
    ten_pct = ip_scale_for_fraction(0.10)
    five_pct = ip_scale_for_fraction(0.05)
    rows.append(("IP scale for <10% at 10x10", "<10%", f"x{ten_pct:.1f}"))
    rows.append(("IP scale for <5% at 10x10", "<5%", f"x{five_pct:.1f}"))
    report(benchmark, "E7 NoC area fraction vs system size", rows)

    # router surface is constant: per-router slices don't depend on mesh size
    model = AreaModel()
    assert model.router(5).slices == AreaModel().router(5).slices
    # fraction falls monotonically as IPs grow
    at_10x10 = [curves[s][-1].noc_fraction for s in (1.0, 2.0, 4.0, 8.0)]
    assert at_10x10 == sorted(at_10x10, reverse=True)
    # the paper's 10% and 5% figures are reached at plausible IP sizes
    assert curves[4.0][-1].noc_fraction < 0.10
    assert curves[8.0][-1].noc_fraction < 0.05
    assert 1.0 < ten_pct < five_pct < 16.0
