"""E7 — Sections 1/3/5: NoC cost amortises with system size.

"NoCs are a feasible communication medium for systems containing more
than a hundred IPs (e.g. 10x10 NoCs). ... The router surface will
remain constant and the NoC dimensions will scale less than the IPs,
becoming a very small fraction of the whole system, typically less
than 10 or 5%."
"""

import pytest

from conftest import noc_factory, report
from repro.analysis import (
    ip_scale_for_fraction,
    noc_fraction_sweep,
    sweep as load_sweep,
)
from repro.fpga import AreaModel


def sweep():
    return {
        scale: noc_fraction_sweep([2, 3, 4, 6, 8, 10], ip_area_scale=scale)
        for scale in (1.0, 2.0, 4.0, 8.0)
    }


def test_noc_fraction_amortises(benchmark):
    curves = benchmark(sweep)
    rows = []
    for scale, points in curves.items():
        series = ", ".join(
            f"{p.mesh[0]}x{p.mesh[1]}:{p.noc_fraction:.1%}" for p in points
        )
        rows.append((f"IP scale x{scale:g}", "falls with richer IPs", series))
    ten_pct = ip_scale_for_fraction(0.10)
    five_pct = ip_scale_for_fraction(0.05)
    rows.append(("IP scale for <10% at 10x10", "<10%", f"x{ten_pct:.1f}"))
    rows.append(("IP scale for <5% at 10x10", "<5%", f"x{five_pct:.1f}"))
    report(benchmark, "E7 NoC area fraction vs system size", rows)

    # router surface is constant: per-router slices don't depend on mesh size
    model = AreaModel()
    assert model.router(5).slices == AreaModel().router(5).slices
    # fraction falls monotonically as IPs grow
    at_10x10 = [curves[s][-1].noc_fraction for s in (1.0, 2.0, 4.0, 8.0)]
    assert at_10x10 == sorted(at_10x10, reverse=True)
    # the paper's 10% and 5% figures are reached at plausible IP sizes
    assert curves[4.0][-1].noc_fraction < 0.10
    assert curves[8.0][-1].noc_fraction < 0.05
    assert 1.0 < ten_pct < five_pct < 16.0


# -- topology sweep (Berejuck survey / Habib et al.: topology choice is
# the first-order lever on area fraction and saturation latency) --------

#: cmesh node grids are 2N wide at concentration 2, so the 4-bit header
#: nibble caps its sweep at 8x8 routers (16x8 nodes)
TOPOLOGY_SIZES = {"mesh": [2, 4, 8], "torus": [2, 4, 8], "cmesh": [2, 4, 8]}


def area_sweep():
    return {
        kind: noc_fraction_sweep(sizes, topology=kind)
        for kind, sizes in TOPOLOGY_SIZES.items()
    }


def test_topology_area_fraction(benchmark):
    curves = benchmark(area_sweep)
    rows = []
    for kind, points in curves.items():
        series = ", ".join(
            f"{p.mesh[0]}x{p.mesh[1]}:{p.noc_fraction:.1%}" for p in points
        )
        rows.append((f"{kind} NoC area fraction", "topology-dependent", series))
    report(benchmark, "E7b NoC area fraction vs topology", rows)
    at8 = {kind: points[-1].noc_fraction for kind, points in curves.items()}
    # wrap links add ports on the rim: the torus always pays more area
    assert at8["torus"] > at8["mesh"]
    # concentration shares routers between cores: cmesh pays the least
    assert at8["cmesh"] < at8["mesh"]


def saturation_sweep():
    """Latency-load curves for a 4x4 mesh vs torus under uniform traffic."""
    rates = [0.005, 0.02]
    return {
        spec: load_sweep(
            noc_factory(spec), rates=rates, duration=1500, seed=11
        )
        for spec in ("mesh:4x4", "torus:4x4")
    }


def test_topology_saturation_latency(benchmark):
    curves = benchmark(saturation_sweep)
    rows = []
    for spec, points in curves.items():
        series = ", ".join(
            f"@{p.offered_rate:g}:{p.average_latency:.0f}cyc" for p in points
        )
        rows.append((f"{spec} avg latency", "torus cuts hop count", series))
    report(benchmark, "E7c saturation latency vs topology", rows)
    for points in curves.values():
        # latency grows (or holds) with offered load
        assert points[-1].average_latency >= points[0].average_latency * 0.9
        for p in points:
            assert p.average_latency > 0
    # wrap links halve the mean hop distance: the torus delivers faster
    # at every measured load
    for mesh_pt, torus_pt in zip(curves["mesh:4x4"], curves["torus:4x4"]):
        assert torus_pt.average_latency < mesh_pt.average_latency
