"""E9 — Figure 9: the two debugging paths of the Serial software.

1. Direct memory reads — the literal "00 01 01 00 20" byte sequence the
   user typed (read 1 word of P1's local memory at 0020h).
2. printf monitoring — intermediate values streamed to the per-
   processor interaction monitor.
"""

import pytest

from conftest import report
from repro.host import SerialSoftware
from repro.r8 import assemble
from repro.system import MultiNoC


def figure9_flow():
    system = MultiNoC()
    sim = system.make_simulator()
    host = SerialSoftware(system).connect(sim)
    host.sync()

    # a program that stores a result at 0x20 and printfs a progress value
    host.run_program((0, 1), 1, assemble(
        "CLR R0\n"
        "LDI R1, 0x1234\n"
        "LDI R2, 0x20\n"
        "ST R1, R2, R0\n"      # result in memory (debug path 1)
        "LDI R2, 0xFFFF\n"
        "ST R1, R2, R0\n"      # printf (debug path 2)
        "HALT"
    ))

    # Debug path 1: the raw Figure 9 read frame, byte for byte.
    host.uart_tx.send_bytes([0x00, 0x01, 0x01, 0x00, 0x20])
    sim.run_until(lambda: host.read_returns, max_cycles=200_000)
    read_reply = host.read_returns.popleft()

    return host, read_reply


def test_figure9_debugging(benchmark):
    host, read_reply = benchmark(figure9_flow)
    report(
        benchmark,
        "E9 Figure 9 debugging paths",
        [
            ('typed bytes "00 01 01 00 20" return', "memory contents",
             f"[{read_reply.words[0]:#06x}] @ {read_reply.address:#06x}"),
            ("printf monitor shows", "intermediate values",
             [hex(v) for v in host.monitor(1).printf_values]),
        ],
    )
    assert read_reply.address == 0x20
    assert read_reply.words == [0x1234]
    assert host.monitor(1).printf_values == [0x1234]
    assert "printf" in host.monitor(1).transcript()


def test_serial_line_overhead(benchmark):
    """Loading cost over the RS-232 model: cycles per program word."""

    def load_cost():
        system = MultiNoC()
        sim = system.make_simulator()
        host = SerialSoftware(system).connect(sim)
        host.sync()
        obj = assemble(".word " + ", ".join(["7"] * 64))
        start = sim.cycle
        host.load_program((0, 1), obj)
        return (sim.cycle - start) / 64

    cycles_per_word = benchmark(load_cost)
    report(
        benchmark,
        "E9b serial loading overhead",
        [("cycles per 16-bit word", "(low-cost, low-performance link)",
          f"{cycles_per_word:.0f}")],
    )
    # 2 bytes x 10 bits x divisor 4 = 80 cycles minimum per word
    assert cycles_per_word >= 80
