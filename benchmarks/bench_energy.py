"""E15 — Section 1, claim (i): NoC "energy efficiency" versus the bus.

First-order wire-capacitance model over *measured* traffic: each mesh
flit-hop pays for a router traversal plus one short tile-pitch link;
each bus flit drives a wire spanning every IP.  The per-bit energy of
the bus therefore grows linearly with system size while the mesh grows
only with the average hop count (~sqrt(n)).
"""

import pytest

from conftest import report
from repro.analysis import (
    bus_energy_from_stats,
    crossover_ips,
    noc_energy_from_stats,
)
from repro.apps.workloads import TrafficConfig, drive_traffic
from repro.noc import HermesNetwork, SharedBusNetwork

SIZES = [2, 3, 4, 6]


def run_and_measure(n):
    out = {}
    for name, make in (("noc", HermesNetwork), ("bus", SharedBusNetwork)):
        net = make(n, n)
        cfg = TrafficConfig(rate=0.005, duration=2000, payload_flits=8, seed=3)
        drive_traffic(net, cfg)
        sim = net.make_simulator()
        sim.step(cfg.duration)
        net.run_to_drain(sim, max_cycles=2_000_000)
        net.collect_received()
        if name == "noc":
            out[name] = noc_energy_from_stats(net.stats)
        else:
            out[name] = bus_energy_from_stats(net.stats, n * n)
    return out


def test_energy_per_bit_vs_bus(benchmark):
    results = benchmark(lambda: {n: run_and_measure(n) for n in SIZES})
    rows = []
    for n in SIZES:
        noc = results[n]["noc"].pj_per_bit
        bus = results[n]["bus"].pj_per_bit
        rows.append(
            (
                f"{n}x{n} ({n * n} IPs): pJ/bit noc vs bus",
                "NoC more efficient, gap grows",
                f"{noc:.2f} vs {bus:.2f} ({bus / noc:.1f}x)",
            )
        )
    rows.append(
        ("model crossover size", "small systems", f"{crossover_ips()} IPs")
    )
    report(benchmark, "E15 interconnect energy (claim i)", rows)

    ratios = [
        results[n]["bus"].pj_per_bit / results[n]["noc"].pj_per_bit
        for n in SIZES
    ]
    # the NoC wins at every size and the advantage grows with the system
    assert all(r > 1.0 for r in ratios)
    assert ratios == sorted(ratios)
    assert ratios[-1] > 3.0
    # bus energy/bit grows ~linearly with IP count; mesh sub-linearly
    bus_growth = results[6]["bus"].pj_per_bit / results[2]["bus"].pj_per_bit
    noc_growth = results[6]["noc"].pj_per_bit / results[2]["noc"].pj_per_bit
    assert bus_growth > 3 * noc_growth
