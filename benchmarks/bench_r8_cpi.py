"""E11 — Section 2.4: the R8 has a "CPI (Clocks Per Instruction)
between 2 and 4".

Measured on the cycle-accurate core across instruction-mix
microbenchmarks, and cross-checked against the functional simulator's
accounting.
"""

import pytest

from conftest import report
from repro.apps import programs
from repro.core import Program
from repro.r8 import LocalBus, R8Cpu, assemble
from repro.sim import Simulator

MIXES = {
    "pure ALU": "LDL R1, 1\n" + "ADD R2, R2, R1\nXOR R3, R2, R1\n" * 40 + "HALT",
    "memory heavy": (
        "CLR R0\nLDI R6, 0x80\n"
        + "ST R2, R6, R0\nLD R3, R6, R0\n" * 40
        + "HALT"
    ),
    "call heavy": (
        "CLR R0\n" + "JSRD sub\n" * 1 + "LDI R1, 40\nLDL R2, 1\n"
        "loop: JSRD sub\nSUB R1, R1, R2\nJMPZD done\nJMP loop\ndone: HALT\n"
        "sub: RTS"
    ),
    "balanced": programs.instruction_mix(reps=24),
}


def measure_cpi():
    results = {}
    for name, source in MIXES.items():
        bus = LocalBus()
        bus.load(assemble(source).memory_image())
        cpu = R8Cpu("cpu", bus)
        sim = Simulator()
        sim.add(cpu)
        cpu.activate()
        sim.run_until(lambda: cpu.halted, max_cycles=200_000)
        results[name] = cpu.cpi()
    return results


def test_cpi_between_2_and_4(benchmark):
    results = benchmark(measure_cpi)
    rows = [
        (f"{name} mix", "2 <= CPI <= 4", f"{cpi:.2f}")
        for name, cpi in results.items()
    ]
    report(benchmark, "E11 R8 clocks per instruction", rows)
    for name, cpi in results.items():
        assert 2.0 <= cpi <= 4.0, name
    # the mixes genuinely span the range
    assert min(results.values()) < 2.3
    assert max(results.values()) > 2.9


def test_iss_and_cycle_core_agree_on_cycles(benchmark):
    """The functional simulator's CPI table matches the FSM exactly."""

    def compare():
        source = programs.instruction_mix(reps=16)
        iss = Program.from_source(source).simulate()
        bus = LocalBus()
        bus.load(assemble(source).memory_image())
        cpu = R8Cpu("cpu", bus)
        sim = Simulator()
        sim.add(cpu)
        cpu.activate()
        sim.run_until(lambda: cpu.halted, max_cycles=200_000)
        return iss.cycles, cpu.cycles_active

    iss_cycles, core_cycles = benchmark(compare)
    report(
        benchmark,
        "E11b ISS vs cycle-accurate core",
        [("total cycles (ISS vs core)", "identical",
          f"{iss_cycles} vs {core_cycles}")],
    )
    assert iss_cycles == core_cycles
