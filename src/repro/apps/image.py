"""Grayscale image utilities for the edge-detection demo.

The paper's Figure 10 GUI loads an image on the host, streams lines to
the board, and displays the processed result.  These helpers give the
reproduction the same file workflow: PGM (portable graymap) reading and
writing in both ASCII (P2) and binary (P5) flavours, plus synthetic
test-pattern generators.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

Image = List[List[int]]


class PgmError(Exception):
    """Malformed PGM data."""


def _tokens(data: bytes):
    """Yield whitespace-separated header tokens, honouring # comments."""
    pos = 0
    while pos < len(data):
        ch = data[pos : pos + 1]
        if ch.isspace():
            pos += 1
            continue
        if ch == b"#":
            end = data.find(b"\n", pos)
            pos = len(data) if end < 0 else end + 1
            continue
        end = pos
        while end < len(data) and not data[end : end + 1].isspace():
            end += 1
        yield data[pos:end], end
        pos = end


def read_pgm(path: Union[str, Path]) -> Image:
    """Read a P2 (ASCII) or P5 (binary) PGM file into row-major lists."""
    data = Path(path).read_bytes()
    tokens = _tokens(data)
    try:
        magic, _ = next(tokens)
        (width_tok, _), (height_tok, _), (maxval_tok, after_header) = (
            next(tokens),
            next(tokens),
            next(tokens),
        )
    except StopIteration as exc:
        raise PgmError("truncated PGM header") from exc
    if magic not in (b"P2", b"P5"):
        raise PgmError(f"not a PGM file (magic {magic!r})")
    width, height, maxval = int(width_tok), int(height_tok), int(maxval_tok)
    if width < 1 or height < 1 or not 0 < maxval < 65536:
        raise PgmError(f"bad dimensions {width}x{height} maxval {maxval}")

    values: List[int] = []
    if magic == b"P2":
        rest = data[after_header:].split()
        values = [int(v) for v in rest]
    else:
        payload = data[after_header + 1 :]  # single whitespace after maxval
        if maxval < 256:
            values = list(payload[: width * height])
        else:
            raw = payload[: 2 * width * height]
            values = [
                (raw[i] << 8) | raw[i + 1] for i in range(0, len(raw), 2)
            ]
    if len(values) < width * height:
        raise PgmError(
            f"expected {width * height} pixels, found {len(values)}"
        )
    scale = 255 / maxval
    image = []
    for y in range(height):
        row = values[y * width : (y + 1) * width]
        image.append([min(255, round(v * scale)) for v in row])
    return image


def write_pgm(
    image: Sequence[Sequence[int]],
    path: Union[str, Path],
    binary: bool = False,
) -> Path:
    """Write *image* as P5 (binary=True) or P2 PGM."""
    height = len(image)
    width = len(image[0]) if height else 0
    if not width:
        raise PgmError("empty image")
    if any(len(row) != width for row in image):
        raise PgmError("ragged image rows")
    path = Path(path)
    header = f"{'P5' if binary else 'P2'}\n{width} {height}\n255\n"
    if binary:
        body = bytes(min(255, max(0, v)) for row in image for v in row)
        path.write_bytes(header.encode() + body)
    else:
        lines = [" ".join(str(min(255, max(0, v))) for v in row) for row in image]
        path.write_text(header + "\n".join(lines) + "\n")
    return path


# -- synthetic test patterns ---------------------------------------------------


def gradient(width: int, height: int) -> Image:
    """A horizontal luminance ramp (no vertical edges inside)."""
    return [
        [round(x * 255 / max(width - 1, 1)) for x in range(width)]
        for _ in range(height)
    ]


def checkerboard(width: int, height: int, cell: int = 2) -> Image:
    """Alternating bright/dark cells: edges everywhere."""
    return [
        [255 if ((x // cell) + (y // cell)) % 2 else 0 for x in range(width)]
        for y in range(height)
    ]


def disc(width: int, height: int, radius: float = None) -> Image:
    """A bright disc on a dark field (the demo image)."""
    import math

    cx, cy = (width - 1) / 2, (height - 1) / 2
    radius = radius if radius is not None else min(width, height) / 3
    return [
        [
            220 if math.hypot(x - cx, y - cy) < radius else 30
            for x in range(width)
        ]
        for y in range(height)
    ]
