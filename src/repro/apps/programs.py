"""Canned R8 programs used by examples, tests and benchmarks.

Each factory returns assembly source; ``assemble`` them and load with
the host or a simulator.  All programs follow MultiNoC conventions:
results at documented local addresses, I/O through the memory-mapped
FFFF/FFFE/FFFD cells.
"""

from __future__ import annotations

from typing import List


def sum_range(n: int, result_addr: int = 0x80) -> str:
    """Sum 1..n into ``result_addr`` and printf the total."""
    return f"""
; sum 1..{n}
        CLR  R0
        LDI  R1, {n}
        CLR  R2
        LDL  R3, 1
loop:   ADD  R2, R2, R1
        SUB  R1, R1, R3
        JMPZD done
        JMP  loop
done:   LDI  R4, {result_addr}
        ST   R2, R4, R0
        LDI  R4, 0xFFFF
        ST   R2, R4, R0
        HALT
"""


def fibonacci(n: int, result_addr: int = 0x80) -> str:
    """Store fib(0..n-1) at ``result_addr`` (fib(0)=0, fib(1)=1)."""
    return f"""
; first {n} Fibonacci numbers
        CLR  R0
        CLR  R1            ; fib(i)
        LDL  R2, 1         ; fib(i+1)
        LDI  R3, {result_addr}
        LDI  R4, {n}
        LDL  R5, 1
loop:   ST   R1, R3, R0
        ADD  R6, R1, R2
        MOV  R1, R2
        MOV  R2, R6
        ADD  R3, R3, R5
        SUB  R4, R4, R5
        JMPZD done
        JMP  loop
done:   HALT
"""


def vector_add(length: int, a_addr: int, b_addr: int, out_addr: int) -> str:
    """out[i] = a[i] + b[i] for i in 0..length-1 (all local buffers)."""
    return f"""
; vector add, {length} elements
        CLR  R0
        CLR  R1
        LDI  R4, {a_addr}
        LDI  R5, {b_addr}
        LDI  R6, {out_addr}
        LDI  R7, {length}
        LDL  R8, 1
loop:   LD   R2, R4, R1
        LD   R3, R5, R1
        ADD  R2, R2, R3
        ST   R2, R6, R1
        ADD  R1, R1, R8
        SUB  R9, R7, R1
        JMPZD done
        JMP  loop
done:   HALT
"""


def remote_copy(length: int, remote_base: int, local_base: int) -> str:
    """Copy ``length`` words from a remote window into local memory.

    Exercises the NUMA path: every LD crosses the NoC to another IP.
    """
    return f"""
; remote -> local copy, {length} words
        CLR  R0
        CLR  R1
        LDI  R4, {remote_base}
        LDI  R5, {local_base}
        LDI  R6, {length}
        LDL  R7, 1
loop:   LD   R2, R4, R1
        ST   R2, R5, R1
        ADD  R1, R1, R7
        SUB  R8, R6, R1
        JMPZD done
        JMP  loop
done:   HALT
"""


def echo_scanf(times: int) -> str:
    """Read ``times`` values with scanf and printf each straight back."""
    return f"""
; scanf/printf echo x{times}
        CLR  R0
        LDI  R1, {times}
        LDL  R2, 1
        LDI  R3, 0xFFFF
loop:   LD   R4, R3, R0     ; scanf
        ST   R4, R3, R0     ; printf
        SUB  R1, R1, R2
        JMPZD done
        JMP  loop
done:   HALT
"""


def ping(peer_id: int, rounds: int) -> str:
    """Half of a ping-pong pair: notify peer, wait for its notify, repeat.

    Run :func:`pong` on the peer.  Printfs the round count when done.
    """
    return f"""
; ping: drive {rounds} notify/wait rounds with processor {peer_id}
        CLR  R0
        LDI  R1, {rounds}
        LDL  R2, 1
        LDI  R5, {peer_id}
        LDI  R6, 0xFFFD     ; notify address
        LDI  R7, 0xFFFE     ; wait address
loop:   ST   R5, R6, R0     ; notify peer
        ST   R5, R7, R0     ; wait for peer
        SUB  R1, R1, R2
        JMPZD done
        JMP  loop
done:   LDI  R3, {rounds}
        LDI  R4, 0xFFFF
        ST   R3, R4, R0
        HALT
"""


def pong(peer_id: int, rounds: int) -> str:
    """The passive half: wait first, then notify, ``rounds`` times."""
    return f"""
; pong: answer {rounds} notify/wait rounds with processor {peer_id}
        CLR  R0
        LDI  R1, {rounds}
        LDL  R2, 1
        LDI  R5, {peer_id}
        LDI  R6, 0xFFFD
        LDI  R7, 0xFFFE
loop:   ST   R5, R7, R0     ; wait for peer
        ST   R5, R6, R0     ; notify peer
        SUB  R1, R1, R2
        JMPZD done
        JMP  loop
done:   HALT
"""


def instruction_mix(reps: int = 16) -> str:
    """A microbenchmark touching every CPI class (for experiment E11)."""
    body: List[str] = []
    for _ in range(reps):
        body.append("        ADD  R2, R2, R3")
        body.append("        XOR  R4, R2, R3")
        body.append("        SL0  R5, R4")
        body.append("        ST   R2, R6, R0")
        body.append("        LD   R7, R6, R0")
        body.append("        PUSH R2")
        body.append("        POP  R8")
    return (
        """
; CPI instruction mix
        CLR  R0
        LDL  R2, 3
        LDL  R3, 5
        LDI  R6, 0x80
"""
        + "\n".join(body)
        + """
        HALT
"""
    )


def matvec_worker(
    rows: int,
    cols: int,
    row_offset: int,
    matrix_window: int,
    vector_addr: int,
    out_window: int,
) -> str:
    """One worker's share of a distributed matrix-vector multiply.

    The matrix lives row-major in the remote Memory IP (reached through
    ``matrix_window``); the input vector is preloaded into this worker's
    local memory at ``vector_addr``; results go back to the remote memory
    at ``out_window``.  Each worker handles ``rows`` rows starting at
    ``row_offset`` — splitting the row range across processors is the
    whole parallelisation (paper Section 5: "increasing the number of
    identical IPs enhances the parallelism degree").

    Register plan: R1 row, R2 col, R3 acc, R4/R5 operands, R6 row base,
    R9 product, R10 scratch.
    """
    return f"""
; matvec worker: rows {row_offset}..{row_offset + rows - 1} of a {rows}x{cols} share
        CLR  R0
        LDL  R7, 1
        LDI  R1, {row_offset}
        LDI  R11, {row_offset + rows}
row:    ; R6 = matrix base of this row (row * cols, by repeated add)
        CLR  R6
        MOV  R8, R1
rbase:  OR   R8, R8, R8
        JMPZD rdone
        LDI  R10, {cols}
        ADD  R6, R6, R10
        SUB  R8, R8, R7
        JMP  rbase
rdone:  LDI  R10, {matrix_window}
        ADD  R6, R6, R10
        CLR  R2
        CLR  R3
col:    LD   R4, R6, R2      ; matrix[row][col]  (remote read)
        LDI  R10, {vector_addr}
        LD   R5, R10, R2     ; vector[col]       (local read)
        ; R9 = R4 * R5 by shift-add
        CLR  R9
mul:    OR   R5, R5, R5
        JMPZD mdone
        LDI  R10, 1
        AND  R10, R5, R10
        JMPZD mskip
        ADD  R9, R9, R4
mskip:  SL0  R4, R4
        SR0  R5, R5
        JMP  mul
mdone:  ADD  R3, R3, R9
        ADD  R2, R2, R7
        LDI  R10, {cols}
        SUB  R8, R10, R2
        JMPZD coldone
        JMP  col
coldone:
        LDI  R10, {out_window}
        ST   R3, R10, R1     ; out[row] = acc   (remote write)
        ADD  R1, R1, R7
        SUB  R8, R11, R1
        JMPZD all_done
        JMP  row
all_done:
        LDI  R10, 0xFFFF
        ST   R1, R10, R0     ; printf(next row) = done marker
        HALT
"""
