"""Parallel edge detection (paper Section 4, Figure 10).

"In this application the host computer sends an image line, after what
each embedded processor computes one gradient (gx and gy).  Next, that
embedded processor adds gx and gy and notifies the host, which receives
the processed line, and sends a new line to the MultiNoC system."

The reproduction keeps that exact data flow: the host streams 3-line
windows into the processors' local memories, each R8 computes the Sobel
magnitude ``|gx| + |gy|`` of its middle line, signals completion
through the printf service (the host-facing notify), and the host reads
the result line back.  Lines are dealt round-robin over the available
processors, so with two processors both gradients pipelines run
concurrently — the source of the measured speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..host.serial_software import SerialSoftware
from ..r8.assembler import ObjectCode, assemble
from ..system.multinoc import MultiNoC

#: Maximum line width the buffers allow.
MAX_WIDTH = 0x30


@dataclass(frozen=True)
class WorkerLayout:
    """Local-memory layout of a worker program (word addresses).

    The hand-written assembly worker is small enough to keep its buffers
    at 0x200; the C-compiled worker's code is larger, so its buffers sit
    higher (the layout travels with the program).
    """

    row0: int = 0x200  # line above
    row1: int = 0x230  # line to process
    row2: int = 0x260  # line below
    out: int = 0x290
    flag: int = 0x2C0  # host writes line_id+1; worker clears when done
    width: int = 0x2C1


#: Layout of the assembly worker.
ASM_LAYOUT = WorkerLayout()

#: Layout of the C worker (code extends past 0x200).
C_LAYOUT = WorkerLayout(
    row0=0x300, row1=0x330, row2=0x360, out=0x390, flag=0x3B0, width=0x3B1
)

# backwards-compatible constant names (the assembly worker's layout)
ROW0_BASE = ASM_LAYOUT.row0
ROW1_BASE = ASM_LAYOUT.row1
ROW2_BASE = ASM_LAYOUT.row2
OUT_BASE = ASM_LAYOUT.out
FLAG_ADDR = ASM_LAYOUT.flag
WIDTH_ADDR = ASM_LAYOUT.width


def reference_sobel(image: Sequence[Sequence[int]]) -> List[List[int]]:
    """Golden model: per-pixel |gx| + |gy| with zeroed borders."""
    height = len(image)
    width = len(image[0]) if height else 0
    out = [[0] * width for _ in range(height)]
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            a = image
            gx = (
                a[y - 1][x + 1] + 2 * a[y][x + 1] + a[y + 1][x + 1]
                - a[y - 1][x - 1] - 2 * a[y][x - 1] - a[y + 1][x - 1]
            )
            gy = (
                a[y + 1][x - 1] + 2 * a[y + 1][x] + a[y + 1][x + 1]
                - a[y - 1][x - 1] - 2 * a[y - 1][x] - a[y - 1][x + 1]
            )
            out[y][x] = min(255, abs(gx) + abs(gy))
    return out


def worker_source() -> str:
    """R8 assembly for the edge-detection worker.

    Polls FLAG; on line_id+1, computes the Sobel magnitude of ROW1 into
    OUT (borders zero), clears FLAG, printf's the line id, loops.

    Register plan: R0=0, R1=x, R2/R3 row pointers+offsets, R4..R7 pixel
    accumulators, R8 gx, R9 gy, R10 width-1, R11 scratch, R12 line id.
    """
    return f"""
; ---- parallel edge detection worker (Figure 10) ----
        .equ ROW0, {ROW0_BASE}
        .equ ROW1, {ROW1_BASE}
        .equ ROW2, {ROW2_BASE}
        .equ OUT,  {OUT_BASE}
        .equ FLAG, {FLAG_ADDR}
        .equ WIDTH, {WIDTH_ADDR}

start:  CLR  R0
poll:   LDI  R2, FLAG
        LD   R12, R2, R0      ; R12 = line_id + 1 (0 = nothing to do)
        OR   R12, R12, R12
        JMPZD poll
        LDI  R2, WIDTH
        LD   R10, R2, R0      ; R10 = width
        LDL  R11, 1
        SUB  R10, R10, R11    ; R10 = width - 1 (last column)

; zero the border pixels (x = 0 and x = width-1)
        LDI  R2, OUT
        ST   R0, R2, R0
        ST   R0, R2, R10

        LDL  R1, 1            ; x = 1
col:    SUB  R11, R10, R1     ; reached last column?
        JMPZD finish

; gx = (r0[x+1]+2*r1[x+1]+r2[x+1]) - (r0[x-1]+2*r1[x-1]+r2[x-1])
        LDL  R11, 1
        ADD  R3, R1, R11      ; x+1
        LDI  R2, ROW0
        LD   R4, R2, R3
        LDI  R2, ROW1
        LD   R5, R2, R3
        SL0  R5, R5
        ADD  R4, R4, R5
        LDI  R2, ROW2
        LD   R5, R2, R3
        ADD  R4, R4, R5       ; east column sum
        SUB  R3, R1, R11      ; x-1
        LDI  R2, ROW0
        LD   R5, R2, R3
        LDI  R2, ROW1
        LD   R6, R2, R3
        SL0  R6, R6
        ADD  R5, R5, R6
        LDI  R2, ROW2
        LD   R6, R2, R3
        ADD  R5, R5, R6       ; west column sum
        SUB  R8, R4, R5       ; gx
        JMPND gx_neg
        JMPD  gx_done
gx_neg: SUB  R8, R0, R8       ; |gx|
gx_done:

; gy = (r2[x-1]+2*r2[x]+r2[x+1]) - (r0[x-1]+2*r0[x]+r0[x+1])
        LDL  R11, 1
        SUB  R3, R1, R11      ; x-1
        LDI  R2, ROW2
        LD   R4, R2, R3
        LD   R5, R2, R1
        SL0  R5, R5
        ADD  R4, R4, R5
        ADD  R3, R1, R11      ; x+1
        LD   R5, R2, R3
        ADD  R4, R4, R5       ; south row sum
        SUB  R3, R1, R11      ; x-1
        LDI  R2, ROW0
        LD   R5, R2, R3
        LD   R6, R2, R1
        SL0  R6, R6
        ADD  R5, R5, R6
        ADD  R3, R1, R11      ; x+1
        LD   R6, R2, R3
        ADD  R5, R5, R6       ; north row sum
        SUB  R9, R4, R5       ; gy
        JMPND gy_neg
        JMPD  gy_done
gy_neg: SUB  R9, R0, R9       ; |gy|
gy_done:

        ADD  R8, R8, R9       ; |gx| + |gy|
; clamp to 255
        LDI  R11, 255
        SUB  R7, R11, R8      ; 255 - value; borrow set if value > 255
        JMPCD clamp
        JMPD  store
clamp:  MOV  R8, R11
store:  LDI  R2, OUT
        ST   R8, R2, R1

        LDL  R11, 1
        ADD  R1, R1, R11      ; x += 1
        JMP  col

finish: LDI  R2, FLAG         ; hand the line back to the host
        ST   R0, R2, R0
        LDL  R11, 1
        SUB  R12, R12, R11    ; line id
        LDI  R2, 0xFFFF
        ST   R12, R2, R0      ; "notify" the host: printf(line_id)
        JMP  poll
"""


def worker_program() -> ObjectCode:
    """Assembled edge-detection worker."""
    return assemble(worker_source(), filename="edge_worker.asm")


def worker_c_source() -> str:
    """The same worker written in R8C (the future-work C compiler).

    Functionally identical to :func:`worker_source`; slower per pixel
    (stack-machine code generation) but produced straight from C.
    """
    lay = C_LAYOUT
    return f"""
// parallel edge detection worker, C edition
void main() {{
    while (1) {{
        int line = peek({lay.flag});
        if (line == 0) continue;
        int width = peek({lay.width});
        poke({lay.out}, 0);
        poke({lay.out} + width - 1, 0);
        int x = 1;
        while (x < width - 1) {{
            int east = peek({lay.row0} + x + 1)
                     + 2 * peek({lay.row1} + x + 1)
                     + peek({lay.row2} + x + 1);
            int west = peek({lay.row0} + x - 1)
                     + 2 * peek({lay.row1} + x - 1)
                     + peek({lay.row2} + x - 1);
            int gx = east - west;
            if (gx > 32767) gx = 0 - gx;    // |gx| in wrapping arithmetic
            int south = peek({lay.row2} + x - 1)
                      + 2 * peek({lay.row2} + x)
                      + peek({lay.row2} + x + 1);
            int north = peek({lay.row0} + x - 1)
                      + 2 * peek({lay.row0} + x)
                      + peek({lay.row0} + x + 1);
            int gy = south - north;
            if (gy > 32767) gy = 0 - gy;
            int v = gx + gy;
            if (v > 255) v = 255;
            poke({lay.out} + x, v);
            x += 1;
        }}
        poke({lay.flag}, 0);
        printf(line - 1);                   // notify the host: line done
    }}
}}
"""


def worker_c_program() -> ObjectCode:
    """The C worker, compiled to object code."""
    from ..cc import compile_source

    return compile_source(worker_c_source())


@dataclass
class EdgeDetectionResult:
    """Outcome of one edge-detection run."""

    output: List[List[int]]
    cycles: int
    lines_per_processor: dict = field(default_factory=dict)


class EdgeDetectionApp:
    """Host-side driver for the parallel edge detection demo."""

    def __init__(
        self,
        host: SerialSoftware,
        processors: Optional[List[int]] = None,
        program: Optional[ObjectCode] = None,
        layout: Optional[WorkerLayout] = None,
    ):
        self.host = host
        self.system: MultiNoC = host.system
        self.processors = (
            processors
            if processors is not None
            else sorted(self.system.processors)
        )
        self.program = program
        # the buffer layout travels with the program: pass C_LAYOUT with
        # worker_c_program(); the default matches worker_program()
        self.layout = layout if layout is not None else ASM_LAYOUT

    def deploy(self) -> None:
        """Load and start the worker on every participating processor."""
        if not self.host.synced:
            self.host.sync()
        program = self.program if self.program is not None else worker_program()
        for pid in self.processors:
            addr = self.system.config.processors[pid]
            self.host.load_program(addr, program)
            self.host.activate(addr)

    def _send_window(
        self, pid: int, line_id: int, rows: List[List[int]], width: int
    ) -> None:
        addr = self.system.config.processors[pid]
        lay = self.layout
        self.host.write_memory(addr, lay.row0, rows[0])
        self.host.write_memory(addr, lay.row1, rows[1])
        self.host.write_memory(addr, lay.row2, rows[2])
        self.host.write_memory(addr, lay.width, [width])
        self.host.write_memory(addr, lay.flag, [line_id + 1])

    def _await_line(self, pid: int, line_id: int, max_cycles: int) -> None:
        monitor = self.host.monitor(pid)
        done = lambda: line_id in monitor.printf_values
        self.host._run_until(done, max_cycles, f"line {line_id} from P{pid}")

    def _read_line(self, pid: int, width: int) -> List[int]:
        addr = self.system.config.processors[pid]
        return self.host.read_memory(addr, self.layout.out, width)

    def run(
        self, image: Sequence[Sequence[int]], max_cycles_per_line: int = 2_000_000
    ) -> EdgeDetectionResult:
        """Process *image*, pipelining lines over the processors."""
        height = len(image)
        width = len(image[0])
        if width > MAX_WIDTH:
            raise ValueError(f"line width {width} exceeds buffer ({MAX_WIDTH})")
        output = [[0] * width for _ in range(height)]
        start_cycle = self.host._require_sim().cycle
        lines_done: dict = {pid: 0 for pid in self.processors}

        # in-flight bookkeeping: pid -> (line_id)
        pending: dict = {}
        next_line = 1
        order: List[int] = []

        def dispatch(pid: int) -> None:
            nonlocal next_line
            if next_line >= height - 1:
                return
            window = [
                list(image[next_line - 1]),
                list(image[next_line]),
                list(image[next_line + 1]),
            ]
            self._send_window(pid, next_line, window, width)
            pending[pid] = next_line
            next_line += 1

        for pid in self.processors:
            dispatch(pid)
        while pending:
            # collect in dispatch order to keep the pipeline moving
            pid = min(pending, key=pending.get)
            line_id = pending.pop(pid)
            self._await_line(pid, line_id, max_cycles_per_line)
            output[line_id] = self._read_line(pid, width)
            lines_done[pid] += 1
            dispatch(pid)
        cycles = self.host._require_sim().cycle - start_cycle
        return EdgeDetectionResult(output, cycles, lines_done)
