"""Synthetic NoC traffic for network-only experiments.

Standard interconnect evaluation patterns (uniform random, transpose,
bit-complement, hotspot, nearest-neighbour) plus a cycle-timed traffic
source component that injects packets at a configured rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..noc.network import HermesNetwork
from ..noc.ni import NetworkInterface
from ..noc.packet import Packet
from ..sim import Component

Address = Tuple[int, int]


def uniform_random(
    source: Address, width: int, height: int, rng: random.Random
) -> Address:
    """Uniformly random destination, excluding the source."""
    while True:
        target = (rng.randrange(width), rng.randrange(height))
        if target != source:
            return target


def transpose(source: Address, width: int, height: int, rng) -> Address:
    """(x, y) -> (y, x); a classic adversarial pattern for XY routing."""
    x, y = source
    target = (y % width, x % height)
    return target if target != source else ((x + 1) % width, y)


def bit_complement(source: Address, width: int, height: int, rng) -> Address:
    """(x, y) -> (W-1-x, H-1-y): maximum-distance traffic."""
    x, y = source
    target = (width - 1 - x, height - 1 - y)
    return target if target != source else ((x + 1) % width, y)


def hotspot(hot: Address) -> Callable[[Address, int, int, random.Random], Address]:
    """Everyone sends to one node (the paper's serial IP is a natural
    hotspot: all printf/scanf/host traffic converges on router 00)."""

    def pick(source: Address, width: int, height: int, rng) -> Address:
        if source == hot:
            return uniform_random(source, width, height, rng)
        return hot

    return pick


def nearest_neighbour(source: Address, width: int, height: int, rng) -> Address:
    """Send to a random mesh neighbour (local traffic)."""
    x, y = source
    options = [
        (x + dx, y + dy)
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
        if 0 <= x + dx < width and 0 <= y + dy < height
    ]
    return rng.choice(options)


PATTERNS = {
    "uniform": uniform_random,
    "transpose": transpose,
    "bit_complement": bit_complement,
    "neighbour": nearest_neighbour,
}


@dataclass
class TrafficConfig:
    """Open-loop injection parameters.

    ``rate`` is the per-node injection probability per cycle (flits are
    then payload_flits+2 each); the offered load per node in flits/cycle
    is roughly ``rate * (payload_flits + 2)``.
    """

    pattern: str = "uniform"
    rate: float = 0.02
    payload_flits: int = 8
    duration: int = 2000
    seed: int = 42
    hotspot_node: Optional[Address] = None


class TrafficSource(Component):
    """Injects randomly generated packets into one NI on a schedule."""

    def __init__(
        self,
        ni: NetworkInterface,
        width: int,
        height: int,
        config: TrafficConfig,
    ):
        super().__init__(f"traffic{ni.address[0]}{ni.address[1]}")
        self.ni = ni
        self.config = config
        if config.hotspot_node is not None:
            pick = hotspot(config.hotspot_node)
        else:
            pick = PATTERNS[config.pattern]
        x, y = ni.address
        rng = random.Random(config.seed * 1_000_003 + x * 131 + y)
        # Pre-draw the schedule so runs are reproducible regardless of
        # evaluation order.
        self.schedule: List[Tuple[int, Address]] = []
        for cycle in range(config.duration):
            if rng.random() < config.rate:
                self.schedule.append(
                    (cycle, pick(ni.address, width, height, rng))
                )
        self._index = 0
        self.injected = 0

    def eval(self, cycle: int) -> None:
        while (
            self._index < len(self.schedule)
            and self.schedule[self._index][0] <= cycle
        ):
            _, target = self.schedule[self._index]
            payload = [self._index & 0xFF] * self.config.payload_flits
            self.ni.send_packet(Packet(target=target, payload=payload))
            self._index += 1
            self.injected += 1

    def is_quiescent(self) -> bool:
        """A source is pure timed work: between injections it sleeps and
        books a kernel wake at its next scheduled cycle."""
        if self._index < len(self.schedule):
            self.wake_at(self.schedule[self._index][0])
        return True

    @property
    def done(self) -> bool:
        return self._index >= len(self.schedule)

    def reset(self) -> None:
        super().reset()
        self._index = 0
        self.injected = 0


def drive_traffic(network, config: TrafficConfig) -> List[TrafficSource]:
    """Attach a traffic source to every NI of *network*.

    Works with any fabric exposing ``interfaces``/``add_child`` and a
    geometry (:class:`~repro.noc.network.HermesNetwork` or the shared-bus
    baseline :class:`~repro.noc.bus.SharedBusNetwork`).
    """
    geometry = getattr(network, "mesh", network)
    sources = []
    for ni in network.interfaces.values():
        source = TrafficSource(ni, geometry.width, geometry.height, config)
        network.add_child(source)
        sources.append(source)
    return sources
