"""Applications: the Figure 10 edge detector, canned programs, NoC workloads."""

from . import image, programs, workloads
from .edge_detection import (
    ASM_LAYOUT,
    C_LAYOUT,
    EdgeDetectionApp,
    EdgeDetectionResult,
    WorkerLayout,
    reference_sobel,
    worker_c_program,
    worker_c_source,
    worker_program,
    worker_source,
)

__all__ = [
    "ASM_LAYOUT",
    "C_LAYOUT",
    "EdgeDetectionApp",
    "EdgeDetectionResult",
    "image",
    "programs",
    "WorkerLayout",
    "reference_sobel",
    "worker_c_program",
    "worker_c_source",
    "worker_program",
    "worker_source",
    "workloads",
]
