"""Scalability analysis (paper Sections 1, 3 and 5).

Quantifies two of the paper's claims:

* "NoCs are a feasible communication medium for systems containing more
  than a hundred IPs (e.g. 10x10 NoCs). ... The router surface will
  remain constant and the NoC dimensions will scale less than the IPs,
  becoming a very small fraction of the whole system, typically less
  than 10 or 5%."
* "The approach can be extended to any number of processor IPs and/or
  memory IPs, using the natural scalability of NoCs."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..fpga.area import AreaModel


@dataclass
class ScalingPoint:
    """NoC area share for one fabric size / IP richness combination."""

    mesh: Tuple[int, int]
    ip_area_scale: float
    noc_fraction: float
    topology: str = "mesh"

    @property
    def n_ips(self) -> int:
        return self.mesh[0] * self.mesh[1]


def noc_fraction_sweep(
    sizes: Optional[List[int]] = None,
    ip_area_scale: float = 1.0,
    model: Optional[AreaModel] = None,
    topology: str = "mesh",
) -> List[ScalingPoint]:
    """NoC area fraction across square fabric sizes.

    *topology* selects the plugin kind ("mesh", "torus", "cmesh" — the
    latter sized ``nxnx2``), so the paper's "fraction shrinks with
    system size" claim can be checked per topology.
    """
    sizes = sizes if sizes is not None else [2, 3, 4, 5, 6, 8, 10]
    model = model if model is not None else AreaModel()
    points = []
    for n in sizes:
        if topology == "mesh":
            spec = (n, n)
        elif topology == "cmesh":
            spec = f"cmesh:{n}x{n}x2"
        else:
            spec = f"{topology}:{n}x{n}"
        points.append(
            ScalingPoint(
                (n, n),
                ip_area_scale,
                model.noc_fraction(spec, ip_area_scale=ip_area_scale),
                topology=topology,
            )
        )
    return points


def ip_scale_for_fraction(
    target_fraction: float,
    mesh: Tuple[int, int] = (10, 10),
    model: Optional[AreaModel] = None,
    hi: float = 64.0,
) -> float:
    """How much richer the IPs must get for the NoC share to drop below
    *target_fraction* (bisection search on the area model)."""
    model = model if model is not None else AreaModel()
    lo = 1e-3
    if model.noc_fraction(mesh, ip_area_scale=hi) > target_fraction:
        raise ValueError(
            f"even {hi}x IPs keep the NoC above {target_fraction:.0%}"
        )
    for _ in range(64):
        mid = (lo + hi) / 2
        if model.noc_fraction(mesh, ip_area_scale=mid) > target_fraction:
            lo = mid
        else:
            hi = mid
    return hi
