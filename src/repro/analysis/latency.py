"""Analytical latency models for the Hermes NoC.

Two models live here:

* :func:`paper_latency` — the formula printed in the paper's Section 2.1::

      latency = (sum_i R_i + P) x 2

  with ``R_i`` the per-router routing time ("at least 7 clock cycles")
  and ``P`` the packet size in flits, the factor 2 coming from the
  2-cycle handshake.

* :func:`model_latency` — the exact closed form of *this* simulator,
  derived from the router micro-architecture and verified cycle-exact by
  the test suite::

      latency = (routing_cycles + 3) x n + 2 x P - 3

  Per hop a header pays the ``routing_cycles`` control occupancy plus
  three cycles of handshake/pipeline skew; payload then streams at two
  cycles per flit.  Valid for ``buffer_depth >= 2`` (the paper's
  configuration); single-flit buffers cannot overlap the handshake and
  run slower.

Both are linear in hop count and packet size with the identical payload
slope of 2 cycles/flit; they coincide when ``routing_cycles = 11`` (i.e.
``R_i = 7`` in the paper's x2 accounting).  The benchmark for experiment
E1 reports both against measurements.
"""

from __future__ import annotations

from typing import Tuple

from ..noc.routing import route_path


def hops(source: Tuple[int, int], target: Tuple[int, int]) -> int:
    """Number of routers on the XY path, endpoints included (paper's n)."""
    return len(route_path(source, target))


def paper_latency(n_routers: int, packet_flits: int, r_cycles: int = 7) -> int:
    """The paper's minimal latency formula, Section 2.1."""
    if n_routers < 1 or packet_flits < 2:
        raise ValueError("need at least one router and a header+size packet")
    return (n_routers * r_cycles + packet_flits) * 2


def model_latency(
    n_routers: int, packet_flits: int, routing_cycles: int = 7
) -> int:
    """Exact unloaded latency of this simulator's router pipeline."""
    if n_routers < 1 or packet_flits < 2:
        raise ValueError("need at least one router and a header+size packet")
    return (routing_cycles + 3) * n_routers + 2 * packet_flits - 3


def equivalent_routing_cycles(r_paper: int = 7) -> int:
    """routing_cycles value making the simulator match the paper formula
    asymptotically (same per-hop cost)."""
    return 2 * r_paper - 3
