"""Interconnect energy model (paper Section 1, claim (i)).

The paper's first argument for NoCs is "(i) energy efficiency and
reliability".  The standard first-order model behind that claim: wire
energy is proportional to switched capacitance, i.e. to wire *length*.
A mesh moves flits over short point-to-point links (one CLB-pitch hop at
a time) plus a router traversal each hop; a shared bus drives one wire
that spans every IP on the die, so each transfer switches the full-die
capacitance regardless of how far the data actually travels.

Constants are normalised (energy in picojoules per flit) with ratios
taken from the classic early-2000s NoC literature: a router traversal
costs about as much as 1.5 mm of wire, and a Spartan-II CLB pitch is
~0.19 mm.  Absolute values are illustrative; the *shape* — per-bit bus
energy growing with system size while NoC energy grows only with hop
count — is the claim under test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..noc.flit import FLIT_BITS
from ..noc.stats import NetworkStats

#: energy to move one flit across 1 mm of wire (pJ)
WIRE_PJ_PER_FLIT_MM = 0.40
#: energy for one flit to traverse a router (buffers + arbitration + mux)
ROUTER_PJ_PER_FLIT = 0.60
#: physical pitch of one CLB tile on the Spartan-IIe (mm)
CLB_PITCH_MM = 0.19
#: bus arbitration/driver overhead per flit
BUS_DRIVER_PJ_PER_FLIT = 0.30


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy of a traffic run, with a per-bit figure of merit."""

    total_pj: float
    delivered_bits: int

    @property
    def pj_per_bit(self) -> float:
        if self.delivered_bits == 0:
            return 0.0
        return self.total_pj / self.delivered_bits


def link_length_mm(ip_clbs: float) -> float:
    """Length of one mesh link: the pitch of an IP tile.

    IP tiles are squares of ``ip_clbs`` CLBs, so neighbouring routers are
    ``sqrt(ip_clbs)`` CLB pitches apart.
    """
    return math.sqrt(max(ip_clbs, 1.0)) * CLB_PITCH_MM


def bus_length_mm(n_ips: int, ip_clbs: float) -> float:
    """Length of a shared bus serving ``n_ips`` tiles.

    The bus snakes past every IP: total length is one tile pitch per
    connected IP (a generous *lower* bound for a real global bus).
    """
    return n_ips * link_length_mm(ip_clbs)


def noc_flit_hop_pj(ip_clbs: float = 400.0) -> float:
    """Energy for one flit to advance one hop (router + one link)."""
    return ROUTER_PJ_PER_FLIT + WIRE_PJ_PER_FLIT_MM * link_length_mm(ip_clbs)


def bus_flit_pj(n_ips: int, ip_clbs: float = 400.0) -> float:
    """Energy for one flit to cross the shared bus."""
    return (
        BUS_DRIVER_PJ_PER_FLIT
        + WIRE_PJ_PER_FLIT_MM * bus_length_mm(n_ips, ip_clbs)
    )


def noc_energy_from_stats(
    stats: NetworkStats, ip_clbs: float = 400.0
) -> EnergyEstimate:
    """Energy of a measured mesh run: every counted flit-send is one hop
    (router traversal + outgoing link)."""
    flit_hops = sum(stats.flits_sent.values())
    total = flit_hops * noc_flit_hop_pj(ip_clbs)
    return EnergyEstimate(total, stats.delivered_flits * FLIT_BITS)


def bus_energy_from_stats(
    stats: NetworkStats, n_ips: int, ip_clbs: float = 400.0
) -> EnergyEstimate:
    """Energy of a measured shared-bus run: every delivered flit crossed
    the full-length bus exactly once."""
    total = stats.delivered_flits * bus_flit_pj(n_ips, ip_clbs)
    return EnergyEstimate(total, stats.delivered_flits * FLIT_BITS)


def crossover_ips(
    avg_hops: float = None, ip_clbs: float = 400.0, max_ips: int = 4096
) -> int:
    """Smallest system size at which the mesh is more energy-efficient
    than the bus for uniform traffic.

    For an n-IP square mesh, uniform traffic averages ~(2/3)·sqrt(n)
    hops; the bus always pays for n tile-pitches of wire.
    """
    for n in range(2, max_ips + 1):
        hops = avg_hops if avg_hops is not None else (2 / 3) * math.sqrt(n)
        mesh = hops * noc_flit_hop_pj(ip_clbs)
        bus = bus_flit_pj(n, ip_clbs)
        if mesh < bus:
            return n
    raise ValueError("no crossover below max_ips")
