"""Analytical models: latency formula, throughput, area scaling."""

from .energy import (
    EnergyEstimate,
    bus_energy_from_stats,
    bus_flit_pj,
    crossover_ips,
    noc_energy_from_stats,
    noc_flit_hop_pj,
)
from .loadsweep import LoadPoint, measure_point, mesh_factory, saturation_rate, sweep
from .latency import (
    equivalent_routing_cycles,
    hops,
    model_latency,
    paper_latency,
)
from .scaling import ScalingPoint, ip_scale_for_fraction, noc_fraction_sweep
from .throughput import (
    bisection_peak_bps,
    flits_per_cycle_to_bps,
    port_peak_bps,
    router_peak_bps,
)

__all__ = [
    "EnergyEstimate",
    "LoadPoint",
    "bus_energy_from_stats",
    "bus_flit_pj",
    "crossover_ips",
    "noc_energy_from_stats",
    "noc_flit_hop_pj",
    "ScalingPoint",
    "bisection_peak_bps",
    "equivalent_routing_cycles",
    "flits_per_cycle_to_bps",
    "hops",
    "ip_scale_for_fraction",
    "model_latency",
    "noc_fraction_sweep",
    "paper_latency",
    "port_peak_bps",
    "measure_point",
    "mesh_factory",
    "router_peak_bps",
    "saturation_rate",
    "sweep",
]
