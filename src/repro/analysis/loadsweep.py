"""Latency-versus-offered-load characterisation.

The classic interconnect evaluation curve: sweep the injection rate,
measure average latency and accepted throughput, find the saturation
point.  Supports both fabrics (the Hermes mesh and the shared-bus
baseline), backing the paper's bandwidth-scalability claim with the
standard methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..apps.workloads import TrafficConfig, drive_traffic
from ..noc.network import HermesNetwork


@dataclass
class LoadPoint:
    """One point of the latency/throughput curve."""

    offered_rate: float  # packets per node per cycle
    offered_flits_per_cycle: float  # whole-fabric offered load
    accepted_flits_per_cycle: float  # delivered flits over the whole run
    average_latency: float
    max_latency: int
    injection_window: int
    completion_cycles: int

    @property
    def saturated(self) -> bool:
        """The fabric needed substantially longer than the injection
        window to drain the offered traffic: demand exceeded capacity."""
        return self.completion_cycles > 1.25 * self.injection_window


def measure_point(
    fabric_factory: Callable[[], object],
    rate: float,
    pattern: str = "uniform",
    payload_flits: int = 8,
    duration: int = 2000,
    seed: int = 11,
    max_cycles: int = 3_000_000,
) -> LoadPoint:
    """Run one injection rate to completion and collect the metrics."""
    net = fabric_factory()
    config = TrafficConfig(
        pattern=pattern,
        rate=rate,
        duration=duration,
        payload_flits=payload_flits,
        seed=seed,
    )
    sources = drive_traffic(net, config)
    sim = net.make_simulator()
    sim.step(duration)
    net.run_to_drain(sim, max_cycles=max_cycles)
    net.collect_received()
    injected = sum(s.injected for s in sources)
    n_nodes = len(net.interfaces)
    flits_per_packet = payload_flits + 2
    return LoadPoint(
        offered_rate=rate,
        offered_flits_per_cycle=rate * n_nodes * flits_per_packet,
        accepted_flits_per_cycle=(
            net.stats.delivered_flits / sim.cycle if sim.cycle else 0.0
        ),
        average_latency=net.stats.average_latency,
        max_latency=net.stats.max_latency,
        injection_window=duration,
        completion_cycles=sim.cycle,
    )


def sweep(
    fabric_factory: Callable[[], object],
    rates: Optional[List[float]] = None,
    **kwargs,
) -> List[LoadPoint]:
    """Measure a whole latency-load curve."""
    rates = rates if rates is not None else [0.002, 0.005, 0.01, 0.02, 0.04]
    return [measure_point(fabric_factory, rate, **kwargs) for rate in rates]


def saturation_rate(
    fabric_factory: Callable[[], object],
    lo: float = 0.001,
    hi: float = 0.2,
    iterations: int = 6,
    **kwargs,
) -> float:
    """Bisect for the injection rate where the fabric saturates."""
    if not measure_point(fabric_factory, hi, **kwargs).saturated:
        return hi
    for _ in range(iterations):
        mid = (lo + hi) / 2
        if measure_point(fabric_factory, mid, **kwargs).saturated:
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2


def mesh_factory(
    width: int, height: int, **kwargs
) -> Callable[[], HermesNetwork]:
    """Convenience factory-factory for sweeps over mesh sizes."""
    return lambda: HermesNetwork(width, height, **kwargs)
