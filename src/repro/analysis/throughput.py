"""Throughput models (paper Section 2.1).

"At the operating frequency of 50MHz, with a word size (flit) of 8 bits
the theoretical peak throughput of each Hermes router is 1Gbits/s."

The handshake moves one flit per two cycles per port, so each port
carries ``flit_bits / 2`` bits per cycle; a five-port router at 50 MHz
yields 5 x 4 bits x 50 MHz = 1 Gbit/s.
"""

from __future__ import annotations


def port_peak_bps(clock_hz: float = 50e6, flit_bits: int = 8) -> float:
    """Peak bandwidth of one router port (one direction)."""
    return clock_hz * flit_bits / 2.0


def router_peak_bps(
    ports: int = 5, clock_hz: float = 50e6, flit_bits: int = 8
) -> float:
    """Aggregate peak bandwidth of a router across all output ports."""
    return ports * port_peak_bps(clock_hz, flit_bits)


def bisection_peak_bps(
    width: int, height: int, clock_hz: float = 50e6, flit_bits: int = 8
) -> float:
    """Peak bandwidth across the mesh bisection (both directions)."""
    cut_links = 2 * min(width, height)
    return cut_links * port_peak_bps(clock_hz, flit_bits)


def flits_per_cycle_to_bps(
    flits_per_cycle: float, clock_hz: float = 50e6, flit_bits: int = 8
) -> float:
    """Convert a measured flit rate into bits per second."""
    return flits_per_cycle * flit_bits * clock_hz
