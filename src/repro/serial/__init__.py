"""Serial IP core: RS-232 UART models and the host byte protocol."""

from . import protocol
from .serial_ip import SerialIp
from .uart import FRAME_BITS, AutoBaudUartRx, UartRx, UartTx

__all__ = [
    "AutoBaudUartRx",
    "FRAME_BITS",
    "SerialIp",
    "UartRx",
    "UartTx",
    "protocol",
]
