"""The Serial IP core (paper Section 2.2).

"The basic function of the Serial IP is to assemble and disassemble
packets.  When information comes from the host computer, the Serial IP
creates a valid NoC packet.  When a packet is received from the NoC it
must be disassembled, and sent serially to the host computer."
"""

from __future__ import annotations

from typing import List, Tuple

from ..noc import services
from ..noc.flit import decode_address, encode_address, split_word
from ..noc.ni import NetworkInterface
from ..noc.packet import Packet
from ..sim import Component, Wire
from . import protocol
from .uart import AutoBaudUartRx, UartTx


class SerialIp(Component):
    """RS-232 <-> Hermes bridge at a router's Local port.

    Parameters
    ----------
    rxd:
        1-bit line carrying host->board traffic (create with ``reset=1``).
    txd:
        1-bit line carrying board->host traffic (owned and driven here).
    """

    def __init__(
        self,
        name: str,
        address: Tuple[int, int],
        rxd: Wire,
        txd: Wire,
        tx_divisor: int = 4,
        stats=None,
    ):
        super().__init__(name)
        self.noc_address = address
        self.uart_rx = AutoBaudUartRx(f"{name}.rx", rxd)
        self.uart_tx = UartTx(f"{name}.tx", txd, divisor=tx_divisor)
        self.ni = NetworkInterface(f"{name}.ni", address, stats=stats)
        self.add_child(self.uart_rx)
        self.add_child(self.uart_tx)
        self.add_child(self.ni)
        self._frame: List[int] = []
        self.frames_processed = 0
        self.dropped_packets: List[Packet] = []
        #: optional TelemetrySink; hooks are behind one None-check each
        self.sink = None
        self._now = 0

    def attach_telemetry(self, sink) -> None:
        """Register this IP (and its NI) as tracks; enable hooks."""
        self.sink = sink
        sink.track(self.name, process="serial")
        sink.track(self.ni.name, process="noc")
        self.ni.sink = sink

    @property
    def synced(self) -> bool:
        """True once the 0x55 auto-baud byte has been received."""
        return self.uart_rx.synced

    @property
    def busy(self) -> bool:
        return (
            bool(self._frame)
            or self.uart_tx.busy
            or self.ni.tx_busy
            or bool(self.uart_rx.received)
        )

    def eval(self, cycle: int) -> None:
        if self.sink is not None:
            self._now = cycle
        # inlined child walk (rx, tx, ni are the bridge's only children)
        self.uart_rx.eval(cycle)
        self.uart_tx.eval(cycle)
        self.ni.eval(cycle)
        if self.uart_rx.synced:
            # Match the board UART transmit rate to the learned baud rate.
            self.uart_tx.divisor = self.uart_rx.divisor
        self._assemble_host_frames()
        self._disassemble_noc_packets()

    def is_quiescent(self) -> bool:
        """Idle when both UARTs and the NI are silent and nothing is
        undelivered.  A partially assembled host frame (``_frame``) is
        frozen state — only a new UART byte extends it, and that byte
        wakes the bridge through the receiver's watched line."""
        return (
            self.uart_rx.is_quiescent()
            and self.uart_tx.is_quiescent()
            and not self.ni.received
            and self.ni.is_quiescent()
        )

    def on_wake(self, skipped_cycles: int) -> None:
        """Forward the skip credit to both UARTs (phase/count advance)."""
        self.uart_tx.on_wake(skipped_cycles)
        self.uart_rx.on_wake(skipped_cycles)

    def reset(self) -> None:
        super().reset()
        self._frame = []
        self.frames_processed = 0
        self.dropped_packets = []

    # -- checkpointing ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "frame": list(self._frame),
            "frames_processed": self.frames_processed,
            "dropped": [p.to_state() for p in self.dropped_packets],
            "now": self._now,
        }

    def restore_state(self, state: dict) -> None:
        self._frame = list(state["frame"])
        self.frames_processed = state["frames_processed"]
        self.dropped_packets = [
            Packet.from_state(p) for p in state["dropped"]
        ]
        self._now = state["now"]

    # -- host -> NoC -----------------------------------------------------------

    def _assemble_host_frames(self) -> None:
        while self.uart_rx.received:
            self._frame.append(self.uart_rx.received.popleft())
            length = protocol.host_frame_length(self._frame)
            if length is not None and len(self._frame) >= length:
                frame, self._frame = self._frame[:length], self._frame[length:]
                self._dispatch_host_frame(frame)

    def _dispatch_host_frame(self, frame: List[int]) -> None:
        cmd = frame[0]
        target = decode_address(frame[1])
        own_flit = encode_address(*self.noc_address)
        if cmd == protocol.HostCommand.READ:
            count = frame[2]
            address = (frame[3] << 8) | frame[4]
            packet = services.encode_read(target, own_flit, address, count)
        elif cmd == protocol.HostCommand.WRITE:
            count = frame[2]
            address = (frame[3] << 8) | frame[4]
            words = [
                (frame[5 + 2 * i] << 8) | frame[6 + 2 * i] for i in range(count)
            ]
            packet = services.encode_write(target, address, words)
        elif cmd == protocol.HostCommand.ACTIVATE:
            packet = services.encode_activate(target)
        elif cmd == protocol.HostCommand.SCANF_RETURN:
            value = (frame[2] << 8) | frame[3]
            packet = services.encode_scanf_return(target, value)
        else:  # pragma: no cover - host_frame_length already rejects
            raise protocol.ProtocolError(f"unknown command {cmd:#04x}")
        self.ni.send_packet(packet)
        self.frames_processed += 1
        if self.sink is not None:
            self.sink.instant(
                self.name,
                "host_frame",
                self._now,
                command=protocol.HostCommand(cmd).name,
                target=f"{target[0]},{target[1]}",
            )

    # -- NoC -> host -------------------------------------------------------------

    def _disassemble_noc_packets(self) -> None:
        while self.ni.has_received():
            packet = self.ni.pop_received()
            try:
                message = services.decode(packet)
            except services.ServiceError:
                self.dropped_packets.append(packet)
                continue
            if isinstance(message, services.ReadReturn):
                hi, lo = split_word(message.address)
                frame = [protocol.BoardReply.READ_RETURN, hi, lo, len(message.words)]
                for word in message.words:
                    whi, wlo = split_word(word)
                    frame.extend((whi, wlo))
            elif isinstance(message, services.Printf):
                frame = [protocol.BoardReply.PRINTF, message.proc, len(message.words)]
                for word in message.words:
                    whi, wlo = split_word(word)
                    frame.extend((whi, wlo))
            elif isinstance(message, services.Scanf):
                frame = [protocol.BoardReply.SCANF, message.proc]
            else:
                self.dropped_packets.append(packet)
                continue
            self.uart_tx.send_bytes(frame)
            if self.sink is not None:
                self.sink.instant(
                    self.name,
                    "board_reply",
                    self._now,
                    reply=protocol.BoardReply(frame[0]).name,
                )
