"""Bit-level RS-232 UART models.

Frames are the classic 8N1: one start bit (low), eight data bits LSB
first, one stop bit (high); the line idles high.  The bit period is
``divisor`` clock cycles, so different host/board clock ratios can be
exercised — which is why MultiNoC needs the 0x55 synchronisation byte
(see :class:`AutoBaudUartRx`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..sim import Component, Wire

#: Bits per 8N1 frame: start + 8 data + stop.
FRAME_BITS = 10


class UartTx(Component):
    """Serialises queued bytes onto a 1-bit line."""

    def __init__(self, name: str, line: Wire, divisor: int = 4):
        super().__init__(name)
        if divisor < 2:
            raise ValueError("UART divisor must be at least 2 cycles per bit")
        self.line = line
        self.divisor = divisor
        self.adopt_wires([line])
        self.queue: Deque[int] = deque()
        self._bits: list = []
        self._bit_index = 0
        self._phase = 0
        self._cycle = 0

    def send_byte(self, byte: int) -> None:
        if not 0 <= byte <= 0xFF:
            raise ValueError(f"byte {byte!r} out of range")
        self.queue.append(byte)
        self.wake()

    def send_bytes(self, data) -> None:
        for b in data:
            self.send_byte(b)

    @property
    def busy(self) -> bool:
        return bool(self.queue) or bool(self._bits)

    def eval(self, cycle: int) -> None:
        self._cycle = cycle
        if not self._bits:
            if self.queue:
                byte = self.queue.popleft()
                data_bits = [(byte >> i) & 1 for i in range(8)]
                self._bits = [0] + data_bits + [1]
                self._bit_index = 0
                self._phase = 0
            else:
                self.line.drive(1)  # idle high
                return
        self.line.drive(self._bits[self._bit_index])
        self._phase += 1
        if self._phase >= self.divisor:
            self._phase = 0
            self._bit_index += 1
            if self._bit_index >= len(self._bits):
                self._bits = []

    def is_quiescent(self) -> bool:
        """Sleep whenever the next eval cannot change the line.

        Mid-frame the line only changes at bit boundaries: with the
        current bit worth ``divisor - phase`` more identical drives, the
        transmitter books a wake for the first eval presenting the next
        bit and skips the pure phase-counting evals in between (they are
        re-credited by :meth:`on_wake`).  Fully idle, it sleeps until
        :meth:`send_byte` wakes it.
        """
        if self._bits:
            p = self._phase
            if p == 0:
                return False  # a new bit value goes out next eval
            if not self.queue and self._bit_index == len(self._bits) - 1:
                # Final bit of the final frame: stay awake so ``busy``
                # flips false at the exact cycle lock-step would clear
                # it — host drain predicates probe it between cycles.
                return False
            self.wake_at(self._cycle + self.divisor - p + 1)
            return True
        return not self.queue and self.line.value == 1

    def on_wake(self, skipped_cycles: int) -> None:
        """Re-credit skipped mid-frame evals: each was exactly one phase
        increment driving the unchanged current bit."""
        if skipped_cycles <= 0 or not self._bits:
            return
        self._phase += skipped_cycles
        if self._phase >= self.divisor:
            # the skipped span covers at most one bit boundary (the wake
            # lands on the eval right after it)
            self._phase -= self.divisor
            self._bit_index += 1
            if self._bit_index >= len(self._bits):
                self._bits = []

    def reset(self) -> None:
        # The line wire must be created with reset=1 (RS-232 idles high).
        super().reset()
        self.queue.clear()
        self._bits = []

    def snapshot_state(self) -> dict:
        return {
            "queue": list(self.queue),
            "bits": list(self._bits),
            "bit_index": self._bit_index,
            "phase": self._phase,
            "cycle": self._cycle,
            # learned at runtime when slaved to an auto-baud receiver
            "divisor": self.divisor,
        }

    def restore_state(self, state: dict) -> None:
        self.queue = deque(state["queue"])
        self._bits = list(state["bits"])
        self._bit_index = state["bit_index"]
        self._phase = state["phase"]
        self._cycle = state["cycle"]
        self.divisor = state["divisor"]


class UartRx(Component):
    """Deserialises bytes from a 1-bit line at a known divisor."""

    def __init__(self, name: str, line: Wire, divisor: int = 4):
        super().__init__(name)
        if divisor < 2:
            raise ValueError("UART divisor must be at least 2 cycles per bit")
        self.line = line
        self.divisor = divisor
        # The receiver wakes on any committed change of the serial line
        # (a start-bit or sync edge); while sampling it stays awake.
        self.watch_wires([line])
        self.received: Deque[int] = deque()
        self.framing_errors = 0
        self._sampling = False
        self._count = 0
        self._bits: list = []
        self._cycle = 0

    def eval(self, cycle: int) -> None:
        self._cycle = cycle
        level = self.line.value
        if not self._sampling:
            if level == 0:  # start-bit edge
                self._sampling = True
                self._count = 0
                self._bits = []
            return
        self._count += 1
        # Sample each bit at its mid-point: start bit at divisor/2, data
        # bit k at divisor/2 + (k+1)*divisor ...
        offset = self._count - self.divisor // 2
        if offset >= 0 and offset % self.divisor == 0:
            bit_index = offset // self.divisor
            if bit_index == 0:
                if level != 0:  # glitch, not a real start bit
                    self._sampling = False
                return
            if bit_index <= 8:
                self._bits.append(level)
                return
            # stop bit
            if level != 1:
                self.framing_errors += 1
            else:
                byte = 0
                for i, bit in enumerate(self._bits):
                    byte |= bit << i
                self.received.append(byte)
            self._sampling = False

    def is_quiescent(self) -> bool:
        """Sleep whenever the next eval cannot act.

        While framing, evals between bit sample points only advance the
        cycle counter — the receiver books a wake for the next mid-bit
        sample (skipped counts are re-credited by :meth:`on_wake`) and
        sleeps; a line edge wakes it early through the watched wire,
        which is harmless.  Outside a frame it sleeps until the line
        drops (start bit) or a buffered byte is drained by its parent.
        """
        if self._sampling:
            off = self._count - self.divisor // 2
            k = -off if off < 0 else self.divisor - off % self.divisor
            if k < 2:
                return False
            self.wake_at(self._cycle + k)
            return True
        return not self.received and self.line.value != 0

    def on_wake(self, skipped_cycles: int) -> None:
        """Re-credit skipped mid-frame evals: each was exactly one
        ``_count`` increment with no sample point reached."""
        if skipped_cycles > 0 and self._sampling:
            self._count += skipped_cycles

    def pop_byte(self) -> Optional[int]:
        return self.received.popleft() if self.received else None

    def reset(self) -> None:
        super().reset()
        self.received.clear()
        self.framing_errors = 0
        self._sampling = False

    def snapshot_state(self) -> dict:
        return {
            "received": list(self.received),
            "framing_errors": self.framing_errors,
            "sampling": self._sampling,
            "count": self._count,
            "bits": list(self._bits),
            "cycle": self._cycle,
            "divisor": self.divisor,
        }

    def restore_state(self, state: dict) -> None:
        self.received = deque(state["received"])
        self.framing_errors = state["framing_errors"]
        self._sampling = state["sampling"]
        self._count = state["count"]
        self._bits = list(state["bits"])
        self._cycle = state["cycle"]
        self.divisor = state["divisor"]


class AutoBaudUartRx(UartRx):
    """UART receiver that learns its divisor from the 0x55 sync byte.

    "The MultiNoC system must receive from the Serial software the host
    computer baud rate ... achieved transmitting the value 55H" (paper
    Section 4).  0x55 sent LSB-first toggles the line on every bit, so
    the shortest observed edge-to-edge interval *is* the bit period.
    """

    SYNC_EDGES = 9  # start + 8 alternating data bits give 9+ edges

    def __init__(self, name: str, line: Wire):
        super().__init__(name, line, divisor=2)
        self.synced = False
        self._last_level = 1
        self._last_edge_cycle: Optional[int] = None
        self._intervals: list = []

    def is_quiescent(self) -> bool:
        """Pre-sync the receiver only acts on line *edges*, so it can
        sleep whenever the level matches the last one seen — the watched
        line wakes it exactly at each edge, keeping the measured
        intervals identical to lock-step evaluation."""
        if self.synced:
            return super().is_quiescent()
        return self.line.value == self._last_level and not self.received

    def eval(self, cycle: int) -> None:
        if self.synced:
            super().eval(cycle)
            return
        self._cycle = cycle
        level = self.line.value
        if level != self._last_level:
            if self._last_edge_cycle is not None:
                self._intervals.append(cycle - self._last_edge_cycle)
            self._last_edge_cycle = cycle
            self._last_level = level
            if len(self._intervals) >= self.SYNC_EDGES:
                self.divisor = max(2, min(self._intervals))
                self.synced = True
                # The sync byte itself is consumed by synchronisation; the
                # final stop bit leaves the line idle, ready for framing.

    def reset(self) -> None:
        super().reset()
        self.synced = False
        self._last_level = 1
        self._last_edge_cycle = None
        self._intervals = []

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state.update(
            synced=self.synced,
            last_level=self._last_level,
            last_edge_cycle=self._last_edge_cycle,
            intervals=list(self._intervals),
        )
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.synced = state["synced"]
        self._last_level = state["last_level"]
        self._last_edge_cycle = state["last_edge_cycle"]
        self._intervals = list(state["intervals"])
