"""The host <-> Serial IP byte protocol.

The Serial IP "accepts seven commands.  Four commands are handled by the
host computer: read from memory, write to memory, activate processor,
scanf return.  The other three ... come from the HERMES NoC to the host:
printf, scanf, read return" (paper Section 2.2).

Frames are byte sequences on the RS-232 line.  The read frame matches
the paper's Figure 9 example — the user types ``00 01 01 00 20`` for
"read (00) from P1 processor local memory (01), one position (01),
starting at 0020H" — so the second byte is the NoC address flit of the
target IP.

Host -> board::

    READ          00 target count addr_hi addr_lo
    WRITE         01 target count addr_hi addr_lo (data_hi data_lo)*count
    ACTIVATE      02 target
    SCANF_RETURN  03 target data_hi data_lo

Board -> host::

    READ_RETURN   10 addr_hi addr_lo count (data_hi data_lo)*count
    PRINTF        11 proc count (data_hi data_lo)*count
    SCANF         12 proc
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

from ..noc.flit import split_word, words_to_flits

#: The auto-baud synchronisation byte (paper Section 4).
SYNC_BYTE = 0x55


class HostCommand(IntEnum):
    READ = 0x00
    WRITE = 0x01
    ACTIVATE = 0x02
    SCANF_RETURN = 0x03


class BoardReply(IntEnum):
    READ_RETURN = 0x10
    PRINTF = 0x11
    SCANF = 0x12


class ProtocolError(Exception):
    """A malformed frame arrived on the serial line."""


# -- host-side frame builders --------------------------------------------------


def frame_read(target: int, address: int, count: int) -> List[int]:
    if not 1 <= count <= 0xFF:
        raise ProtocolError(f"read count {count} out of range 1..255")
    hi, lo = split_word(address)
    return [HostCommand.READ, target, count, hi, lo]


def frame_write(target: int, address: int, words: Sequence[int]) -> List[int]:
    if not 1 <= len(words) <= 0xFF:
        raise ProtocolError(f"write count {len(words)} out of range 1..255")
    hi, lo = split_word(address)
    return [HostCommand.WRITE, target, len(words), hi, lo, *words_to_flits(words)]


def frame_activate(target: int) -> List[int]:
    return [HostCommand.ACTIVATE, target]


def frame_scanf_return(target: int, value: int) -> List[int]:
    hi, lo = split_word(value)
    return [HostCommand.SCANF_RETURN, target, hi, lo]


# -- incremental frame parsing ----------------------------------------------------


def host_frame_length(buffer: Sequence[int]) -> Optional[int]:
    """Total length of the host->board frame starting *buffer*, or None
    if more bytes are needed to know."""
    if not buffer:
        return None
    cmd = buffer[0]
    if cmd == HostCommand.READ:
        return 5
    if cmd == HostCommand.WRITE:
        if len(buffer) < 3:
            return None
        return 5 + 2 * buffer[2]
    if cmd == HostCommand.ACTIVATE:
        return 2
    if cmd == HostCommand.SCANF_RETURN:
        return 4
    raise ProtocolError(f"unknown host command byte {cmd:#04x}")


def board_frame_length(buffer: Sequence[int]) -> Optional[int]:
    """Total length of the board->host frame starting *buffer*."""
    if not buffer:
        return None
    cmd = buffer[0]
    if cmd == BoardReply.READ_RETURN:
        if len(buffer) < 4:
            return None
        return 4 + 2 * buffer[3]
    if cmd == BoardReply.PRINTF:
        if len(buffer) < 3:
            return None
        return 3 + 2 * buffer[2]
    if cmd == BoardReply.SCANF:
        return 2
    raise ProtocolError(f"unknown board reply byte {cmd:#04x}")


# -- decoded board replies (host side) -----------------------------------------------


@dataclass
class ReadReturnFrame:
    address: int
    words: List[int]


@dataclass
class PrintfFrame:
    proc: int
    words: List[int]


@dataclass
class ScanfFrame:
    proc: int


def parse_board_frame(frame: Sequence[int]):
    """Parse a complete board->host frame into its dataclass."""
    cmd = frame[0]
    if cmd == BoardReply.READ_RETURN:
        count = frame[3]
        words = [
            (frame[4 + 2 * i] << 8) | frame[5 + 2 * i] for i in range(count)
        ]
        return ReadReturnFrame(address=(frame[1] << 8) | frame[2], words=words)
    if cmd == BoardReply.PRINTF:
        count = frame[2]
        words = [
            (frame[3 + 2 * i] << 8) | frame[4 + 2 * i] for i in range(count)
        ]
        return PrintfFrame(proc=frame[1], words=words)
    if cmd == BoardReply.SCANF:
        return ScanfFrame(proc=frame[1])
    raise ProtocolError(f"unknown board reply byte {cmd:#04x}")
