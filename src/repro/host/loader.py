"""Object-code file loading (the "Send Generated Object Code" flow step)."""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..r8.assembler import ObjectCode, assemble


def load_object_file(path: Union[str, Path]) -> ObjectCode:
    """Read an R8 object text file produced by the assembler/simulator."""
    return ObjectCode.from_text(Path(path).read_text())


def save_object_file(obj: ObjectCode, path: Union[str, Path]) -> None:
    """Write object code in the serial-software text format."""
    Path(path).write_text(obj.to_text())


def assemble_file(path: Union[str, Path]) -> ObjectCode:
    """Assemble an ``.asm`` source file."""
    source_path = Path(path)
    return assemble(source_path.read_text(), filename=str(source_path))
