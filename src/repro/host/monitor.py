"""Per-processor interaction monitors.

"the Serial software has interaction monitors for each processor"
(paper Section 4, Figure 9): every printf/scanf exchanged with a
processor is logged here, timestamped with the simulation cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class InteractionMonitor:
    """I/O log of one processor, as shown in the Serial software GUI."""

    proc: int
    printfs: List[Tuple[int, int]] = field(default_factory=list)  # (cycle, value)
    scanfs: List[Tuple[int, Optional[int]]] = field(default_factory=list)
    #: answers that arrived with no scanf pending: (cycle or None, value).
    #: A protocol-level anomaly worth surfacing, not silently dropping.
    unmatched_answers: List[Tuple[Optional[int], int]] = field(
        default_factory=list
    )

    def log_printf(self, cycle: int, value: int) -> None:
        self.printfs.append((cycle, value))

    def log_scanf_request(self, cycle: int) -> None:
        self.scanfs.append((cycle, None))

    def log_scanf_answer(self, value: int, cycle: Optional[int] = None) -> None:
        for i in range(len(self.scanfs) - 1, -1, -1):
            if self.scanfs[i][1] is None:
                self.scanfs[i] = (self.scanfs[i][0], value)
                return
        self.unmatched_answers.append((cycle, value))

    # -- checkpoint format ------------------------------------------------

    def to_state(self) -> dict:
        return {
            "proc": self.proc,
            "printfs": [list(p) for p in self.printfs],
            "scanfs": [list(s) for s in self.scanfs],
            "unmatched_answers": [list(u) for u in self.unmatched_answers],
        }

    @classmethod
    def from_state(cls, state: dict) -> "InteractionMonitor":
        return cls(
            proc=state["proc"],
            printfs=[tuple(p) for p in state["printfs"]],
            scanfs=[tuple(s) for s in state["scanfs"]],
            unmatched_answers=[
                tuple(u) for u in state["unmatched_answers"]
            ],
        )

    @property
    def printf_values(self) -> List[int]:
        return [value for _, value in self.printfs]

    @property
    def unmatched_answer_count(self) -> int:
        """Scanf answers that found no pending request to pair with."""
        return len(self.unmatched_answers)

    def transcript(self) -> str:
        """Human-readable session log, one line per interaction."""
        events = [
            (c, f"[{c:>8}]", f"P{self.proc} printf -> {v:#06x} ({v})")
            for c, v in self.printfs
        ]
        events += [
            (
                c,
                f"[{c:>8}]",
                f"P{self.proc} scanf <- "
                + (f"{v:#06x} ({v})" if v is not None else "<pending>"),
            )
            for c, v in self.scanfs
        ]
        events += [
            (
                c if c is not None else 1 << 62,
                f"[{c:>8}]" if c is not None else f"[{'?':>8}]",
                f"P{self.proc} scanf <- {v:#06x} ({v}) (unmatched answer)",
            )
            for c, v in self.unmatched_answers
        ]
        events.sort(key=lambda e: e[0])
        return "\n".join(f"{stamp} {text}" for _, stamp, text in events)
