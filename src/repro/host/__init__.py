"""Host computer model: the Serial software and its helpers."""

from .loader import assemble_file, load_object_file, save_object_file
from .monitor import InteractionMonitor
from .serial_software import HostTimeout, SerialSoftware

__all__ = [
    "HostTimeout",
    "InteractionMonitor",
    "SerialSoftware",
    "assemble_file",
    "load_object_file",
    "save_object_file",
]
