"""The host-side "Serial software" (paper Section 4, references [4]).

:class:`SerialSoftware` is the program running on the host computer: it
owns the host end of the RS-232 link (a bit-level UART at its own baud
rate), performs the 0x55 synchronisation, sends read / write / activate
/ scanf-return commands and reacts to printf / scanf / read-return
replies, logging everything in per-processor interaction monitors.

Because host and board are co-simulated, the blocking convenience
methods (:meth:`read_memory`, :meth:`load_program`, ...) internally step
the shared :class:`~repro.sim.kernel.Simulator` until the reply arrives.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..noc.flit import encode_address
from ..r8.assembler import ObjectCode
from ..serial import protocol
from ..serial.uart import UartRx, UartTx
from ..sim import Component, Simulator
from ..sim.kernel import SimulationTimeout
from ..system.multinoc import MultiNoC
from .monitor import InteractionMonitor

Target = Union[int, Tuple[int, int]]

#: Serial write frames carry at most 255 words; NoC write packets carry
#: at most (255 - 4) // 2 payload words.  Stay under both.
MAX_WORDS_PER_WRITE = 64
MAX_WORDS_PER_READ = 64


def _flit(target: Target) -> int:
    if isinstance(target, tuple):
        return encode_address(*target)
    return target


class HostTimeout(Exception):
    """The board did not answer within the cycle budget.

    When a health monitor is attached to the simulator, ``diagnostics``
    carries its dump (copied from the underlying SimulationTimeout).
    """

    diagnostics: Optional[dict] = None


class SerialSoftware(Component):
    """Host computer model attached to MultiNoC's serial lines."""

    def __init__(
        self,
        system: MultiNoC,
        name: str = "host",
        baud_divisor: int = 4,
    ):
        super().__init__(name)
        self.system = system
        # Host drives the board's rxd and listens on the board's txd.
        self.uart_tx = UartTx(f"{name}.tx", system.rxd, divisor=baud_divisor)
        self.uart_rx = UartRx(f"{name}.rx", system.txd, divisor=baud_divisor)
        self.add_child(self.uart_tx)
        self.add_child(self.uart_rx)

        self._frame: List[int] = []
        self.read_returns: Deque[protocol.ReadReturnFrame] = deque()
        self.scanf_requests: Deque[protocol.ScanfFrame] = deque()
        self.monitors: Dict[int, InteractionMonitor] = {}
        self.scanf_handlers: Dict[int, Callable[[], int]] = {}
        self._sim: Optional[Simulator] = None
        self._cycle = 0
        self.synced = False
        #: (label, start cycle) of the blocking transaction in progress,
        #: or None; the health monitor's host watchdog reads this.
        self.current_transaction: Optional[Tuple[str, int]] = None
        #: optional TelemetrySink; hooks are behind one None-check each
        self.sink = None
        #: optional debugger hook: fn(message, cycle) called for every
        #: board->host frame (read return, printf, scanf request) as it
        #: is parsed; not serialized in checkpoints.
        self.on_frame = None

    def attach_telemetry(self, sink) -> None:
        """Register the host as a track; transactions become spans."""
        self.sink = sink
        sink.track(self.name, process="host")

    # -- wiring ---------------------------------------------------------------

    def connect(self, sim: Simulator) -> "SerialSoftware":
        """Register with *sim* (adds both this host and the system)."""
        sim.add(self.system)
        sim.add(self)
        self._sim = sim
        return self

    def monitor(self, proc: int) -> InteractionMonitor:
        if proc not in self.monitors:
            self.monitors[proc] = InteractionMonitor(proc)
        return self.monitors[proc]

    def set_scanf_handler(self, proc: int, handler: Callable[[], int]) -> None:
        """Auto-answer scanf requests from processor *proc*."""
        self.scanf_handlers[proc] = handler

    # -- simulation --------------------------------------------------------------

    def is_quiescent(self) -> bool:
        """The host sleeps between transactions: nothing left to shift
        out and nothing arriving.  Queueing a command byte wakes it
        (``UartTx.send_byte``), and board replies wake it through the
        receiver's watched txd line.  A partial reply in ``_frame`` is
        frozen until the next byte lands."""
        return self.uart_tx.is_quiescent() and self.uart_rx.is_quiescent()

    def on_wake(self, skipped_cycles: int) -> None:
        """Forward the skip credit to both UARTs (phase/count advance)."""
        self.uart_tx.on_wake(skipped_cycles)
        self.uart_rx.on_wake(skipped_cycles)

    def eval(self, cycle: int) -> None:
        # inlined child walk (the two UARTs are the host's only children)
        self.uart_tx.eval(cycle)
        self.uart_rx.eval(cycle)
        self._cycle = cycle
        while self.uart_rx.received:
            self._frame.append(self.uart_rx.received.popleft())
            length = protocol.board_frame_length(self._frame)
            if length is not None and len(self._frame) >= length:
                frame, self._frame = self._frame[:length], self._frame[length:]
                self._dispatch(protocol.parse_board_frame(frame))

    def _dispatch(self, message) -> None:
        if self.on_frame is not None:
            self.on_frame(message, self._cycle)
        if isinstance(message, protocol.ReadReturnFrame):
            self.read_returns.append(message)
        elif isinstance(message, protocol.PrintfFrame):
            mon = self.monitor(message.proc)
            for word in message.words:
                mon.log_printf(self._cycle, word)
            if self.sink is not None:
                self.sink.instant(
                    self.name,
                    "printf",
                    self._cycle,
                    proc=message.proc,
                    words=list(message.words),
                )
        elif isinstance(message, protocol.ScanfFrame):
            self.monitor(message.proc).log_scanf_request(self._cycle)
            if self.sink is not None:
                self.sink.instant(
                    self.name, "scanf_request", self._cycle, proc=message.proc
                )
            handler = self.scanf_handlers.get(message.proc)
            if handler is not None:
                value = handler() & 0xFFFF
                self._answer_scanf(message.proc, value)
            else:
                self.scanf_requests.append(message)

    def _answer_scanf(self, proc: int, value: int) -> None:
        flit = self.system.config.id_to_flit()[proc]
        self.uart_tx.send_bytes(protocol.frame_scanf_return(flit, value))
        self.monitor(proc).log_scanf_answer(value, cycle=self._cycle)

    # -- checkpointing ---------------------------------------------------------

    def snapshot_state(self) -> dict:
        # scanf_handlers are live callables and are deliberately NOT
        # serialized; a fresh-context restore re-registers them.
        return {
            "frame": list(self._frame),
            "read_returns": [
                {"address": r.address, "words": list(r.words)}
                for r in self.read_returns
            ],
            "scanf_requests": [
                {"proc": r.proc} for r in self.scanf_requests
            ],
            "monitors": [
                m.to_state() for _, m in sorted(self.monitors.items())
            ],
            "cycle": self._cycle,
            "synced": self.synced,
            "current_transaction": (
                list(self.current_transaction)
                if self.current_transaction is not None
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        self._frame = list(state["frame"])
        self.read_returns = deque(
            protocol.ReadReturnFrame(r["address"], list(r["words"]))
            for r in state["read_returns"]
        )
        self.scanf_requests = deque(
            protocol.ScanfFrame(r["proc"]) for r in state["scanf_requests"]
        )
        self.monitors = {}
        for m in state["monitors"]:
            monitor = InteractionMonitor.from_state(m)
            self.monitors[monitor.proc] = monitor
        self._cycle = state["cycle"]
        self.synced = state["synced"]
        txn = state["current_transaction"]
        self.current_transaction = tuple(txn) if txn is not None else None

    # -- low-level sending -----------------------------------------------------------

    def _require_sim(self) -> Simulator:
        if self._sim is None:
            raise RuntimeError("call host.connect(sim) first")
        return self._sim

    def _run_until(self, predicate, max_cycles: int, label: str) -> None:
        sim = self._require_sim()
        self.current_transaction = (label, sim.cycle)
        try:
            sim.run_until(predicate, max_cycles=max_cycles, label=label)
        except SimulationTimeout as exc:  # re-raise with a host-level type
            timeout = HostTimeout(str(exc))
            timeout.diagnostics = exc.diagnostics
            raise timeout from exc
        finally:
            self.current_transaction = None

    # -- the four host commands ---------------------------------------------------

    def _span_start(self) -> int:
        return self._require_sim().cycle

    def _span_end(self, name: str, start: int, **args) -> None:
        sim = self._require_sim()
        self.sink.complete(self.name, name, start, sim.cycle - start, **args)

    def sync(self, max_cycles: int = 10_000) -> None:
        """Send the 0x55 baud-rate byte and wait for the board to lock."""
        start = self._span_start() if self.sink is not None else 0
        self.uart_tx.send_byte(protocol.SYNC_BYTE)
        self._run_until(
            lambda: self.system.serial.synced, max_cycles, "baud sync"
        )
        self.synced = True
        if self.sink is not None:
            self._span_end("sync", start)

    def write_memory(
        self,
        target: Target,
        address: int,
        words: Sequence[int],
        max_cycles: int = 2_000_000,
    ) -> None:
        """Write *words* into the target IP's memory, chunked as needed."""
        start = self._span_start() if self.sink is not None else 0
        flit = _flit(target)
        offset = 0
        while offset < len(words):
            chunk = list(words[offset : offset + MAX_WORDS_PER_WRITE])
            self.uart_tx.send_bytes(
                protocol.frame_write(flit, address + offset, chunk)
            )
            offset += len(chunk)
        self._run_until(
            lambda: not self.uart_tx.busy and self.system.idle,
            max_cycles,
            "memory write drain",
        )
        if self.sink is not None:
            self._span_end(
                "write_memory", start, address=address, words=len(words)
            )

    def read_memory(
        self,
        target: Target,
        address: int,
        count: int,
        max_cycles: int = 2_000_000,
    ) -> List[int]:
        """Read *count* words from the target IP's memory."""
        start = self._span_start() if self.sink is not None else 0
        flit = _flit(target)
        words: List[int] = []
        offset = 0
        while offset < count:
            chunk = min(MAX_WORDS_PER_READ, count - offset)
            expected = len(self.read_returns) + 1
            self.uart_tx.send_bytes(
                protocol.frame_read(flit, address + offset, chunk)
            )
            self._run_until(
                lambda: len(self.read_returns) >= expected,
                max_cycles,
                "read return",
            )
            reply = self.read_returns.popleft()
            if reply.address != address + offset or len(reply.words) != chunk:
                raise HostTimeout(
                    f"mismatched read return: asked {chunk}@{address + offset:#06x}, "
                    f"got {len(reply.words)}@{reply.address:#06x}"
                )
            words.extend(reply.words)
            offset += chunk
        if self.sink is not None:
            self._span_end("read_memory", start, address=address, words=count)
        return words

    def activate(self, target: Target, max_cycles: int = 100_000) -> None:
        """Send the activate-processor command and let it land."""
        start = self._span_start() if self.sink is not None else 0
        self.uart_tx.send_bytes(protocol.frame_activate(_flit(target)))
        self._run_until(
            lambda: not self.uart_tx.busy and self.system.idle,
            max_cycles,
            "activate",
        )
        if self.sink is not None:
            self._span_end("activate", start)

    def answer_scanf(self, value: int) -> None:
        """Answer the oldest pending scanf request manually."""
        if not self.scanf_requests:
            raise RuntimeError("no pending scanf request")
        request = self.scanf_requests.popleft()
        self._answer_scanf(request.proc, value)

    # -- composite flows (paper Figure 8) ----------------------------------------------

    def load_program(
        self, target: Target, obj: ObjectCode, max_cycles: int = 5_000_000
    ) -> None:
        """Send assembled object code into a processor's local memory."""
        for origin, segment in obj.segments:
            self.write_memory(target, origin, segment, max_cycles=max_cycles)
        self._stash_symbols(target, obj)

    def _stash_symbols(self, target: Target, obj: ObjectCode) -> None:
        """Remember the program's symbol table on its ProcessorIp and put
        it into the trace, so post-mortem analysis can resolve PC samples
        to function names even from a reloaded JSONL file."""
        flit = _flit(target)
        for proc in self.system.processors.values():
            if encode_address(*proc.noc_address) != flit:
                continue
            symbols = dict(getattr(obj, "symbols", {}) or {})
            proc.symbols = symbols
            if self.sink is not None and symbols:
                self.sink.instant(
                    proc.cpu.name,
                    "symbols",
                    self._require_sim().cycle,
                    symbols=symbols,
                )
            return

    def run_program(
        self,
        target: Target,
        proc_id: int,
        obj: ObjectCode,
        max_cycles: int = 5_000_000,
    ) -> None:
        """Full Figure 8 flow: load, activate, wait for HALT."""
        if not self.synced:
            self.sync()
        self.load_program(target, obj)
        self.activate(target)
        proc = self.system.processors[proc_id]
        self._run_until(
            lambda: proc.cpu.halted, max_cycles, f"processor {proc_id} halt"
        )
        # Let trailing printf traffic reach the host monitors.
        self._run_until(
            lambda: self.system.idle and not self.system.serial.uart_tx.busy,
            max_cycles,
            "I/O drain",
        )
        # ...plus the final frame still deserialising at the host UART.
        self._require_sim().step(12 * self.uart_rx.divisor)
