"""BlockRAM primitives.

"Each Memory IP contains 4 BlockRAM modules, each organized as 1024
4-bit words" (paper Section 2.3, Figure 4).  The four nibble banks are
accessed in parallel to read and write 16-bit words.
"""

from __future__ import annotations

from typing import List


class BlockRam:
    """One FPGA BlockRAM, organised as ``depth`` x ``width`` bits."""

    def __init__(self, depth: int = 1024, width: int = 4):
        self.depth = depth
        self.width = width
        self._mask = (1 << width) - 1
        self.data: List[int] = [0] * depth

    def read(self, addr: int) -> int:
        self._check(addr)
        return self.data[addr]

    def write(self, addr: int, value: int) -> None:
        self._check(addr)
        if value & ~self._mask:
            raise ValueError(
                f"value {value:#x} does not fit in {self.width}-bit BlockRAM"
            )
        self.data[addr] = value

    def _check(self, addr: int) -> None:
        if not 0 <= addr < self.depth:
            raise IndexError(
                f"BlockRAM address {addr:#06x} out of range 0..{self.depth - 1}"
            )


class MemoryBanks:
    """Four nibble-wide BlockRAMs accessed in parallel as 16-bit words.

    RAM3 holds bits 15:12 down to RAM0 holding bits 3:0, matching
    Figure 4's din/dout slicing.
    """

    N_BANKS = 4
    NIBBLE = 4

    def __init__(self, depth: int = 1024):
        self.depth = depth
        self.banks = [BlockRam(depth, self.NIBBLE) for _ in range(self.N_BANKS)]
        #: optional debugger hook ``watch(is_write, addr, value)`` called
        #: on every architectural word access (not instruction fetch).
        self.watch = None

    def fetch_word(self, addr: int) -> int:
        # One bounds check and four direct nibble reads: word access sits
        # on the CPU fetch path, the hottest loop in the whole simulator.
        # Fetches bypass the watch hook so instruction streaming never
        # triggers data watchpoints (and the common case stays hook-free).
        if not 0 <= addr < self.depth:
            raise IndexError(
                f"BlockRAM address {addr:#06x} out of range 0..{self.depth - 1}"
            )
        b = self.banks
        return (
            b[0].data[addr]
            | (b[1].data[addr] << 4)
            | (b[2].data[addr] << 8)
            | (b[3].data[addr] << 12)
        )

    def read_word(self, addr: int) -> int:
        value = self.fetch_word(addr)
        if self.watch is not None:
            self.watch(False, addr, value)
        return value

    def write_word(self, addr: int, value: int) -> None:
        if not 0 <= value <= 0xFFFF:
            raise ValueError(f"word {value!r} out of 16-bit range")
        if not 0 <= addr < self.depth:
            raise IndexError(
                f"BlockRAM address {addr:#06x} out of range 0..{self.depth - 1}"
            )
        b = self.banks
        b[0].data[addr] = value & 0xF
        b[1].data[addr] = (value >> 4) & 0xF
        b[2].data[addr] = (value >> 8) & 0xF
        b[3].data[addr] = (value >> 12) & 0xF
        if self.watch is not None:
            self.watch(True, addr, value)

    def load(self, words, base: int = 0) -> None:
        # Bulk image loads (program download, checkpoint restore) are not
        # architectural stores; keep them invisible to data watchpoints.
        hook, self.watch = self.watch, None
        try:
            for i, word in enumerate(words):
                self.write_word(base + i, word & 0xFFFF)
        finally:
            self.watch = hook

    def dump(self, start: int = 0, count: int = None) -> List[int]:
        if count is None:
            count = self.depth - start
        return [self.fetch_word(start + i) for i in range(count)]
