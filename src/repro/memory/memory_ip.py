"""The Memory IP core (paper Section 2.3).

Storage (four BlockRAM nibble banks, 1K x 16 bit) with two interfaces:

* the **processor interface** — direct, single-cycle word access used by
  the local R8 core (absent on the stand-alone remote memory), and
* the **NoC interface** — a network interface plus a small FSM that
  serves ``write in memory`` and ``read from memory`` service packets,
  answering reads with ``read return``.

"The highest priority to access the memory banks is given to the
processor": when the processor touched the banks in a cycle, the NoC-side
FSM skips that cycle.  The ``busyNoCMem``/``busyNoCR8`` interlocks of
Figure 4 map onto :attr:`noc_busy` and the per-cycle arbitration flag.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..noc import services
from ..noc.flit import decode_address
from ..noc.ni import NetworkInterface
from ..noc.packet import Packet
from ..sim import Component
from .blockram import MemoryBanks

_IDLE = 0
_WRITING = 1
_READING = 2


class MemoryIp(Component):
    """1K-word memory with processor-priority NoC access."""

    def __init__(
        self,
        name: str,
        address: Tuple[int, int],
        depth: int = 1024,
        stats=None,
    ):
        super().__init__(name)
        self.noc_address = address
        self.banks = MemoryBanks(depth)
        self.ni = NetworkInterface(f"{name}.ni", address, stats=stats)
        self.add_child(self.ni)

        self._proc_used = False  # processor touched the banks this cycle
        self._state = _IDLE
        self._op_addr = 0
        self._op_words: List[int] = []
        self._op_remaining = 0
        self._op_reply_to: Optional[int] = None
        self.dropped_packets: List[Packet] = []

    # -- processor interface (direct port, highest priority) ------------------

    def proc_read(self, addr: int) -> int:
        """Single-cycle word read from the processor side."""
        self._proc_used = True
        self.wake()
        return self.banks.read_word(addr)

    def proc_write(self, addr: int, value: int) -> None:
        """Single-cycle word write from the processor side."""
        self._proc_used = True
        self.wake()
        self.banks.write_word(addr, value)

    @property
    def noc_busy(self) -> bool:
        """The busyNoCMem signal: a NoC-side operation is under way."""
        return self._state != _IDLE or self.ni.tx_busy

    # -- direct loading (testbench convenience) --------------------------------

    def load(self, words, base: int = 0) -> None:
        self.banks.load(words, base)

    def dump(self, start: int = 0, count: Optional[int] = None) -> List[int]:
        return self.banks.dump(start, count)

    # -- simulation ---------------------------------------------------------------

    def eval(self, cycle: int) -> None:
        super().eval(cycle)  # evaluates the NI
        # Processor priority: if the core used the banks this cycle, the
        # NoC-side FSM pauses.
        if self._proc_used:
            self._proc_used = False
            return
        if self._state == _IDLE:
            self._start_next_operation()
        elif self._state == _WRITING:
            self._step_write()
        elif self._state == _READING:
            self._step_read()

    def is_quiescent(self) -> bool:
        """Idle when the NoC-side FSM is parked, the processor port was
        untouched, and the NI is silent with nothing undelivered."""
        return (
            self._state == _IDLE
            and not self._proc_used
            and not self.ni.received
            and self.ni.is_quiescent()
        )

    def reset(self) -> None:
        super().reset()
        self._proc_used = False
        self._state = _IDLE
        self._op_words = []
        self._op_remaining = 0
        self.dropped_packets = []

    # -- checkpointing ---------------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "mem": self.banks.dump(),
            "proc_used": self._proc_used,
            "state": self._state,
            "op_addr": self._op_addr,
            "op_words": list(self._op_words),
            "op_remaining": self._op_remaining,
            "op_reply_to": self._op_reply_to,
            "dropped": [p.to_state() for p in self.dropped_packets],
        }

    def restore_state(self, state: dict) -> None:
        self.banks.load(state["mem"])
        self._proc_used = state["proc_used"]
        self._state = state["state"]
        self._op_addr = state["op_addr"]
        self._op_words = list(state["op_words"])
        self._op_remaining = state["op_remaining"]
        self._op_reply_to = state["op_reply_to"]
        self.dropped_packets = [
            Packet.from_state(p) for p in state["dropped"]
        ]

    # -- NoC-side FSM ----------------------------------------------------------------

    def _start_next_operation(self) -> None:
        if not self.ni.has_received():
            return
        packet = self.ni.pop_received()
        try:
            message = services.decode(packet)
        except services.ServiceError:
            self.dropped_packets.append(packet)
            return
        if isinstance(message, services.WriteRequest):
            self._state = _WRITING
            self._op_addr = message.address
            self._op_words = list(message.words)
        elif isinstance(message, services.ReadRequest):
            self._state = _READING
            self._op_addr = message.address
            self._op_remaining = message.count
            self._op_words = []
            self._op_reply_to = message.reply_to
        else:
            # A plain memory has no processor to activate or notify.
            self.dropped_packets.append(packet)

    def _step_write(self) -> None:
        """Store one word per (non-preempted) cycle."""
        if not self._op_words:
            self._state = _IDLE
            return
        self.banks.write_word(self._op_addr, self._op_words.pop(0))
        self._op_addr += 1
        if not self._op_words:
            self._state = _IDLE

    def _step_read(self) -> None:
        """Fetch one word per cycle, then answer with a read-return packet."""
        if self._op_remaining > 0:
            self._op_words.append(
                self.banks.read_word(self._op_addr + len(self._op_words))
            )
            self._op_remaining -= 1
            return
        assert self._op_reply_to is not None
        reply = services.encode_read_return(
            decode_address(self._op_reply_to), self._op_addr, self._op_words
        )
        self.ni.send_packet(reply)
        self._state = _IDLE
        self._op_words = []
