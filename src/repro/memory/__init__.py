"""Memory IP core: BlockRAM nibble banks with processor and NoC interfaces."""

from .blockram import BlockRam, MemoryBanks
from .memory_ip import MemoryIp

__all__ = ["BlockRam", "MemoryBanks", "MemoryIp"]
