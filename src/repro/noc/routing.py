"""Port naming and the deterministic XY routing algorithm."""

from __future__ import annotations

from enum import IntEnum
from typing import Tuple


class Port(IntEnum):
    """Hermes router ports (paper Figure 2)."""

    EAST = 0
    WEST = 1
    NORTH = 2
    SOUTH = 3
    LOCAL = 4


#: All ports, in arbitration scan order.
ALL_PORTS = tuple(Port)

#: Unit coordinate displacement of each non-local port.
PORT_DELTA = {
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
    Port.NORTH: (0, 1),
    Port.SOUTH: (0, -1),
}

#: The reverse direction of each non-local port (EAST output feeds the
#: neighbour's WEST input, and so on).
OPPOSITE = {
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
}


def xy_route(current: Tuple[int, int], target: Tuple[int, int]) -> Port:
    """Deterministic XY routing: correct X first, then Y, then deliver.

    This is the algorithm the paper names in Section 2.1.  Being
    dimension-ordered it is deadlock-free on a mesh.
    """
    cx, cy = current
    tx, ty = target
    if tx > cx:
        return Port.EAST
    if tx < cx:
        return Port.WEST
    if ty > cy:
        return Port.NORTH
    if ty < cy:
        return Port.SOUTH
    return Port.LOCAL


def route_path(source: Tuple[int, int], target: Tuple[int, int]) -> list:
    """The full list of routers an XY-routed packet traverses.

    Includes both endpoints, matching the latency formula's ``n`` ("number
    of routers in the communication path (source and target included)").
    """
    path = [source]
    pos = source
    while pos != target:
        port = xy_route(pos, target)
        dx, dy = PORT_DELTA[port]
        pos = (pos[0] + dx, pos[1] + dy)
        path.append(pos)
    return path
