"""Cycle-accurate model of the Hermes network on chip.

The package mirrors the hardware structure described in the paper's
Section 2.1: wormhole packet switching, deterministic XY routing on a
mesh, round-robin arbitration, asynchronous handshake links (two cycles
per flit), and 2-flit circular-FIFO input buffers.
"""

from .arbiter import RoundRobinArbiter
from .bus import BusInterface, SharedBusNetwork
from .fifo import CircularFifo
from .flit import (
    FLIT_BITS,
    FLIT_MAX,
    MAX_PAYLOAD_FLITS,
    decode_address,
    encode_address,
    flits_to_words,
    join_word,
    split_word,
    words_to_flits,
)
from .mesh import Mesh
from .network import HermesNetwork
from .ni import NetworkInterface
from .packet import Packet
from .router import HermesRouter, RoutingError
from .routing import ALL_PORTS, OPPOSITE, PORT_DELTA, Port, route_path, xy_route
from .stats import NetworkStats
from .topology import (
    TOPOLOGIES,
    CMeshTopology,
    MeshTopology,
    Topology,
    TopologyError,
    TorusTopology,
    from_descriptor,
    parse_topology,
    port_index,
    port_label,
    register_topology,
)
from . import services

__all__ = [
    "ALL_PORTS",
    "BusInterface",
    "SharedBusNetwork",
    "CircularFifo",
    "FLIT_BITS",
    "FLIT_MAX",
    "HermesNetwork",
    "HermesRouter",
    "MAX_PAYLOAD_FLITS",
    "Mesh",
    "NetworkInterface",
    "NetworkStats",
    "OPPOSITE",
    "PORT_DELTA",
    "Packet",
    "Port",
    "TOPOLOGIES",
    "Topology",
    "TopologyError",
    "MeshTopology",
    "TorusTopology",
    "CMeshTopology",
    "RoundRobinArbiter",
    "RoutingError",
    "decode_address",
    "encode_address",
    "flits_to_words",
    "join_word",
    "from_descriptor",
    "parse_topology",
    "port_index",
    "port_label",
    "register_topology",
    "route_path",
    "services",
    "split_word",
    "words_to_flits",
    "xy_route",
]
