"""High-level facade over the Hermes mesh for NoC-only experiments.

:class:`HermesNetwork` bundles a mesh, one network interface per router
and a shared statistics object into a single component, with convenience
helpers for the benchmark harnesses ("send these packets, run until
drained, give me latencies").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..sim import Component, Simulator
from .mesh import Mesh
from .ni import NetworkInterface
from .packet import Packet
from .stats import NetworkStats
from .topology import parse_topology

Address = Tuple[int, int]


class HermesNetwork(Component):
    """Mesh + per-router network interfaces + statistics."""

    def __init__(
        self,
        width: Optional[int] = None,
        height: Optional[int] = None,
        buffer_depth: int = 2,
        routing_cycles: int = 7,
        stats: Optional[NetworkStats] = None,
        telemetry=None,
        topology=None,
    ):
        if topology is None:
            name = f"hermes{width}x{height}"
        else:
            topology = parse_topology(topology)
            name = f"hermes.{topology.name}"
        super().__init__(name)
        if stats is None:
            registry = telemetry.metrics if telemetry is not None else None
            stats = NetworkStats(registry=registry)
        self.stats = stats
        self.mesh = Mesh(
            width,
            height,
            buffer_depth=buffer_depth,
            routing_cycles=routing_cycles,
            stats=self.stats,
            topology=topology,
        )
        self.add_child(self.mesh)
        self.interfaces: Dict[Address, NetworkInterface] = {}
        for addr in self.mesh.addresses():
            ni = NetworkInterface(
                f"ni{self.mesh.topology.label(addr)}", addr, stats=self.stats
            )
            into, out = self.mesh.local_channels(addr)
            ni.attach(to_router=into, from_router=out)
            self.interfaces[addr] = ni
            self.add_child(ni)
        self.telemetry = telemetry
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    # -- telemetry ---------------------------------------------------------

    def attach_telemetry(self, sink) -> None:
        """Enable event hooks on every router and network interface."""
        self.telemetry = sink
        self.mesh.attach_telemetry(sink)
        for ni in self.interfaces.values():
            sink.track(ni.name, process="noc")
            ni.sink = sink

    # -- convenience -------------------------------------------------------

    def send(self, source: Address, target: Address, payload: List[int]) -> Packet:
        """Queue a packet at *source*'s network interface."""
        packet = Packet(target=target, payload=payload, source=source)
        return self.interfaces[source].send_packet(packet)

    @property
    def drained(self) -> bool:
        """True when every NI queue is empty and the mesh is idle."""
        return (
            all(not ni.tx_busy for ni in self.interfaces.values())
            and self.mesh.idle
        )

    def collect_received(self) -> List[Packet]:
        """Drain and return all packets delivered so far, any interface."""
        out: List[Packet] = []
        for ni in self.interfaces.values():
            while ni.has_received():
                out.append(ni.pop_received())
        return out

    def make_simulator(
        self, clock_hz: float = 50_000_000.0, strict_lockstep: bool = False
    ) -> Simulator:
        """A simulator containing just this network (50 MHz: the paper's
        figure for the 1 Gbit/s router peak throughput)."""
        sim = Simulator(clock_hz=clock_hz, strict_lockstep=strict_lockstep)
        sim.add(self)
        return sim

    def run_to_drain(
        self, sim: Simulator, max_cycles: int = 1_000_000
    ) -> int:
        """Step *sim* until the network has no in-flight traffic."""
        return sim.run_until(
            lambda: self.drained, max_cycles=max_cycles, label="network drain"
        )
