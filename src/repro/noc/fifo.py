"""Circular FIFO modelling the Hermes input buffers.

The paper uses 2-flit circular FIFOs on every router input port to reduce
the number of routers affected by a blocked wormhole ("The inserted
buffers work as circular FIFOs", Section 2.1).  Depth is a constructor
parameter so the buffer-depth ablation (experiment E3) can sweep it.
"""

from __future__ import annotations

from typing import List, Optional


class CircularFifo:
    """Fixed-capacity ring buffer of flits."""

    __slots__ = ("capacity", "_slots", "_head", "_count", "_watermark")

    def __init__(self, capacity: int = 2):
        if capacity < 1:
            raise ValueError("FIFO capacity must be at least 1 flit")
        self.capacity = capacity
        self._slots: List[Optional[int]] = [None] * capacity
        self._head = 0
        self._count = 0
        self._watermark = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        """Truthy while holding flits — the cheapest occupancy test,
        used by the router's per-cycle quiescence scan."""
        return self._count != 0

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def is_full(self) -> bool:
        return self._count == self.capacity

    @property
    def head(self) -> int:
        """The oldest flit, without removing it."""
        if self._count == 0:
            raise IndexError("head of empty FIFO")
        return self._slots[self._head]  # type: ignore[return-value]

    def push(self, flit: int) -> None:
        """Append a flit; raises if the buffer is full (caller must check)."""
        if self._count == self.capacity:
            raise OverflowError("push into full FIFO")
        tail = (self._head + self._count) % self.capacity
        self._slots[tail] = flit
        self._count += 1
        if self._count > self._watermark:
            self._watermark = self._count

    def pop(self) -> int:
        """Remove and return the oldest flit."""
        if self._count == 0:
            raise IndexError("pop from empty FIFO")
        flit = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        return flit  # type: ignore[return-value]

    @property
    def watermark(self) -> int:
        """Highest occupancy reached since construction or :meth:`clear`."""
        return self._watermark

    def clear(self) -> None:
        self._slots = [None] * self.capacity
        self._head = 0
        self._count = 0
        self._watermark = 0

    def snapshot(self) -> List[int]:
        """Contents oldest-first (diagnostics only)."""
        return [
            self._slots[(self._head + i) % self.capacity]  # type: ignore[misc]
            for i in range(self._count)
        ]

    def restore(self, contents: List[int], watermark: int = 0) -> None:
        """Rebuild from a :meth:`snapshot` list (checkpoint restore)."""
        if len(contents) > self.capacity:
            raise OverflowError(
                f"{len(contents)} flits do not fit a {self.capacity}-flit FIFO"
            )
        self.clear()
        for flit in contents:
            self.push(flit)
        self._watermark = max(watermark, self._count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CircularFifo({self.snapshot()}/{self.capacity})"
