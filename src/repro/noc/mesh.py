"""Fabric builder for the Hermes NoC.

"The Hermes NoC follows a mesh topology, justified to facilitate routing,
IP cores placement and chip layout generation" (paper Section 2.1).

The builder itself is topology-agnostic: it instantiates whatever
node/link graph a :class:`~repro.noc.topology.Topology` plugin
describes (the paper's mesh by default, or a torus / concentrated
mesh), wiring one handshake channel pair per link and one local
channel pair per attachment node.  Building ``Mesh(2, 2)`` through the
default plugin produces bit-identical hardware — same component and
wire names, same creation order — as the original hand-coded mesh.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim import Component, HandshakeTx
from .flit import FLIT_BITS
from .router import HermesRouter
from .routing import OPPOSITE, Port
from .topology import MeshTopology, Topology

Address = Tuple[int, int]


class Mesh(Component):
    """A fabric of Hermes routers, fully wired from a topology plugin.

    Routers on neighbouring graph nodes are connected by one handshake
    channel per direction.  Each attachment node's local port is exposed
    as a channel pair so a :class:`~repro.noc.ni.NetworkInterface` (or
    an IP core) can attach.
    """

    def __init__(
        self,
        width: Optional[int] = None,
        height: Optional[int] = None,
        buffer_depth: int = 2,
        routing_cycles: int = 7,
        flit_bits: int = FLIT_BITS,
        stats=None,
        topology: Optional[Topology] = None,
    ):
        if topology is None:
            topology = MeshTopology(width, height)
        super().__init__(topology.name)
        self.topology = topology
        self.width = topology.width
        self.height = topology.height
        self.routers: Dict[Address, HermesRouter] = {}
        #: channel pairs for the local port of each attachment node:
        #: (into-router channel, out-of-router channel)
        self.local_ports: Dict[Address, Tuple[HandshakeTx, HandshakeTx]] = {}

        for (x, y) in topology.routers():
            router = HermesRouter(
                f"router{topology.label((x, y))}",
                (x, y),
                buffer_depth=buffer_depth,
                routing_cycles=routing_cycles,
                stats=stats,
                topology=topology,
            )
            self.routers[(x, y)] = router
            self.add_child(router)

        # Inter-router links: one channel per direction per graph edge,
        # in the plugin's deterministic wiring order.
        for (x, y), port, nb in topology.builder_links():
            router = self.routers[(x, y)]
            neighbour = self.routers[nb]
            opposite = OPPOSITE[Port(port)]
            here, there = topology.label((x, y)), topology.label(nb)
            fwd = HandshakeTx(f"link{here}>{there}", data_width=flit_bits)
            rev = HandshakeTx(f"link{there}>{here}", data_width=flit_bits)
            router.attach_output(port, fwd)
            neighbour.attach_input(opposite, fwd)
            neighbour.attach_output(opposite, rev)
            router.attach_input(port, rev)

        # Local port channels (IP side attaches later), one per node.
        for node in topology.nodes():
            lbl = topology.label(node)
            router = self.routers[topology.node_router(node)]
            port = topology.local_port(node)
            into = HandshakeTx(f"local{lbl}.in", data_width=flit_bits)
            out = HandshakeTx(f"local{lbl}.out", data_width=flit_bits)
            router.attach_input(port, into)
            router.attach_output(port, out)
            self.local_ports[node] = (into, out)

    # -- telemetry -----------------------------------------------------------

    def attach_telemetry(self, sink) -> None:
        """Register every router as a track and enable its event hooks.

        Each router also emits one ``router_config`` instant carrying its
        grid coordinates and routing service time, so an exported trace
        is self-describing for the post-mortem analyzer
        (:mod:`repro.telemetry.analysis`).  Non-mesh fabrics additionally
        emit one ``topology`` instant with the plugin descriptor so the
        analyzer replays the plugin's routing function instead of XY.
        """
        if self.topology.kind != "mesh":
            sink.track(self.name, process="noc")
            sink.instant(self.name, "topology", 0, **self.topology.descriptor())
        for (x, y), router in sorted(self.routers.items()):
            sink.track(router.name, process="noc")
            router.sink = sink
            sink.instant(
                router.name,
                "router_config",
                0,
                x=x,
                y=y,
                routing_cycles=router.routing_cycles,
            )

    # -- queries ------------------------------------------------------------

    def router(self, address: Address) -> HermesRouter:
        return self.routers[address]

    def local_channels(self, address: Address) -> Tuple[HandshakeTx, HandshakeTx]:
        """(into-router, out-of-router) channels of a node's local port."""
        return self.local_ports[address]

    @property
    def idle(self) -> bool:
        """True when no router holds flits or open connections."""
        return not any(r.busy for r in self.routers.values())

    def addresses(self):
        """All attachment-node addresses in (y, x) raster order."""
        return list(self.topology.nodes())
