"""Mesh topology builder for the Hermes NoC.

"The Hermes NoC follows a mesh topology, justified to facilitate routing,
IP cores placement and chip layout generation" (paper Section 2.1).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..sim import Component, HandshakeTx
from .flit import FLIT_BITS
from .routing import OPPOSITE, PORT_DELTA, Port
from .router import HermesRouter

Address = Tuple[int, int]


class Mesh(Component):
    """A ``width`` x ``height`` grid of Hermes routers, fully wired.

    Neighbouring routers are connected by one handshake channel per
    direction.  Each router's Local port is exposed as a channel pair so
    a :class:`~repro.noc.ni.NetworkInterface` (or an IP core) can attach.
    """

    def __init__(
        self,
        width: int,
        height: int,
        buffer_depth: int = 2,
        routing_cycles: int = 7,
        flit_bits: int = FLIT_BITS,
        stats=None,
    ):
        super().__init__(f"mesh{width}x{height}")
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        if width > 16 or height > 16:
            raise ValueError(
                "mesh dimensions above 16 do not fit the 4-bit header nibbles"
            )
        self.width = width
        self.height = height
        self.routers: Dict[Address, HermesRouter] = {}
        #: channel pairs for the Local port of each router:
        #: (into-router channel, out-of-router channel)
        self.local_ports: Dict[Address, Tuple[HandshakeTx, HandshakeTx]] = {}

        for y in range(height):
            for x in range(width):
                router = HermesRouter(
                    f"router{x}{y}",
                    (x, y),
                    buffer_depth=buffer_depth,
                    routing_cycles=routing_cycles,
                    stats=stats,
                )
                self.routers[(x, y)] = router
                self.add_child(router)

        # Inter-router links: create one channel per direction per edge.
        for (x, y), router in self.routers.items():
            for port in (Port.EAST, Port.NORTH):
                dx, dy = PORT_DELTA[port]
                nb = (x + dx, y + dy)
                if nb not in self.routers:
                    continue
                neighbour = self.routers[nb]
                fwd = HandshakeTx(
                    f"link{x}{y}>{nb[0]}{nb[1]}", data_width=flit_bits
                )
                rev = HandshakeTx(
                    f"link{nb[0]}{nb[1]}>{x}{y}", data_width=flit_bits
                )
                router.attach_output(port, fwd)
                neighbour.attach_input(OPPOSITE[port], fwd)
                neighbour.attach_output(OPPOSITE[port], rev)
                router.attach_input(port, rev)

        # Local port channels (IP side attaches later).
        for (x, y), router in self.routers.items():
            into = HandshakeTx(f"local{x}{y}.in", data_width=flit_bits)
            out = HandshakeTx(f"local{x}{y}.out", data_width=flit_bits)
            router.attach_input(Port.LOCAL, into)
            router.attach_output(Port.LOCAL, out)
            self.local_ports[(x, y)] = (into, out)

    # -- telemetry -----------------------------------------------------------

    def attach_telemetry(self, sink) -> None:
        """Register every router as a track and enable its event hooks.

        Each router also emits one ``router_config`` instant carrying its
        mesh coordinates and routing service time, so an exported trace
        is self-describing for the post-mortem analyzer
        (:mod:`repro.telemetry.analysis`).
        """
        for (x, y), router in sorted(self.routers.items()):
            sink.track(router.name, process="noc")
            router.sink = sink
            sink.instant(
                router.name,
                "router_config",
                0,
                x=x,
                y=y,
                routing_cycles=router.routing_cycles,
            )

    # -- queries ------------------------------------------------------------

    def router(self, address: Address) -> HermesRouter:
        return self.routers[address]

    def local_channels(self, address: Address) -> Tuple[HandshakeTx, HandshakeTx]:
        """(into-router, out-of-router) channels of the Local port."""
        return self.local_ports[address]

    @property
    def idle(self) -> bool:
        """True when no router holds flits or open connections."""
        return not any(r.busy for r in self.routers.values())

    def addresses(self):
        """All router addresses in (y, x) raster order."""
        return [(x, y) for y in range(self.height) for x in range(self.width)]
