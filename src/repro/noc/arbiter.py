"""Round-robin arbitration, as used by the Hermes router control logic.

"A round-robin arbitration scheme is used to avoid starvation"
(paper Section 2.1).
"""

from __future__ import annotations

from typing import Optional, Sequence


class RoundRobinArbiter:
    """Grants one requester per invocation, rotating priority.

    The arbiter remembers the last granted index and starts the next scan
    just after it, so persistent requesters cannot starve the others.
    """

    def __init__(self, n_requesters: int):
        if n_requesters < 1:
            raise ValueError("arbiter needs at least one requester")
        self.n = n_requesters
        self._last_grant = n_requesters - 1

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Return the granted requester index, or None if nothing requests.

        *requests* must have one boolean per requester.
        """
        if len(requests) != self.n:
            raise ValueError(
                f"expected {self.n} request lines, got {len(requests)}"
            )
        for offset in range(1, self.n + 1):
            idx = (self._last_grant + offset) % self.n
            if requests[idx]:
                self._last_grant = idx
                return idx
        return None

    def reset(self) -> None:
        self._last_grant = self.n - 1
