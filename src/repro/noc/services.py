"""The nine Hermes packet services of MultiNoC (paper Section 2.1).

    1. read from memory      5. printf        8. notify
    2. read return           6. scanf         9. wait
    3. write in memory       7. scanf return
    4. activate processor

Every service is a payload layout on top of :class:`~repro.noc.packet.Packet`.
The first payload flit is always the service command byte; 16-bit values
travel big-endian as two flits.  ``encode_*`` builds a packet, ``decode``
parses one into the matching dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Sequence, Tuple, Union

from .flit import flits_to_words, split_word, words_to_flits
from .packet import Packet

Address = Tuple[int, int]


class Service(IntEnum):
    """Command byte carried in the first payload flit."""

    READ = 0x00
    WRITE = 0x01
    ACTIVATE = 0x02
    SCANF_RETURN = 0x03
    READ_RETURN = 0x10
    PRINTF = 0x11
    SCANF = 0x12
    NOTIFY = 0x20
    WAIT = 0x21


class ServiceError(Exception):
    """A packet payload does not parse as a valid service."""


# -- decoded message types ---------------------------------------------------


@dataclass
class ReadRequest:
    """Request *count* words starting at *address* from a memory-capable IP.

    ``reply_to`` is the NoC address flit of the requester so the memory
    knows where to send the read-return packet.
    """

    reply_to: int
    address: int
    count: int


@dataclass
class ReadReturn:
    """Response to a :class:`ReadRequest`."""

    address: int
    words: List[int]


@dataclass
class WriteRequest:
    """Store ``words`` into the target memory starting at ``address``."""

    address: int
    words: List[int]


@dataclass
class Activate:
    """Start the target processor from address 0 of its local memory."""


@dataclass
class Printf:
    """Processor ``proc`` sends ``words`` to the host console."""

    proc: int
    words: List[int]


@dataclass
class Scanf:
    """Processor ``proc`` requests one word of user input from the host."""

    proc: int


@dataclass
class ScanfReturn:
    """Host's answer to a :class:`Scanf`."""

    value: int


@dataclass
class Notify:
    """Wake the target processor; ``source`` is the notifier's id."""

    source: int


@dataclass
class Wait:
    """Park the target processor until notified by processor ``source``."""

    source: int


Message = Union[
    ReadRequest,
    ReadReturn,
    WriteRequest,
    Activate,
    Printf,
    Scanf,
    ScanfReturn,
    Notify,
    Wait,
]


# -- checkpoint format ---------------------------------------------------------

_MESSAGE_TYPES = {}


def message_to_state(message: Message) -> dict:
    """JSON-serialisable form of a decoded service message."""
    return {"type": type(message).__name__, **vars(message)}


def message_from_state(state: dict) -> Message:
    """Rebuild a message from :func:`message_to_state` output."""
    if not _MESSAGE_TYPES:
        for cls in Message.__args__:  # type: ignore[attr-defined]
            _MESSAGE_TYPES[cls.__name__] = cls
    fields = dict(state)
    try:
        cls = _MESSAGE_TYPES[fields.pop("type")]
    except KeyError as exc:
        raise ServiceError(f"unknown service message type in {state!r}") from exc
    return cls(**fields)


# -- encoders ------------------------------------------------------------------


def encode_read(
    target: Address, reply_to: int, address: int, count: int
) -> Packet:
    if not 1 <= count <= 0xFF:
        raise ServiceError(f"read count {count} out of range 1..255")
    hi, lo = split_word(address)
    return Packet(target, [Service.READ, reply_to, count, hi, lo])


def encode_read_return(
    target: Address, address: int, words: Sequence[int]
) -> Packet:
    hi, lo = split_word(address)
    payload = [Service.READ_RETURN, hi, lo, len(words), *words_to_flits(words)]
    return Packet(target, payload)


def encode_write(target: Address, address: int, words: Sequence[int]) -> Packet:
    if not words:
        raise ServiceError("write packet needs at least one word")
    hi, lo = split_word(address)
    payload = [Service.WRITE, hi, lo, len(words), *words_to_flits(words)]
    return Packet(target, payload)


def encode_activate(target: Address) -> Packet:
    return Packet(target, [Service.ACTIVATE])


def encode_printf(target: Address, proc: int, words: Sequence[int]) -> Packet:
    payload = [Service.PRINTF, proc, len(words), *words_to_flits(words)]
    return Packet(target, payload)


def encode_scanf(target: Address, proc: int) -> Packet:
    return Packet(target, [Service.SCANF, proc])


def encode_scanf_return(target: Address, value: int) -> Packet:
    hi, lo = split_word(value)
    return Packet(target, [Service.SCANF_RETURN, hi, lo])


def encode_notify(target: Address, source: int) -> Packet:
    return Packet(target, [Service.NOTIFY, source])


def encode_wait(target: Address, source: int) -> Packet:
    return Packet(target, [Service.WAIT, source])


# -- decoder -------------------------------------------------------------------


def _need(payload: Sequence[int], n: int, what: str) -> None:
    if len(payload) < n:
        raise ServiceError(
            f"{what}: payload has {len(payload)} flits, expected >= {n}"
        )


def decode(packet: Packet) -> Message:
    """Parse a packet's payload into its service message."""
    payload = packet.payload
    _need(payload, 1, "service packet")
    try:
        service = Service(payload[0])
    except ValueError as exc:
        raise ServiceError(f"unknown service byte 0x{payload[0]:02x}") from exc

    if service == Service.READ:
        _need(payload, 5, "read")
        return ReadRequest(
            reply_to=payload[1],
            count=payload[2],
            address=(payload[3] << 8) | payload[4],
        )
    if service == Service.READ_RETURN:
        _need(payload, 4, "read return")
        count = payload[3]
        _need(payload, 4 + 2 * count, "read return data")
        return ReadReturn(
            address=(payload[1] << 8) | payload[2],
            words=flits_to_words(payload[4 : 4 + 2 * count]),
        )
    if service == Service.WRITE:
        _need(payload, 4, "write")
        count = payload[3]
        _need(payload, 4 + 2 * count, "write data")
        return WriteRequest(
            address=(payload[1] << 8) | payload[2],
            words=flits_to_words(payload[4 : 4 + 2 * count]),
        )
    if service == Service.ACTIVATE:
        return Activate()
    if service == Service.PRINTF:
        _need(payload, 3, "printf")
        count = payload[2]
        _need(payload, 3 + 2 * count, "printf data")
        return Printf(
            proc=payload[1], words=flits_to_words(payload[3 : 3 + 2 * count])
        )
    if service == Service.SCANF:
        _need(payload, 2, "scanf")
        return Scanf(proc=payload[1])
    if service == Service.SCANF_RETURN:
        _need(payload, 3, "scanf return")
        return ScanfReturn(value=(payload[1] << 8) | payload[2])
    if service == Service.NOTIFY:
        _need(payload, 2, "notify")
        return Notify(source=payload[1])
    if service == Service.WAIT:
        _need(payload, 2, "wait")
        return Wait(source=payload[1])
    raise ServiceError(f"unhandled service {service!r}")  # pragma: no cover
