"""Packet abstraction over raw flit streams."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .flit import MAX_PAYLOAD_FLITS, decode_address, encode_address


@dataclass
class Packet:
    """A Hermes packet: target address plus a payload of 8-bit flits.

    On the wire a packet is ``[header, size, payload...]`` where *header*
    carries the target router address and *size* the payload flit count
    (paper Section 2.1).  The ``source`` field and the cycle stamps are
    simulation metadata used by :class:`~repro.noc.stats.NetworkStats`;
    they do not travel on the wire.
    """

    target: Tuple[int, int]
    payload: List[int] = field(default_factory=list)
    source: Optional[Tuple[int, int]] = None
    created_cycle: Optional[int] = None
    injected_cycle: Optional[int] = None
    delivered_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        x, y = self.target
        encode_address(x, y)  # validates coordinate range
        if len(self.payload) > MAX_PAYLOAD_FLITS:
            raise ValueError(
                f"payload of {len(self.payload)} flits exceeds the "
                f"{MAX_PAYLOAD_FLITS}-flit packet bound"
            )
        for flit in self.payload:
            if not 0 <= flit <= 0xFF:
                raise ValueError(f"payload flit {flit!r} out of 8-bit range")

    # -- wire format -----------------------------------------------------

    def to_flits(self) -> List[int]:
        """Serialise to the on-wire flit sequence [header, size, payload...]."""
        x, y = self.target
        return [encode_address(x, y), len(self.payload), *self.payload]

    @classmethod
    def from_flits(cls, flits: Sequence[int]) -> "Packet":
        """Parse an on-wire flit sequence back into a packet."""
        if len(flits) < 2:
            raise ValueError("a packet needs at least header and size flits")
        size = flits[1]
        if len(flits) != 2 + size:
            raise ValueError(
                f"size flit says {size} payload flits but "
                f"{len(flits) - 2} are present"
            )
        return cls(target=decode_address(flits[0]), payload=list(flits[2:]))

    # -- checkpoint format -------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serialisable form, metadata stamps included."""
        return {
            "target": list(self.target),
            "payload": list(self.payload),
            "source": list(self.source) if self.source is not None else None,
            "created_cycle": self.created_cycle,
            "injected_cycle": self.injected_cycle,
            "delivered_cycle": self.delivered_cycle,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Packet":
        source = state.get("source")
        return cls(
            target=tuple(state["target"]),
            payload=list(state.get("payload", [])),
            source=tuple(source) if source is not None else None,
            created_cycle=state.get("created_cycle"),
            injected_cycle=state.get("injected_cycle"),
            delivered_cycle=state.get("delivered_cycle"),
        )

    # -- convenience -------------------------------------------------------

    @property
    def size_flits(self) -> int:
        """Total on-wire length, header and size flits included."""
        return 2 + len(self.payload)

    @property
    def latency(self) -> Optional[int]:
        """Cycles from injection to delivery, when both stamps are known."""
        if self.injected_cycle is None or self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.injected_cycle
