"""A traditional shared-bus interconnect: the paper's implicit baseline.

Section 1 motivates the NoC with "(ii) scalability of bandwidth, when
compared to traditional bus architectures".  This module provides that
baseline so the claim can be measured: a single shared medium with
round-robin arbitration, one transaction at a time, one flit per cycle
while granted.

The packet-level interface mirrors :class:`~repro.noc.network.
HermesNetwork` (same ``interfaces`` / ``send`` / ``drained`` /
``collect_received`` surface), so identical workloads drive both
fabrics.  A bus moves ``flit_bits`` per cycle *in total* no matter how
many IPs are attached; the mesh's links each move ``flit_bits/2`` per
cycle but in parallel — which is the whole argument.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..sim import Component, Simulator
from .arbiter import RoundRobinArbiter
from .packet import Packet
from .stats import NetworkStats

Address = Tuple[int, int]

_IDLE = 0
_ARBITRATING = 1
_TRANSFER = 2


class BusInterface:
    """One IP's connection to the shared bus (NI-compatible subset)."""

    def __init__(self, address: Address):
        self.address = address
        self.tx_queue: Deque[Packet] = deque()
        self.received: Deque[Packet] = deque()

    def send_packet(self, packet: Packet) -> Packet:
        if packet.source is None:
            packet.source = self.address
        self.tx_queue.append(packet)
        return packet

    @property
    def tx_busy(self) -> bool:
        return bool(self.tx_queue)

    def has_received(self) -> bool:
        return bool(self.received)

    def pop_received(self) -> Packet:
        return self.received.popleft()


class SharedBusNetwork(Component):
    """``width x height`` IPs on one bus (grid addressing for parity
    with the mesh; the geometry is otherwise irrelevant to a bus).

    Parameters
    ----------
    arbitration_cycles:
        Cycles from request to grant (bus masters negotiate every
        transaction; 2 models a registered arbiter).
    """

    def __init__(
        self,
        width: int,
        height: int,
        arbitration_cycles: int = 2,
        stats: Optional[NetworkStats] = None,
    ):
        super().__init__(f"bus{width}x{height}")
        self.width = width
        self.height = height
        self.arbitration_cycles = arbitration_cycles
        self.stats = stats if stats is not None else NetworkStats()
        self.nodes: List[Address] = [
            (x, y) for y in range(height) for x in range(width)
        ]
        self.interfaces: Dict[Address, BusInterface] = {
            addr: BusInterface(addr) for addr in self.nodes
        }
        self.arbiter = RoundRobinArbiter(len(self.nodes))
        self._state = _IDLE
        self._countdown = 0
        self._current: Optional[Packet] = None
        self._remaining = 0
        self.total_transfers = 0

    # -- HermesNetwork-compatible surface ---------------------------------

    def send(self, source: Address, target: Address, payload: List[int]) -> Packet:
        packet = Packet(target=target, payload=payload, source=source)
        return self.interfaces[source].send_packet(packet)

    @property
    def drained(self) -> bool:
        return (
            self._state == _IDLE
            and all(not ni.tx_busy for ni in self.interfaces.values())
        )

    def collect_received(self) -> List[Packet]:
        out: List[Packet] = []
        for ni in self.interfaces.values():
            while ni.has_received():
                out.append(ni.pop_received())
        return out

    def make_simulator(self, clock_hz: float = 50_000_000.0) -> Simulator:
        sim = Simulator(clock_hz=clock_hz)
        sim.add(self)
        return sim

    def run_to_drain(self, sim: Simulator, max_cycles: int = 1_000_000) -> int:
        return sim.run_until(
            lambda: self.drained, max_cycles=max_cycles, label="bus drain"
        )

    # -- simulation -----------------------------------------------------------

    def eval(self, cycle: int) -> None:
        super().eval(cycle)  # traffic sources may be children
        if self._state == _IDLE:
            requests = [
                bool(self.interfaces[addr].tx_queue) for addr in self.nodes
            ]
            grant = self.arbiter.grant(requests)
            if grant is not None:
                ni = self.interfaces[self.nodes[grant]]
                self._current = ni.tx_queue.popleft()
                self._current.injected_cycle = cycle
                self.stats.packet_injected(self._current)
                self._remaining = self._current.size_flits
                self._countdown = self.arbitration_cycles
                self._state = _ARBITRATING
        elif self._state == _ARBITRATING:
            self._countdown -= 1
            if self._countdown <= 0:
                self._state = _TRANSFER
        elif self._state == _TRANSFER:
            self._remaining -= 1  # one flit crosses the bus per cycle
            if self._remaining <= 0:
                packet = self._current
                assert packet is not None
                packet.delivered_cycle = cycle
                self.interfaces[packet.target].received.append(packet)
                self.stats.packet_delivered(packet, packet.target)
                self.total_transfers += 1
                self._current = None
                self._state = _IDLE

    def reset(self) -> None:
        super().reset()
        for ni in self.interfaces.values():
            ni.tx_queue.clear()
            ni.received.clear()
        self.arbiter.reset()
        self._state = _IDLE
        self._current = None
        self.total_transfers = 0
