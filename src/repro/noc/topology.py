"""Topology plugins — the fabric shape as a first-class parameter.

The paper's scalability argument (Sections 1 and 5) is about *NoCs*,
not about the particular 2x2 Hermes mesh of the prototype; the related
work (Berejuck's multicast survey, Habib et al.'s communication
architecture study) shows topology and routing choice are the
first-order levers on saturation latency and area fraction.  This
module lifts the mesh/XY assumption out of the builder, the router,
the analysis layers and the area model into a small plugin registry:

* :class:`MeshTopology`   — the paper's WxH mesh with XY routing,
* :class:`TorusTopology`  — WxH with wrap links and dateline routing,
* :class:`CMeshTopology`  — concentrated mesh, C nodes per router.

Every plugin exposes the same contract:

* a **node/link graph**: :meth:`~Topology.nodes` (where IPs attach),
  :meth:`~Topology.routers`, :meth:`~Topology.builder_links` (the
  deterministic wiring order) and :meth:`~Topology.neighbour`,
* a **coordinate/address codec**: :meth:`~Topology.encode` /
  :meth:`~Topology.decode`, delegating to the 4-bit header nibbles of
  :mod:`repro.noc.flit` (which caps the node grid at 16x16),
* a **deterministic, deadlock-free routing function**:
  :meth:`~Topology.route`, plus the matching
  :meth:`~Topology.legal_turn` invariant used by the health monitor.

Deadlock freedom per plugin:

* *mesh* — dimension-ordered XY: every path corrects X fully before Y,
  so the channel dependency graph has no cycle (the classical
  Glass/Ni turn-model argument; Y->X turns never occur).
* *torus* — XY with a *dateline* restriction instead of virtual
  channels: in each ring the shorter direction is preferred, but a hop
  that crosses the wrap link is taken only when the wrap is the *last*
  hop of that dimension (an eastward wrap requires the target column
  to be 0; a westward wrap requires column W-1).  The wrap channel
  therefore never feeds another channel of the same unidirectional
  ring, breaking the ring's dependency cycle at the dateline; with
  X-before-Y ordering on top, the whole dependency graph is acyclic.
  Rings shorter than three routers are built without wrap links (they
  would duplicate the existing bidirectional pair).
* *cmesh* — XY over the router grid plus a terminal hop into one of C
  local ports; local ports only sink traffic, so the mesh argument
  carries over unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Type, Union

from .flit import decode_address, encode_address
from .routing import ALL_PORTS, OPPOSITE, PORT_DELTA, Port, xy_route

Address = Tuple[int, int]


class TopologyError(ValueError):
    """A topology spec that cannot be built (raised at config parse time)."""


def port_label(port: int) -> str:
    """Stable display name for a port index of any topology.

    Ports 0..4 keep the Hermes names (EAST/WEST/NORTH/SOUTH/LOCAL);
    extra concentrated-mesh local ports are LOCAL1, LOCAL2, ...
    """
    if port < len(ALL_PORTS):
        return Port(port).name
    return f"LOCAL{port - Port.LOCAL}"


def port_index(label: str) -> int:
    """Inverse of :func:`port_label`."""
    if label.startswith("LOCAL") and label != "LOCAL":
        return Port.LOCAL + int(label[len("LOCAL"):])
    return Port[label].value


def is_local_port(port: int) -> bool:
    return port >= Port.LOCAL


class Topology:
    """Contract shared by every fabric plugin.

    ``width``/``height`` describe the *router* grid; :meth:`nodes`
    (which may be a larger grid for concentrated topologies) describes
    where network interfaces attach.  All iteration orders are
    deterministic so that identical specs build identical hardware.
    """

    kind: str = "?"

    width: int
    height: int
    router_ports: int

    # -- identity ----------------------------------------------------

    @property
    def name(self) -> str:
        """Component-name prefix, e.g. ``mesh2x2`` / ``torus4x4``."""
        raise NotImplementedError

    @property
    def spec(self) -> str:
        """Canonical parseable spec, e.g. ``mesh:2x2``."""
        raise NotImplementedError

    def descriptor(self) -> Dict[str, int]:
        """JSON-safe description (checkpoints, live frames, traces)."""
        raise NotImplementedError

    #: lazily computed by :meth:`label`
    _wide_labels: Optional[bool] = None

    def label(self, addr: Address) -> str:
        """Collision-free coordinate label for component/wire names.

        Grids whose coordinates are all single digits keep the compact
        ``xy`` form (``router21``); wider fabrics separate the
        coordinates (``router11_5``) because concatenation would alias
        e.g. ``(1, 15)`` and ``(11, 5)`` into the same name.
        """
        if self._wide_labels is None:
            self._wide_labels = any(
                c > 9 for node in self.nodes() for c in node
            )
        x, y = addr
        return f"{x}_{y}" if self._wide_labels else f"{x}{y}"

    # -- node/link graph ---------------------------------------------

    def routers(self) -> List[Address]:
        return [(x, y) for y in range(self.height) for x in range(self.width)]

    def nodes(self) -> List[Address]:
        """Attachment points for IPs, raster order."""
        raise NotImplementedError

    def node_router(self, node: Address) -> Address:
        """Router serving *node*."""
        raise NotImplementedError

    def local_port(self, node: Address) -> int:
        """Port index on ``node_router(node)`` where *node* attaches."""
        raise NotImplementedError

    def port_node(self, router: Address, port: int) -> Address:
        """Node attached at a local *port* of *router*."""
        raise NotImplementedError

    def neighbour(self, addr: Address, port: int) -> Optional[Address]:
        """Router reached from *addr* through a direction *port*."""
        raise NotImplementedError

    def builder_links(self) -> Iterator[Tuple[Address, int, Address]]:
        """Deterministic ``(router, port, neighbour)`` wiring order.

        One entry per bidirectional link pair; the builder creates the
        forward and reverse channels together.
        """
        for addr in self.routers():
            for port in (Port.EAST, Port.NORTH):
                nb = self.neighbour(addr, port)
                if nb is not None:
                    yield addr, port, nb

    def is_wrap_link(self, addr: Address, port: int) -> bool:
        """True when the link out of *addr* via *port* crosses a wrap."""
        return False

    def port_counts(self) -> List[int]:
        """Instantiated ports per router, raster order (area model)."""
        counts = []
        n_local = self.router_ports - Port.LOCAL
        for addr in self.routers():
            dirs = sum(
                1
                for port in (Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH)
                if self.neighbour(addr, port) is not None
            )
            counts.append(dirs + n_local)
        return counts

    # -- codec --------------------------------------------------------

    def encode(self, node: Address) -> int:
        return encode_address(*node)

    def decode(self, flit: int) -> Address:
        return decode_address(flit)

    # -- routing ------------------------------------------------------

    def route(self, current: Address, target: Address) -> int:
        """Output port at router *current* for a packet to node *target*.

        Deterministic and deadlock-free (see the module docstring for
        the per-plugin argument).
        """
        raise NotImplementedError

    def route_path(self, source: Address, target: Address) -> List[Address]:
        """Router path from ``node_router(source)`` to
        ``node_router(target)``, both endpoints included."""
        current = self.node_router(source)
        path = [current]
        guard = 4 * (self.width + self.height) * max(1, self.router_ports)
        for _ in range(guard):
            port = self.route(current, target)
            if is_local_port(port):
                return path
            current = self.neighbour(current, port)
            if current is None:  # pragma: no cover - routing bug guard
                raise TopologyError(
                    f"{self.spec}: route from {source} to {target} "
                    f"fell off the fabric at {path[-1]}"
                )
            path.append(current)
        raise TopologyError(  # pragma: no cover - routing bug guard
            f"{self.spec}: route from {source} to {target} does not converge"
        )

    def legal_turn(self, in_port: int, out_port: int) -> bool:
        """Turn-model invariant matching :meth:`route` (health checks).

        Dimension-ordered: packets entering on a Y port may only
        continue in Y or sink locally; X inputs may not U-turn.
        """
        if is_local_port(in_port) or is_local_port(out_port):
            return True
        ip, op = Port(in_port), Port(out_port)
        if ip in (Port.EAST, Port.WEST):
            return op is not ip
        return op is OPPOSITE[ip]

    # -- helpers ------------------------------------------------------

    def port_name(self, port: int) -> str:
        return port_label(port)

    def _check_node_grid(self, nw: int, nh: int) -> None:
        if nw < 1 or nh < 1:
            raise TopologyError(
                f"{self.spec}: dimensions must be at least 1x1"
            )
        if nw > 16 or nh > 16:
            raise TopologyError(
                f"{self.spec}: node grid {nw}x{nh} does not fit the "
                f"4-bit header nibbles — flit headers pack the target "
                f"as (x << 4) | y, so node coordinates must stay below "
                f"16 in each dimension"
            )


class MeshTopology(Topology):
    """The paper's WxH Hermes mesh with dimension-ordered XY routing."""

    kind = "mesh"

    def __init__(self, width: int, height: int):
        self.width = int(width)
        self.height = int(height)
        self.router_ports = len(ALL_PORTS)
        self._check_node_grid(self.width, self.height)

    @property
    def name(self) -> str:
        return f"{self.kind}{self.width}x{self.height}"

    @property
    def spec(self) -> str:
        return f"{self.kind}:{self.width}x{self.height}"

    def descriptor(self) -> Dict[str, int]:
        return {"topology": self.kind, "width": self.width, "height": self.height}

    def nodes(self) -> List[Address]:
        return self.routers()

    def node_router(self, node: Address) -> Address:
        return node

    def local_port(self, node: Address) -> int:
        return Port.LOCAL

    def port_node(self, router: Address, port: int) -> Address:
        return router

    def neighbour(self, addr: Address, port: int) -> Optional[Address]:
        if is_local_port(port):
            return None
        dx, dy = PORT_DELTA[Port(port)]
        nx, ny = addr[0] + dx, addr[1] + dy
        if 0 <= nx < self.width and 0 <= ny < self.height:
            return (nx, ny)
        return None

    def route(self, current: Address, target: Address) -> int:
        return xy_route(current, target)


class TorusTopology(MeshTopology):
    """WxH torus: wrap links, XY dateline routing, no virtual channels.

    Each ring prefers the shorter way round, but a hop across the wrap
    link is only taken when it is the final hop of that dimension —
    otherwise the packet goes the long way through the interior.  That
    keeps every unidirectional ring's channel-dependency chain acyclic
    (the wrap channel never feeds the ring's first channel), so no
    virtual channels are needed.  Rings of length < 3 are built as
    plain mesh links (a wrap there would just duplicate the pair).
    """

    kind = "torus"

    def _wraps(self, size: int) -> bool:
        return size >= 3

    def neighbour(self, addr: Address, port: int) -> Optional[Address]:
        if is_local_port(port):
            return None
        dx, dy = PORT_DELTA[Port(port)]
        nx, ny = addr[0] + dx, addr[1] + dy
        if dx and self._wraps(self.width):
            nx %= self.width
        if dy and self._wraps(self.height):
            ny %= self.height
        if 0 <= nx < self.width and 0 <= ny < self.height:
            return (nx, ny)
        return None

    def is_wrap_link(self, addr: Address, port: int) -> bool:
        if is_local_port(port):
            return False
        dx, dy = PORT_DELTA[Port(port)]
        nx, ny = addr[0] + dx, addr[1] + dy
        return not (0 <= nx < self.width and 0 <= ny < self.height)

    def route(self, current: Address, target: Address) -> int:
        cx, cy = current
        tx, ty = target
        if tx != cx:
            return self._ring_step(cx, tx, self.width, Port.EAST, Port.WEST)
        if ty != cy:
            return self._ring_step(cy, ty, self.height, Port.NORTH, Port.SOUTH)
        return Port.LOCAL

    def _ring_step(self, c: int, t: int, size: int, plus: Port, minus: Port) -> int:
        if not self._wraps(size):
            return plus if t > c else minus
        fwd = (t - c) % size  # hops going + (east / north)
        bwd = (c - t) % size
        # A + move wraps exactly when t < c; the dateline rule allows a
        # wrapping move only when the wrap is the last hop (t sits just
        # past the dateline for that direction).
        plus_ok = t > c or t == 0
        minus_ok = t < c or t == size - 1
        if fwd <= bwd:
            return plus if plus_ok else minus
        return minus if minus_ok else plus


class CMeshTopology(Topology):
    """Concentrated mesh: a WxH router grid with C nodes per router.

    Nodes form a (W*C)xH grid; node ``(nx, ny)`` attaches to router
    ``(nx // C, ny)`` at local port ``4 + nx % C``.  Routing is XY over
    the router grid followed by a terminal hop into the node's local
    port, so the mesh deadlock-freedom argument applies unchanged.
    """

    kind = "cmesh"

    def __init__(self, width: int, height: int, concentration: int = 2):
        self.width = int(width)
        self.height = int(height)
        self.concentration = int(concentration)
        if self.concentration < 1:
            raise TopologyError(f"{self.spec}: concentration must be >= 1")
        self.router_ports = Port.LOCAL + self.concentration
        self._check_node_grid(self.width * self.concentration, self.height)

    @property
    def name(self) -> str:
        return f"cmesh{self.width}x{self.height}x{self.concentration}"

    @property
    def spec(self) -> str:
        return f"cmesh:{self.width}x{self.height}x{self.concentration}"

    def descriptor(self) -> Dict[str, int]:
        return {
            "topology": self.kind,
            "width": self.width,
            "height": self.height,
            "concentration": self.concentration,
        }

    def nodes(self) -> List[Address]:
        return [
            (nx, ny)
            for ny in range(self.height)
            for nx in range(self.width * self.concentration)
        ]

    def node_router(self, node: Address) -> Address:
        return (node[0] // self.concentration, node[1])

    def local_port(self, node: Address) -> int:
        return Port.LOCAL + node[0] % self.concentration

    def port_node(self, router: Address, port: int) -> Address:
        slot = port - Port.LOCAL
        if not 0 <= slot < self.concentration:
            raise TopologyError(
                f"{self.spec}: port {port} of router {router} is not local"
            )
        return (router[0] * self.concentration + slot, router[1])

    def neighbour(self, addr: Address, port: int) -> Optional[Address]:
        if is_local_port(port):
            return None
        dx, dy = PORT_DELTA[Port(port)]
        nx, ny = addr[0] + dx, addr[1] + dy
        if 0 <= nx < self.width and 0 <= ny < self.height:
            return (nx, ny)
        return None

    def route(self, current: Address, target: Address) -> int:
        router = self.node_router(target)
        if router == current:
            return self.local_port(target)
        return xy_route(current, router)


#: Registry of topology plugins, keyed by spec kind.
TOPOLOGIES: Dict[str, Type[Topology]] = {}


def register_topology(kind: str, cls: Optional[Type[Topology]] = None):
    """Register a plugin class under *kind* (usable as a decorator)."""
    if cls is None:
        def _register(inner: Type[Topology]) -> Type[Topology]:
            TOPOLOGIES[kind] = inner
            return inner
        return _register
    TOPOLOGIES[kind] = cls
    return cls


register_topology("mesh", MeshTopology)
register_topology("torus", TorusTopology)
register_topology("cmesh", CMeshTopology)

TopologySpec = Union[str, Tuple[int, int], Topology]


def parse_topology(spec: TopologySpec) -> Topology:
    """Build a topology from a spec.

    Accepted forms: an existing :class:`Topology`, a ``(width, height)``
    tuple (a mesh), ``"WxH"`` (a mesh), or ``"kind:WxH"`` /
    ``"cmesh:WxHxC"`` for any registered kind.  Raises
    :class:`TopologyError` — a ``ValueError`` subclass — for unknown
    kinds or dimensions that break the 4-bit header nibble limit.
    """
    if isinstance(spec, Topology):
        return spec
    if isinstance(spec, (tuple, list)):
        if len(spec) != 2:
            raise TopologyError(f"topology tuple {spec!r} must be (width, height)")
        return MeshTopology(*spec)
    text = str(spec).strip().lower()
    kind, _, dims = text.partition(":")
    if not dims:
        kind, dims = "mesh", text
    cls = TOPOLOGIES.get(kind)
    if cls is None:
        known = ", ".join(sorted(TOPOLOGIES))
        raise TopologyError(f"unknown topology kind {kind!r} (known: {known})")
    parts = dims.split("x")
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise TopologyError(
            f"bad topology spec {spec!r}: dimensions must look like "
            f"'4x4' (or '4x4x2' for cmesh)"
        ) from None
    try:
        return cls(*numbers)
    except TypeError:
        raise TopologyError(
            f"bad topology spec {spec!r}: wrong number of dimensions "
            f"for {kind!r}"
        ) from None


def from_descriptor(doc: Dict[str, int]) -> Topology:
    """Rebuild a topology from :meth:`Topology.descriptor` output."""
    kind = doc.get("topology", "mesh")
    cls = TOPOLOGIES.get(kind)
    if cls is None:
        known = ", ".join(sorted(TOPOLOGIES))
        raise TopologyError(f"unknown topology kind {kind!r} (known: {known})")
    args = [doc["width"], doc["height"]]
    if "concentration" in doc:
        args.append(doc["concentration"])
    return cls(*args)
