"""Cycle-accurate model of the Hermes wormhole router (paper Figure 2).

The router has up to five bi-directional ports (East, West, North, South,
Local), an input buffer per port (2-flit circular FIFO by default), and a
single centralised control logic implementing round-robin arbitration and
deterministic XY routing.  Flits move between routers with the
asynchronous handshake protocol (tx/data/ack), which takes two clock
cycles per flit in steady state — the factor two of the paper's latency
formula.

Timing model
------------
* A header flit reaching the head of an idle input buffer raises a
  routing request.
* The control logic serves one request at a time; each service occupies
  the control logic for ``routing_cycles`` cycles (the paper's ``Ri``,
  "at least 7 clock cycles").  If the XY-selected output is busy the
  request simply persists and is re-arbitrated later, exactly like a
  blocked wormhole.
* Once a connection input->output is established, flits stream through at
  one flit per two cycles until the payload count (snooped from the size
  flit) is exhausted, then the connection closes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim import Component, HandshakeTx
from .arbiter import RoundRobinArbiter
from .fifo import CircularFifo
from .flit import decode_address
from .routing import ALL_PORTS, Port, xy_route
from .topology import port_label


class RoutingError(Exception):
    """A packet asked for an output port that does not exist."""


# Input-side packet phases (what the *next popped flit* is).
_PH_HEADER = 0
_PH_SIZE = 1
_PH_PAYLOAD = 2

_CTRL_IDLE = 0
_CTRL_ROUTING = 1


class HermesRouter(Component):
    """One Hermes router.

    Channels are attached by the mesh builder with :meth:`attach_input`
    and :meth:`attach_output`; ports without a neighbour stay detached
    (border routers really do instantiate fewer ports in Hermes).
    """

    N_PORTS = len(ALL_PORTS)

    def __init__(
        self,
        name: str,
        address: Tuple[int, int],
        buffer_depth: int = 2,
        routing_cycles: int = 7,
        stats=None,
        topology=None,
    ):
        super().__init__(name)
        if routing_cycles < 1:
            raise ValueError("routing_cycles must be at least 1")
        self.address = address
        self.topology = topology
        # The topology plugin supplies the port count, the header codec
        # and the routing function; without one the router falls back to
        # the classic five-port XY mesh behaviour.
        if topology is not None:
            self.N_PORTS = topology.router_ports
            self._decode = topology.decode
            self._route = topology.route
        else:
            self._decode = decode_address
            self._route = xy_route
        self._port_names = [port_label(p) for p in range(self.N_PORTS)]
        self.buffer_depth = buffer_depth
        self.routing_cycles = routing_cycles
        self.stats = stats
        #: optional TelemetrySink; every hook is behind one None-check
        self.sink = None
        self._now = 0
        self._conn_opened = [0] * self.N_PORTS
        # Receive-side packet framing (telemetry only): lets the receiver
        # hook recognise header flits and stamp their FIFO-entry cycle.
        self._rx_phase = [_PH_HEADER] * self.N_PORTS
        self._rx_left = [0] * self.N_PORTS

        self.in_ch: List[Optional[HandshakeTx]] = [None] * self.N_PORTS
        self.out_ch: List[Optional[HandshakeTx]] = [None] * self.N_PORTS

        self.fifos = [CircularFifo(buffer_depth) for _ in range(self.N_PORTS)]
        # Input-side connection state.
        self.in_conn: List[Optional[int]] = [None] * self.N_PORTS
        self.in_phase = [_PH_HEADER] * self.N_PORTS
        self.in_remaining = [0] * self.N_PORTS
        # Output-side connection state.
        self.out_owner: List[Optional[int]] = [None] * self.N_PORTS
        self._in_flight = [False] * self.N_PORTS

        self.arbiter = RoundRobinArbiter(self.N_PORTS)
        self._ctrl_state = _CTRL_IDLE
        self._ctrl_input = 0
        self._ctrl_counter = 0

    # -- wiring ------------------------------------------------------------

    def attach_input(self, port: Port, channel: HandshakeTx) -> None:
        """Attach the receive side of *channel* to *port* (we drive ack)."""
        self.in_ch[port] = channel
        self.adopt_wires([channel.ack])
        # A committed change on the neighbour's tx/data must wake us; the
        # output-side ack only matters while a connection is open, and an
        # open connection keeps the router awake via `busy`.
        self.watch_wires([channel.tx, channel.data])

    def attach_output(self, port: Port, channel: HandshakeTx) -> None:
        """Attach the send side of *channel* to *port* (we drive tx/data)."""
        self.out_ch[port] = channel
        self.adopt_wires([channel.tx, channel.data])

    # -- simulation ----------------------------------------------------------

    def eval(self, cycle: int) -> None:
        if self.sink is not None:
            self._now = cycle
        self._eval_senders()
        self._eval_control()
        self._eval_receivers()

    def is_quiescent(self) -> bool:
        """Idle when no buffered flits, no open connections, the control
        logic is idle, and every attached input link is silent (tx low and
        our own ack pulse already dropped back to zero)."""
        if self._ctrl_state != _CTRL_IDLE:
            return False
        for p in range(self.N_PORTS):
            if self.in_conn[p] is not None or self.fifos[p]:
                return False
            ch = self.in_ch[p]
            if ch is not None and (ch.tx.value or ch.ack.value):
                return False
        return True

    def reset(self) -> None:
        super().reset()
        for fifo in self.fifos:
            fifo.clear()
        self.in_conn = [None] * self.N_PORTS
        self.in_phase = [_PH_HEADER] * self.N_PORTS
        self.in_remaining = [0] * self.N_PORTS
        self.out_owner = [None] * self.N_PORTS
        self._in_flight = [False] * self.N_PORTS
        self.arbiter.reset()
        self._ctrl_state = _CTRL_IDLE
        self._ctrl_counter = 0
        self._rx_phase = [_PH_HEADER] * self.N_PORTS
        self._rx_left = [0] * self.N_PORTS

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "fifos": [
                [f.snapshot(), f.watermark] for f in self.fifos
            ],
            "in_conn": list(self.in_conn),
            "in_phase": list(self.in_phase),
            "in_remaining": list(self.in_remaining),
            "out_owner": list(self.out_owner),
            "in_flight": list(self._in_flight),
            "last_grant": self.arbiter._last_grant,
            "ctrl_state": self._ctrl_state,
            "ctrl_input": self._ctrl_input,
            "ctrl_counter": self._ctrl_counter,
            "rx_phase": list(self._rx_phase),
            "rx_left": list(self._rx_left),
            "conn_opened": list(self._conn_opened),
            "now": self._now,
        }

    def restore_state(self, state: dict) -> None:
        for fifo, (contents, watermark) in zip(self.fifos, state["fifos"]):
            fifo.restore(contents, watermark)
        self.in_conn = list(state["in_conn"])
        self.in_phase = list(state["in_phase"])
        self.in_remaining = list(state["in_remaining"])
        self.out_owner = list(state["out_owner"])
        self._in_flight = list(state["in_flight"])
        self.arbiter._last_grant = state["last_grant"]
        self._ctrl_state = state["ctrl_state"]
        self._ctrl_input = state["ctrl_input"]
        self._ctrl_counter = state["ctrl_counter"]
        self._rx_phase = list(state["rx_phase"])
        self._rx_left = list(state["rx_left"])
        self._conn_opened = list(state["conn_opened"])
        self._now = state["now"]

    # -- output ports (handshake senders) -----------------------------------

    def _eval_senders(self) -> None:
        for out in range(self.N_PORTS):
            ch = self.out_ch[out]
            if ch is None:
                continue
            owner = self.out_owner[out]
            if owner is None:
                ch.tx.drive(0)
                self._in_flight[out] = False
                continue
            fifo = self.fifos[owner]
            if self._in_flight[out]:
                if ch.ack.value:
                    flit = fifo.pop()
                    if self.stats is not None:
                        self.stats.flit_sent(self.address, out)
                    self._advance_packet(owner, out, flit)
                    if self.out_owner[out] == owner and not fifo.is_empty:
                        ch.tx.drive(1)
                        ch.data.drive(fifo.head)
                    else:
                        ch.tx.drive(0)
                        self._in_flight[out] = False
                else:
                    ch.tx.drive(1)
                    ch.data.drive(fifo.head)
            elif not fifo.is_empty:
                ch.tx.drive(1)
                ch.data.drive(fifo.head)
                self._in_flight[out] = True
            else:
                ch.tx.drive(0)

    def _advance_packet(self, in_port: int, out_port: int, flit: int) -> None:
        """Track packet framing as a flit leaves, closing on the last one."""
        phase = self.in_phase[in_port]
        if phase == _PH_HEADER:
            self.in_phase[in_port] = _PH_SIZE
        elif phase == _PH_SIZE:
            if flit == 0:
                self._close_connection(in_port, out_port)
            else:
                self.in_remaining[in_port] = flit
                self.in_phase[in_port] = _PH_PAYLOAD
        else:
            self.in_remaining[in_port] -= 1
            if self.in_remaining[in_port] == 0:
                self._close_connection(in_port, out_port)

    def _close_connection(self, in_port: int, out_port: int) -> None:
        self.in_conn[in_port] = None
        self.in_phase[in_port] = _PH_HEADER
        self.in_remaining[in_port] = 0
        self.out_owner[out_port] = None
        self._in_flight[out_port] = False
        if self.stats is not None:
            self.stats.connection_closed(self.address)
        if self.sink is not None:
            opened = self._conn_opened[out_port]
            self.sink.complete(
                self.name,
                f"hop>{self._port_names[out_port]}",
                opened,
                self._now - opened,
                in_port=self._port_names[in_port],
            )

    # -- control logic (arbitration + XY routing) ---------------------------

    def _eval_control(self) -> None:
        if self._ctrl_state == _CTRL_IDLE:
            requests = [
                self.in_ch[p] is not None
                and self.in_conn[p] is None
                and not self.fifos[p].is_empty
                for p in range(self.N_PORTS)
            ]
            grant = self.arbiter.grant(requests)
            if grant is not None:
                self._ctrl_state = _CTRL_ROUTING
                self._ctrl_input = grant
                self._ctrl_counter = self.routing_cycles - 1
        else:
            if self._ctrl_counter > 0:
                self._ctrl_counter -= 1
                return
            self._ctrl_state = _CTRL_IDLE
            in_port = self._ctrl_input
            # The request may have vanished (it cannot in normal operation,
            # but a reset mid-route keeps this safe).
            if self.in_conn[in_port] is not None or self.fifos[in_port].is_empty:
                return
            target = self._decode(self.fifos[in_port].head)
            out_port = self._route(self.address, target)
            if self.out_ch[out_port] is None:
                raise RoutingError(
                    f"router {self.address}: packet for {target} needs "
                    f"missing port {self._port_names[out_port]}"
                )
            if self.out_owner[out_port] is None:
                self.in_conn[in_port] = out_port
                self.out_owner[out_port] = in_port
                if self.stats is not None:
                    self.stats.connection_opened(self.address)
                if self.sink is not None:
                    self._conn_opened[out_port] = self._now
                    self.sink.instant(
                        self.name,
                        "route",
                        self._now,
                        target=f"{target[0]},{target[1]}",
                        out=self._port_names[out_port],
                        port=self._port_names[in_port],
                    )
            else:
                if self.stats is not None:
                    self.stats.routing_blocked(self.address)
                if self.sink is not None:
                    self.sink.instant(
                        self.name,
                        "route_blocked",
                        self._now,
                        out=self._port_names[out_port],
                        port=self._port_names[in_port],
                        target=f"{target[0]},{target[1]}",
                    )

    # -- input ports (handshake receivers) -----------------------------------

    def _eval_receivers(self) -> None:
        for p in range(self.N_PORTS):
            ch = self.in_ch[p]
            if ch is None:
                continue
            if ch.ack.value:
                # ack is a single-cycle pulse.
                ch.ack.drive(0)
            elif ch.tx.value and not self.fifos[p].is_full:
                self.fifos[p].push(ch.data.value)
                ch.ack.drive(1)
                if self.stats is not None:
                    self.stats.flit_received(self.address, p)
                if self.sink is not None:
                    self._rx_track(p, ch.data.value)
            else:
                if (
                    self.stats is not None
                    and ch.tx.value
                    and self.fifos[p].is_full
                ):
                    self.stats.stall(self.address, p)
                ch.ack.drive(0)

    def _rx_track(self, port: int, flit: int) -> None:
        """Telemetry-only receive-side framing: stamp the FIFO-entry cycle
        of every header flit (the ``hdr`` instant the post-mortem analyzer
        uses as each hop's queueing-start boundary)."""
        phase = self._rx_phase[port]
        if phase == _PH_HEADER:
            target = self._decode(flit)
            self.sink.instant(
                self.name,
                "hdr",
                self._now,
                port=self._port_names[port],
                target=f"{target[0]},{target[1]}",
            )
            self._rx_phase[port] = _PH_SIZE
        elif phase == _PH_SIZE:
            if flit == 0:
                self._rx_phase[port] = _PH_HEADER
            else:
                self._rx_left[port] = flit
                self._rx_phase[port] = _PH_PAYLOAD
        else:
            self._rx_left[port] -= 1
            if self._rx_left[port] == 0:
                self._rx_phase[port] = _PH_HEADER

    # -- introspection ---------------------------------------------------------

    def pending_header_target(self, port: int) -> Optional[Tuple[int, int]]:
        """Target of an unrouted header waiting at *port*'s FIFO head.

        Returns ``None`` unless the port holds a header flit that has not
        yet won a connection — the state a health monitor needs to build
        the "waiting for output" edges of the wait-for graph.
        """
        if self.in_conn[port] is not None or self.fifos[port].is_empty:
            return None
        if self.in_phase[port] != _PH_HEADER:
            return None
        return self._decode(self.fifos[port].head)

    def probe_state(self) -> dict:
        """Cheap introspection snapshot for health monitoring/diagnostics."""
        return {
            "address": self.address,
            "occupancy": [len(f) for f in self.fifos],
            "watermark": [f.watermark for f in self.fifos],
            "fifos": [f.snapshot() for f in self.fifos],
            "in_conn": list(self.in_conn),
            "out_owner": list(self.out_owner),
            "ctrl": "routing" if self._ctrl_state != _CTRL_IDLE else "idle",
        }

    @property
    def busy(self) -> bool:
        """True while any buffer holds flits or any connection is open."""
        return (
            any(not f.is_empty for f in self.fifos)
            or any(c is not None for c in self.in_conn)
            or self._ctrl_state != _CTRL_IDLE
        )
