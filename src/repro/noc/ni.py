"""Network interface: packet-level adapter over the flit handshake.

Every IP core in MultiNoC talks to its router's Local port through the
same tx/data/ack handshake the routers use among themselves.  The
:class:`NetworkInterface` provides the packet-level view — queue a
:class:`~repro.noc.packet.Packet` for injection, collect fully reassembled
packets on reception — while still exercising the exact flit-level timing
(two cycles per flit, blocking on a busy network).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..sim import Component, HandshakeTx
from .flit import decode_address
from .packet import Packet

_RX_HEADER = 0
_RX_SIZE = 1
_RX_PAYLOAD = 2


class NetworkInterface(Component):
    """Packet send/receive endpoint attached to a router Local port."""

    def __init__(self, name: str, address: Tuple[int, int], stats=None):
        super().__init__(name)
        self.address = address
        self.stats = stats
        #: optional TelemetrySink; hooks are behind one None-check each
        self.sink = None
        #: per-flow (target) injection sequence numbers; telemetry only
        self._flow_seq: dict = {}
        self.to_router: Optional[HandshakeTx] = None
        self.from_router: Optional[HandshakeTx] = None

        self._tx_queue: Deque[Packet] = deque()
        self._tx_flits: List[int] = []
        self._tx_index = 0
        self._tx_packet: Optional[Packet] = None
        self._tx_in_flight = False

        self._rx_state = _RX_HEADER
        self._rx_flits: List[int] = []
        self._rx_expected = 0
        self.received: Deque[Packet] = deque()
        #: optional debugger hook ``on_packet(ni, packet, cycle)`` called
        #: when a packet finishes reassembly at this NI.
        self.on_packet = None

    # -- wiring ------------------------------------------------------------

    def attach(self, to_router: HandshakeTx, from_router: HandshakeTx) -> None:
        """Connect both directions of the Local-port channel pair."""
        self.to_router = to_router
        self.from_router = from_router
        self.adopt_wires([to_router.tx, to_router.data, from_router.ack])
        # Incoming flits must wake a sleeping NI; the send side needs no
        # watch because pending TX work keeps the NI awake by itself.
        self.watch_wires([from_router.tx, from_router.data])
        self.wake()

    def detach(self) -> None:
        """Disconnect from the Local port (dynamic reconfiguration).

        The vacated channel wires are parked at their reset values so the
        router sees a silent neighbour.
        """
        if self.to_router is not None:
            self.to_router.tx.reset()
            self.to_router.data.reset()
            self.disown_wires(
                [self.to_router.tx, self.to_router.data]
            )
        if self.from_router is not None:
            self.from_router.ack.reset()
            self.disown_wires([self.from_router.ack])
            self.unwatch_wires([self.from_router.tx, self.from_router.data])
        self.to_router = None
        self.from_router = None
        # any partially received packet is lost with the region
        self._rx_state = _RX_HEADER
        self._rx_flits = []

    # -- packet API -----------------------------------------------------------

    def send_packet(self, packet: Packet) -> Packet:
        """Queue *packet* for injection; returns it for stamp inspection."""
        if packet.source is None:
            packet.source = self.address
        self._tx_queue.append(packet)
        self.wake()
        return packet

    @property
    def tx_busy(self) -> bool:
        """True while any packet is queued or partially injected."""
        return bool(self._tx_queue) or self._tx_packet is not None

    def probe_state(self) -> dict:
        """Cheap introspection snapshot for health monitoring/diagnostics."""
        return {
            "address": self.address,
            "tx_queued": len(self._tx_queue),
            "tx_busy": self.tx_busy,
            "rx_partial_flits": len(self._rx_flits),
            "rx_pending": len(self.received),
        }

    def has_received(self) -> bool:
        return bool(self.received)

    def pop_received(self) -> Packet:
        return self.received.popleft()

    # -- simulation -------------------------------------------------------------

    def eval(self, cycle: int) -> None:
        self._eval_sender(cycle)
        self._eval_receiver(cycle)

    def is_quiescent(self) -> bool:
        """Idle when nothing is queued for injection, no packet is half
        reassembled, and the from-router link is silent (tx low, our ack
        pulse already back to zero).  Delivered packets sitting in
        ``received`` do not keep the NI itself busy — the parent that
        drains them tracks that in its own quiescence predicate."""
        if self._tx_packet is not None or self._tx_queue:
            return False
        if self._rx_state != _RX_HEADER:
            return False
        ch = self.from_router
        if ch is not None and (ch.tx.value or ch.ack.value):
            return False
        return True

    def reset(self) -> None:
        super().reset()
        self._tx_queue.clear()
        self._tx_flits = []
        self._tx_index = 0
        self._tx_packet = None
        self._tx_in_flight = False
        self._rx_state = _RX_HEADER
        self._rx_flits = []
        self.received.clear()
        self._flow_seq = {}

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "tx_queue": [p.to_state() for p in self._tx_queue],
            "tx_flits": list(self._tx_flits),
            "tx_index": self._tx_index,
            "tx_packet": (
                self._tx_packet.to_state()
                if self._tx_packet is not None
                else None
            ),
            "tx_in_flight": self._tx_in_flight,
            "rx_state": self._rx_state,
            "rx_flits": list(self._rx_flits),
            "rx_expected": self._rx_expected,
            "received": [p.to_state() for p in self.received],
            "flow_seq": sorted(
                [list(target), seq]
                for target, seq in self._flow_seq.items()
            ),
        }

    def restore_state(self, state: dict) -> None:
        self._tx_queue = deque(
            Packet.from_state(p) for p in state["tx_queue"]
        )
        self._tx_flits = list(state["tx_flits"])
        self._tx_index = state["tx_index"]
        tx_packet = state["tx_packet"]
        self._tx_packet = (
            Packet.from_state(tx_packet) if tx_packet is not None else None
        )
        self._tx_in_flight = state["tx_in_flight"]
        self._rx_state = state["rx_state"]
        self._rx_flits = list(state["rx_flits"])
        self._rx_expected = state["rx_expected"]
        self.received = deque(
            Packet.from_state(p) for p in state["received"]
        )
        self._flow_seq = {
            tuple(target): seq for target, seq in state["flow_seq"]
        }

    def _eval_sender(self, cycle: int) -> None:
        ch = self.to_router
        if ch is None:
            return
        if self._tx_packet is None and self._tx_queue:
            self._tx_packet = self._tx_queue.popleft()
            self._tx_packet.created_cycle = (
                self._tx_packet.created_cycle
                if self._tx_packet.created_cycle is not None
                else cycle
            )
            self._tx_flits = self._tx_packet.to_flits()
            self._tx_index = 0
            self._tx_in_flight = False
        if self._tx_packet is None:
            # Idle: tx must be low.  Only this NI drives the wire, so when
            # both phases already read 0 the drive is a no-op — skip it.
            tx = ch.tx
            if tx.value or tx._next:
                tx.drive(0)
            return
        if self._tx_in_flight:
            if ch.ack.value:
                if self._tx_index == 0:
                    self._tx_packet.injected_cycle = cycle
                self._tx_index += 1
                if self._tx_index >= len(self._tx_flits):
                    if self.stats is not None:
                        self.stats.packet_injected(self._tx_packet)
                    if self.sink is not None:
                        start = self._tx_packet.injected_cycle
                        target = self._tx_packet.target
                        seq = self._flow_seq.get(target, 0)
                        self._flow_seq[target] = seq + 1
                        src = f"{self.address[0]},{self.address[1]}"
                        tgt = f"{target[0]},{target[1]}"
                        self.sink.complete(
                            self.name,
                            "inject",
                            start if start is not None else cycle,
                            cycle - start if start is not None else 0,
                            target=tgt,
                            flits=len(self._tx_flits),
                            src=src,
                            flow=f"{src}>{tgt}",
                            seq=seq,
                            queued=self._tx_packet.created_cycle,
                        )
                    self._tx_packet = None
                    self._tx_in_flight = False
                    ch.tx.drive(0)
                    return
                self._tx_in_flight = True
            # present current (or next) flit
            ch.tx.drive(1)
            ch.data.drive(self._tx_flits[self._tx_index])
        else:
            ch.tx.drive(1)
            ch.data.drive(self._tx_flits[self._tx_index])
            self._tx_in_flight = True

    def _eval_receiver(self, cycle: int) -> None:
        ch = self.from_router
        if ch is None:
            return
        ack = ch.ack
        if ack.value:
            ack.drive(0)
            return
        if ch.tx.value:
            self._accept_flit(ch.data.value, cycle)
            ack.drive(1)
        elif ack._next:
            # ack is already low in both phases on a silent link; driving
            # 0 again would be a no-op (only this NI drives the wire).
            ack.drive(0)

    def _accept_flit(self, flit: int, cycle: int) -> None:
        if self._rx_state == _RX_HEADER:
            self._rx_flits = [flit]
            self._rx_state = _RX_SIZE
        elif self._rx_state == _RX_SIZE:
            self._rx_flits.append(flit)
            self._rx_expected = flit
            if flit == 0:
                self._finish_packet(cycle)
            else:
                self._rx_state = _RX_PAYLOAD
        else:
            self._rx_flits.append(flit)
            self._rx_expected -= 1
            if self._rx_expected == 0:
                self._finish_packet(cycle)

    def _finish_packet(self, cycle: int) -> None:
        packet = Packet.from_flits(self._rx_flits)
        packet.delivered_cycle = cycle
        header_target = decode_address(self._rx_flits[0])
        if header_target != self.address:
            raise RuntimeError(
                f"NI at {self.address} received packet addressed to "
                f"{header_target}: routing is broken"
            )
        self.received.append(packet)
        if self.on_packet is not None:
            self.on_packet(self, packet, cycle)
        if self.stats is not None:
            self.stats.packet_delivered(packet, self.address)
        if self.sink is not None:
            # stats matching (above) recovered the injection stamp, so
            # the whole inject->deliver lifetime renders as one span
            at = f"{self.address[0]},{self.address[1]}"
            if packet.latency is not None:
                self.sink.complete(
                    self.name,
                    "packet",
                    packet.injected_cycle,
                    packet.latency,
                    flits=packet.size_flits,
                    at=at,
                )
            else:
                self.sink.instant(self.name, "deliver", cycle, at=at)
        self._rx_state = _RX_HEADER
        self._rx_flits = []
