"""Flit-level constants and helpers for the Hermes NoC.

MultiNoC uses 8-bit flits (paper Section 2.1).  The first flit of every
packet is the *header flit* carrying the target router address encoded as
``x`` in the high nibble and ``y`` in the low nibble; the second flit is
the payload flit count.
"""

from __future__ import annotations

from typing import Tuple

#: Flit width in bits for the MultiNoC configuration.
FLIT_BITS = 8

#: Largest value a flit can carry.
FLIT_MAX = (1 << FLIT_BITS) - 1

#: Maximum payload flits in one packet: the paper fixes the packet length
#: bound at 2**(flit size in bits); the size flit itself caps the payload.
MAX_PAYLOAD_FLITS = FLIT_MAX


def encode_address(x: int, y: int) -> int:
    """Pack mesh coordinates into a header flit (x high nibble, y low)."""
    if not 0 <= x <= 0xF or not 0 <= y <= 0xF:
        raise ValueError(f"router coordinates ({x}, {y}) out of 4-bit range")
    return (x << 4) | y


def decode_address(flit: int) -> Tuple[int, int]:
    """Unpack a header flit into ``(x, y)`` mesh coordinates."""
    if not 0 <= flit <= FLIT_MAX:
        raise ValueError(f"flit value {flit} out of {FLIT_BITS}-bit range")
    return (flit >> 4) & 0xF, flit & 0xF


def split_word(word: int) -> Tuple[int, int]:
    """Split a 16-bit word into (high, low) flits."""
    if not 0 <= word <= 0xFFFF:
        raise ValueError(f"word {word} out of 16-bit range")
    return (word >> 8) & 0xFF, word & 0xFF


def join_word(hi: int, lo: int) -> int:
    """Join (high, low) flits back into a 16-bit word."""
    if not 0 <= hi <= 0xFF or not 0 <= lo <= 0xFF:
        raise ValueError(f"flits ({hi}, {lo}) out of 8-bit range")
    return (hi << 8) | lo


def words_to_flits(words) -> list:
    """Serialise a sequence of 16-bit words into big-endian flit pairs."""
    flits = []
    for w in words:
        hi, lo = split_word(w)
        flits.append(hi)
        flits.append(lo)
    return flits


def flits_to_words(flits) -> list:
    """Reassemble big-endian flit pairs into 16-bit words."""
    if len(flits) % 2:
        raise ValueError(f"odd flit count {len(flits)} cannot form 16-bit words")
    return [join_word(flits[i], flits[i + 1]) for i in range(0, len(flits), 2)]
