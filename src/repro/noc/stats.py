"""Network statistics collection.

Routers and network interfaces call into a shared :class:`NetworkStats`
instance; benchmarks read the aggregates (latency distribution, accepted
throughput, blocking) from it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .flit import FLIT_BITS
from .packet import Packet

Address = Tuple[int, int]


@dataclass
class NetworkStats:
    """Counters shared across routers and network interfaces."""

    flits_received: Dict[Tuple[Address, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    flits_sent: Dict[Tuple[Address, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    stall_cycles: Dict[Tuple[Address, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    blocked_routings: Dict[Address, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    connections_opened: Dict[Address, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    connections_closed: Dict[Address, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    packets_injected: int = 0
    packets_delivered: int = 0
    latencies: List[int] = field(default_factory=list)
    delivered_flits: int = 0
    _in_flight: Dict[tuple, list] = field(default_factory=lambda: defaultdict(list))

    # -- hooks called by the models ---------------------------------------

    def flit_received(self, router: Address, port: int) -> None:
        self.flits_received[(router, port)] += 1

    def flit_sent(self, router: Address, port: int) -> None:
        self.flits_sent[(router, port)] += 1

    def stall(self, router: Address, port: int) -> None:
        self.stall_cycles[(router, port)] += 1

    def routing_blocked(self, router: Address) -> None:
        self.blocked_routings[router] += 1

    def connection_opened(self, router: Address) -> None:
        self.connections_opened[router] += 1

    def connection_closed(self, router: Address) -> None:
        self.connections_closed[router] += 1

    def packet_injected(self, packet: Packet) -> None:
        """Record an injection; remember its cycle for latency matching.

        A delivered packet is a fresh object reassembled from flits, so the
        injection stamp cannot ride along.  Packets are matched FIFO on
        (target, payload) — identical concurrent packets are
        interchangeable for latency purposes.
        """
        self.packets_injected += 1
        key = (packet.target, tuple(packet.payload))
        self._in_flight[key].append(packet.injected_cycle)

    def packet_delivered(self, packet: Packet, at: Address) -> None:
        self.packets_delivered += 1
        self.delivered_flits += packet.size_flits
        key = (packet.target, tuple(packet.payload))
        pending = self._in_flight.get(key)
        if pending:
            packet.injected_cycle = pending.pop(0)
        if packet.latency is not None:
            self.latencies.append(packet.latency)

    # -- aggregates ---------------------------------------------------------

    @property
    def average_latency(self) -> float:
        """Mean injection-to-delivery latency in clock cycles."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> int:
        return max(self.latencies) if self.latencies else 0

    def router_flits_sent(self, router: Address) -> int:
        """Total flits a router pushed out across all its ports."""
        return sum(
            count for (addr, _), count in self.flits_sent.items() if addr == router
        )

    def accepted_throughput(self, cycles: int) -> float:
        """Delivered payload in flits per cycle over *cycles*."""
        if cycles <= 0:
            return 0.0
        return self.delivered_flits / cycles

    def link_load(self, router: Address, port: int, cycles: int) -> float:
        """Utilisation of one output link in [0, 1] (1.0 = the 2-cycle
        handshake bound: one flit every two cycles)."""
        if cycles <= 0:
            return 0.0
        return self.flits_sent[(router, port)] * 2 / cycles

    def utilisation_grid(self, width: int, height: int, cycles: int):
        """Per-router total output utilisation, as a [y][x] grid."""
        grid = []
        for y in range(height):
            row = []
            for x in range(width):
                total = sum(
                    self.link_load((x, y), port, cycles) for port in range(5)
                )
                row.append(total)
            grid.append(row)
        return grid

    def heatmap(self, width: int, height: int, cycles: int) -> str:
        """ASCII traffic heatmap of the mesh (top row = highest y)."""
        grid = self.utilisation_grid(width, height, cycles)
        peak = max((v for row in grid for v in row), default=0.0) or 1.0
        ramp = " .:-=+*#%@"
        lines = []
        for y in reversed(range(height)):
            cells = []
            for x in range(width):
                level = int(grid[y][x] / peak * (len(ramp) - 1))
                cells.append(ramp[level] * 3)
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def router_throughput_bps(
        self, router: Address, cycles: int, clock_hz: float
    ) -> float:
        """A single router's aggregate bandwidth in bits per second.

        At 50 MHz with 8-bit flits and the 2-cycle handshake each port
        moves 200 Mbit/s, so a fully loaded five-port router reaches the
        paper's 1 Gbit/s peak figure.
        """
        if cycles <= 0:
            return 0.0
        flits = self.router_flits_sent(router)
        return flits * FLIT_BITS * clock_hz / cycles
