"""Network statistics collection.

Routers and network interfaces call into a shared :class:`NetworkStats`
instance; benchmarks read the aggregates (latency distribution, accepted
throughput, blocking) from it.

Since the telemetry refactor the counters live in a
:class:`~repro.telemetry.metrics.MetricsRegistry`, so the NoC aggregates
share an export path (Prometheus text, JSON snapshot) with any metric a
component registers ad hoc.  The benchmark-facing API is unchanged: the
per-flit hook sites still mutate plain dicts (aliased from the
registry's counters), so the hot path costs exactly what it did before.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..telemetry.metrics import MetricsRegistry
from .flit import FLIT_BITS
from .packet import Packet

Address = Tuple[int, int]


class NetworkStats:
    """Counters shared across routers and network interfaces."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        # Per-flit hooks run on every handshake, so the hook methods
        # mutate the counters' label dicts directly (zero extra cost).
        self.flits_received = r.counter(
            "noc_flits_received_total", "flits accepted per (router, port)"
        ).samples
        self.flits_sent = r.counter(
            "noc_flits_sent_total", "flits emitted per (router, port)"
        ).samples
        self.stall_cycles = r.counter(
            "noc_stall_cycles_total", "cycles a full buffer refused a flit"
        ).samples
        self.blocked_routings = r.counter(
            "noc_routing_blocked_total", "arbitration rounds lost to a busy port"
        ).samples
        self.connections_opened = r.counter(
            "noc_connections_opened_total", "wormhole connections established"
        ).samples
        self.connections_closed = r.counter(
            "noc_connections_closed_total", "wormhole connections torn down"
        ).samples
        self._packets_injected = r.counter(
            "noc_packets_injected_total", "packets fully injected by NIs"
        )
        self._packets_delivered = r.counter(
            "noc_packets_delivered_total", "packets fully reassembled by NIs"
        )
        self._delivered_flits = r.counter(
            "noc_delivered_flits_total", "on-wire flits of delivered packets"
        )
        self._unmatched = r.counter(
            "noc_unmatched_deliveries_total",
            "deliveries with no matching injection stamp",
        )
        self._pruned = r.counter(
            "noc_packets_pruned_total",
            "in-flight stamps dropped as undeliverable",
        )
        self._latency = r.histogram(
            "noc_packet_latency_cycles", "injection-to-delivery latency"
        )
        self.latencies: List[int] = self._latency.values
        self._in_flight: Dict[tuple, list] = {}
        r.gauge(
            "noc_packets_in_flight", "injected packets not yet delivered"
        ).set_function(lambda: self.in_flight_count)

    # -- checkpointing ------------------------------------------------------

    @staticmethod
    def _key_out(key):
        """Tuple (possibly nested) -> JSON-safe nested lists."""
        if isinstance(key, tuple):
            return [NetworkStats._key_out(k) for k in key]
        return key

    @staticmethod
    def _key_in(key):
        """Nested lists back to the tuple keys the hot paths use."""
        if isinstance(key, list):
            return tuple(NetworkStats._key_in(k) for k in key)
        return key

    def snapshot(self) -> dict:
        def dump(samples):
            return sorted(
                [self._key_out(k), v] for k, v in samples.items()
            )

        return {
            "flits_received": dump(self.flits_received),
            "flits_sent": dump(self.flits_sent),
            "stall_cycles": dump(self.stall_cycles),
            "blocked_routings": dump(self.blocked_routings),
            "connections_opened": dump(self.connections_opened),
            "connections_closed": dump(self.connections_closed),
            "packets_injected": self._packets_injected.value,
            "packets_delivered": self._packets_delivered.value,
            "delivered_flits": self._delivered_flits.value,
            "unmatched": self._unmatched.value,
            "pruned": self._pruned.value,
            "latencies": list(self.latencies),
            "in_flight": sorted(
                [self._key_out(k), list(stamps)]
                for k, stamps in self._in_flight.items()
            ),
        }

    def restore(self, state: dict) -> None:
        def load(samples, dumped):
            # mutate in place: the dicts are aliased by the hot paths
            samples.clear()
            for k, v in dumped:
                samples[self._key_in(k)] = v

        load(self.flits_received, state["flits_received"])
        load(self.flits_sent, state["flits_sent"])
        load(self.stall_cycles, state["stall_cycles"])
        load(self.blocked_routings, state["blocked_routings"])
        load(self.connections_opened, state["connections_opened"])
        load(self.connections_closed, state["connections_closed"])
        self._packets_injected._value = state["packets_injected"]
        self._packets_delivered._value = state["packets_delivered"]
        self._delivered_flits._value = state["delivered_flits"]
        self._unmatched._value = state["unmatched"]
        self._pruned._value = state["pruned"]
        self.latencies[:] = state["latencies"]
        self._in_flight = {
            self._key_in(k): list(stamps)
            for k, stamps in state["in_flight"]
        }

    # -- hooks called by the models ---------------------------------------

    def flit_received(self, router: Address, port: int) -> None:
        self.flits_received[(router, port)] += 1

    def flit_sent(self, router: Address, port: int) -> None:
        self.flits_sent[(router, port)] += 1

    def stall(self, router: Address, port: int) -> None:
        self.stall_cycles[(router, port)] += 1

    def routing_blocked(self, router: Address) -> None:
        self.blocked_routings[router] += 1

    def connection_opened(self, router: Address) -> None:
        self.connections_opened[router] += 1

    def connection_closed(self, router: Address) -> None:
        self.connections_closed[router] += 1

    def packet_injected(self, packet: Packet) -> None:
        """Record an injection; remember its cycle for latency matching.

        A delivered packet is a fresh object reassembled from flits, so the
        injection stamp cannot ride along.  Packets are matched FIFO on
        (target, payload) — identical concurrent packets are
        interchangeable for latency purposes.
        """
        self._packets_injected.inc()
        key = (packet.target, tuple(packet.payload))
        self._in_flight.setdefault(key, []).append(packet.injected_cycle)

    def packet_delivered(self, packet: Packet, at: Address) -> None:
        self._packets_delivered.inc()
        self._delivered_flits.inc(packet.size_flits)
        key = (packet.target, tuple(packet.payload))
        pending = self._in_flight.get(key)
        if pending:
            packet.injected_cycle = pending.pop(0)
            if not pending:
                # drop the empty list: long runs with many distinct
                # payloads must not accumulate dead keys
                del self._in_flight[key]
        else:
            self._unmatched.inc()
        if packet.latency is not None:
            self._latency.record(packet.latency)

    # -- in-flight bookkeeping ---------------------------------------------

    @property
    def in_flight_count(self) -> int:
        """Injected packets whose delivery has not (yet) been matched."""
        return sum(len(stamps) for stamps in self._in_flight.values())

    @property
    def flits_moved_total(self) -> int:
        """Total flit handshakes observed (received + sent, all ports).

        A strictly monotone activity counter: health watchdogs compare
        successive readings to detect a network that stopped moving.
        """
        return sum(self.flits_received.values()) + sum(self.flits_sent.values())

    def per_router_movement(self) -> Dict[Address, int]:
        """Per-router flit handshake totals (received + sent).

        Sampled periodically by the health monitor to maintain the
        "last-movement cycle per router" diagnostic.
        """
        totals: Dict[Address, int] = {}
        for (addr, _), count in self.flits_received.items():
            totals[addr] = totals.get(addr, 0) + count
        for (addr, _), count in self.flits_sent.items():
            totals[addr] = totals.get(addr, 0) + count
        return totals

    def oldest_in_flight(self) -> Optional[Tuple[int, tuple]]:
        """(injection cycle, match key) of the oldest undelivered packet.

        The match key is ``(target, payload_tuple)``; ``None`` when no
        stamped packet is in flight.  Drives the packet-age starvation
        watchdog.
        """
        best: Optional[Tuple[int, tuple]] = None
        for key, stamps in self._in_flight.items():
            for stamp in stamps:
                if stamp is None:
                    continue
                if best is None or stamp < best[0]:
                    best = (stamp, key)
        return best

    @property
    def packets_dropped(self) -> int:
        """Stamps pruned as undeliverable (lost regions, dead endpoints)."""
        return self._pruned.value

    @property
    def unmatched_deliveries(self) -> int:
        """Deliveries that found no injection stamp to pair with."""
        return self._unmatched.value

    def prune_in_flight(self, older_than_cycle: int) -> int:
        """Drop stamps injected before *older_than_cycle*; returns count.

        Packets that will never be delivered (their target detached, the
        payload lost to reconfiguration) would otherwise pin their
        injection stamps forever.  Stress harnesses call this
        periodically with a horizon well past the worst-case latency.
        """
        dropped = 0
        for key in list(self._in_flight):
            stamps = self._in_flight[key]
            kept = [
                s for s in stamps if s is None or s >= older_than_cycle
            ]
            dropped += len(stamps) - len(kept)
            if kept:
                self._in_flight[key] = kept
            else:
                del self._in_flight[key]
        if dropped:
            self._pruned.inc(dropped)
        return dropped

    # -- aggregates ---------------------------------------------------------

    @property
    def packets_injected(self) -> int:
        return self._packets_injected.value

    @property
    def packets_delivered(self) -> int:
        return self._packets_delivered.value

    @property
    def delivered_flits(self) -> int:
        return self._delivered_flits.value

    @property
    def average_latency(self) -> float:
        """Mean injection-to-delivery latency in clock cycles."""
        return self._latency.mean

    @property
    def max_latency(self) -> int:
        return int(self._latency.max)

    def latency_summary(self) -> Dict[str, float]:
        """count/mean/min/max/p50/p90/p99 of the latency distribution."""
        return self._latency.summary()

    def router_flits_sent(self, router: Address) -> int:
        """Total flits a router pushed out across all its ports."""
        return sum(
            count for (addr, _), count in self.flits_sent.items() if addr == router
        )

    def accepted_throughput(self, cycles: int) -> float:
        """Delivered payload in flits per cycle over *cycles*."""
        if cycles <= 0:
            return 0.0
        return self.delivered_flits / cycles

    def link_load(self, router: Address, port: int, cycles: int) -> float:
        """Utilisation of one output link in [0, 1] (1.0 = the 2-cycle
        handshake bound: one flit every two cycles)."""
        if cycles <= 0:
            return 0.0
        return self.flits_sent[(router, port)] * 2 / cycles

    def utilisation_grid(
        self, width: int, height: int, cycles: int, ports: int = 5
    ):
        """Per-router total output utilisation, as a [y][x] grid.

        *ports* is the per-router port count (5 for mesh/torus; pass
        ``topology.router_ports`` for concentrated fabrics)."""
        grid = []
        for y in range(height):
            row = []
            for x in range(width):
                total = sum(
                    self.link_load((x, y), port, cycles)
                    for port in range(ports)
                )
                row.append(total)
            grid.append(row)
        return grid

    def heatmap(
        self, width: int, height: int, cycles: int, ports: int = 5
    ) -> str:
        """ASCII traffic heatmap of the fabric (top row = highest y)."""
        grid = self.utilisation_grid(width, height, cycles, ports=ports)
        peak = max((v for row in grid for v in row), default=0.0) or 1.0
        ramp = " .:-=+*#%@"
        lines = []
        for y in reversed(range(height)):
            cells = []
            for x in range(width):
                level = int(grid[y][x] / peak * (len(ramp) - 1))
                cells.append(ramp[level] * 3)
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def router_throughput_bps(
        self, router: Address, cycles: int, clock_hz: float
    ) -> float:
        """A single router's aggregate bandwidth in bits per second.

        At 50 MHz with 8-bit flits and the 2-cycle handshake each port
        moves 200 Mbit/s, so a fully loaded five-port router reaches the
        paper's 1 Gbit/s peak figure.
        """
        if cycles <= 0:
            return 0.0
        flits = self.router_flits_sent(router)
        return flits * FLIT_BITS * clock_hz / cycles
