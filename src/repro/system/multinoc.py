"""The MultiNoC system top level (paper Figure 1).

Wires the Hermes mesh, the Serial IP, the Processor IPs and the Memory
IPs into one simulatable component, exposing exactly the paper's
external interface: ``reset`` (the kernel's reset), ``clock`` (the
kernel's step), and the serial ``tx``/``rx`` lines to the host.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..memory.memory_ip import MemoryIp
from ..noc.flit import encode_address
from ..noc.mesh import Mesh
from ..noc.stats import NetworkStats
from ..serial.serial_ip import SerialIp
from ..sim import Component, Simulator, Wire
from .address_map import AddressMap
from .config import SystemConfig
from .processor_ip import ProcessorIp

Address = Tuple[int, int]


class MultiNoC(Component):
    """A complete MultiNoC instance built from a :class:`SystemConfig`."""

    def __init__(self, config: Optional[SystemConfig] = None, telemetry=None):
        config = config if config is not None else SystemConfig.paper()
        config.validate()
        super().__init__("multinoc")
        self.config = config
        self.telemetry = telemetry
        registry = telemetry.metrics if telemetry is not None else None
        self.stats = NetworkStats(registry=registry)

        self.topology = config.topology_plugin()
        self.mesh = Mesh(
            buffer_depth=config.buffer_depth,
            routing_cycles=config.routing_cycles,
            stats=self.stats,
            topology=self.topology,
        )
        self.add_child(self.mesh)

        # External serial lines (RS-232 idles high -> reset=1).
        self.rxd = Wire("multinoc.rxd", reset=1, width=1)  # host -> board
        self.txd = Wire("multinoc.txd", reset=1, width=1)  # board -> host

        self.serial = SerialIp(
            "serial",
            config.serial,
            rxd=self.rxd,
            txd=self.txd,
            tx_divisor=config.uart_divisor,
            stats=self.stats,
        )
        self._attach(self.serial.ni, config.serial)
        self.add_child(self.serial)

        id_to_flit = config.id_to_flit()
        self.processors: Dict[int, ProcessorIp] = {}
        for pid, addr in sorted(config.processors.items()):
            amap = self._build_address_map(pid)
            proc = ProcessorIp(
                f"proc{pid}",
                addr,
                proc_id=pid,
                address_map=amap,
                id_to_flit=id_to_flit,
                serial_flit=config.serial_flit(),
                local_words=config.local_words,
                stats=self.stats,
            )
            self._attach(proc.ni, addr)
            self.processors[pid] = proc
            self.add_child(proc)

        self.memories: List[MemoryIp] = []
        for i, addr in enumerate(config.memories):
            mem = MemoryIp(
                f"mem{i}", addr, depth=config.local_words, stats=self.stats
            )
            self._attach(mem.ni, addr)
            self.memories.append(mem)
            self.add_child(mem)

        if telemetry is not None:
            self.attach_telemetry(telemetry)

    # -- telemetry -----------------------------------------------------------

    def attach_telemetry(self, sink) -> None:
        """Enable event hooks on every router, NI, CPU and the Serial IP."""
        self.telemetry = sink
        self.mesh.attach_telemetry(sink)
        self.serial.attach_telemetry(sink)
        for proc in self.processors.values():
            proc.attach_telemetry(sink)
        for mem in self.memories:
            sink.track(mem.ni.name, process="noc")
            mem.ni.sink = sink

    def flush_telemetry(self) -> int:
        """Flush deferred telemetry (CPU PC samples) into the sink.

        Call once after a run, before exporting the trace; returns the
        number of sample buckets emitted.  Safe to call with telemetry
        disabled (returns 0).
        """
        if self.telemetry is None:
            return 0
        return sum(
            proc.cpu.flush_pc_samples() for proc in self.processors.values()
        )

    def attach_health(self, monitor, sim, host=None):
        """Wire a :class:`~repro.telemetry.health.HealthMonitor` to this
        system and *sim*; returns the monitor for chaining."""
        return monitor.attach(sim, self, host=host)

    def network_interfaces(self) -> List:
        """Every NI attached to the mesh (serial, processors, memories)."""
        nis = [self.serial.ni]
        nis += [p.ni for p in self.processors.values()]
        nis += [m.ni for m in self.memories]
        return nis

    # -- construction helpers ------------------------------------------------

    def _attach(self, ni, addr: Address) -> None:
        into, out = self.mesh.local_channels(addr)
        ni.attach(to_router=into, from_router=out)

    def _build_address_map(self, pid: int) -> AddressMap:
        """Figure 6's map, generalised: after local memory come windows
        for every *other* processor (by id) and then every Memory IP.

        The 16-bit address space caps how many remote windows fit below
        the FFFD-FFFF control cells.  When every window fits, the layout
        is exactly the id-ordered one of the seed; when the system is
        too big (the paper's hundred-IP argument) the Memory IPs and the
        peers *nearest in id order* get the windows and the rest are
        reached by message services instead.
        """
        config = self.config
        amap = AddressMap(config.local_words)
        # paper alignment: windows are 1K apart even if local_words < 1024
        step = max(config.local_words, 1024)
        base = step
        limit = 0xFFFD
        capacity = max(0, (limit - config.local_words - base) // step + 1)

        targets = [
            addr
            for other_pid, addr in sorted(config.processors.items())
            if other_pid != pid
        ] + list(config.memories)
        if len(targets) > capacity:
            near = sorted(
                (
                    (other_pid, addr)
                    for other_pid, addr in config.processors.items()
                    if other_pid != pid
                ),
                key=lambda pa: (abs(pa[0] - pid), pa[0]),
            )
            targets = list(config.memories) + [addr for _, addr in near]

        for addr in targets:
            if base + config.local_words > limit:
                break
            amap.add_window(base, config.local_words, encode_address(*addr))
            base += step
        return amap

    def numa_base(self, pid: int, target) -> Optional[int]:
        """Base address of *pid*'s NUMA window onto *target*.

        *target* is a peer processor id, a ``"memN"`` string, or an
        ``(x, y)`` node address; returns ``None`` when the window did
        not fit the 16-bit address space (see :meth:`_build_address_map`).
        """
        config = self.config
        if isinstance(target, int):
            addr = config.processors[target]
        elif isinstance(target, str) and target.startswith("mem"):
            addr = config.memories[int(target[3:] or "0")]
        else:
            addr = tuple(target)
        flit = encode_address(*addr)
        for window in self.processors[pid].address_map.windows:
            if window.target_flit == flit:
                return window.base
        return None

    # -- checkpointing -------------------------------------------------------

    def snapshot_state(self) -> dict:
        # the shared NetworkStats is system-level state (latency matching
        # keys in-flight packets); routers/NIs only hold references to it
        return {"stats": self.stats.snapshot()}

    def restore_state(self, state: dict) -> None:
        self.stats.restore(state["stats"])

    # -- convenience -------------------------------------------------------------

    def processor(self, pid: int) -> ProcessorIp:
        return self.processors[pid]

    def memory(self, index: int = 0) -> MemoryIp:
        return self.memories[index]

    @property
    def idle(self) -> bool:
        """No in-flight NoC traffic, serial activity or pending CPU stalls."""
        return (
            self.mesh.idle
            and not self.serial.busy
            and all(
                not p.ni.tx_busy and p.server_idle
                for p in self.processors.values()
            )
            and all(not m.noc_busy for m in self.memories)
        )

    @property
    def all_halted(self) -> bool:
        return all(p.cpu.halted for p in self.processors.values())

    def make_simulator(self, strict_lockstep: bool = False) -> Simulator:
        sim = Simulator(
            clock_hz=self.config.clock_hz, strict_lockstep=strict_lockstep
        )
        sim.add(self)
        return sim
