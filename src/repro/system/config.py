"""System configuration for MultiNoC instances.

The paper's prototype is fixed (2x2 mesh, two processors, one remote
memory, one serial IP), but "the approach can be extended to any number
of processor IPs and/or memory IPs, using the natural scalability of
NoCs" — so the configuration is data, not code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..noc.flit import encode_address

Address = Tuple[int, int]


@dataclass
class SystemConfig:
    """Placement and parameters of one MultiNoC instance.

    ``processors`` maps processor id (1, 2, ...) to its router address;
    ``memories`` lists remote Memory IP addresses; ``serial`` places the
    Serial IP (id 0 in the wait/notify numbering, by convention).
    """

    mesh: Tuple[int, int] = (2, 2)
    #: optional topology spec ("mesh:4x4", "torus:8x8", "cmesh:4x4x2");
    #: ``None`` keeps a plain mesh of ``mesh``'s dimensions.  When set,
    #: :meth:`validate` re-derives ``mesh`` as the plugin's router grid.
    topology: Optional[str] = None
    serial: Address = (0, 0)
    processors: Dict[int, Address] = field(
        default_factory=lambda: {1: (0, 1), 2: (1, 0)}
    )
    memories: List[Address] = field(default_factory=lambda: [(1, 1)])
    local_words: int = 1024
    buffer_depth: int = 2
    routing_cycles: int = 7
    uart_divisor: int = 4
    clock_hz: float = 25_000_000.0  # 50 MHz board clock after the clkdll /2

    def topology_plugin(self):
        """The :class:`~repro.noc.topology.Topology` this config describes.

        Parses :attr:`topology` (raising
        :class:`~repro.noc.topology.TopologyError` on a bad spec — the
        config-parse-time validation) or falls back to a mesh of
        :attr:`mesh`'s dimensions.
        """
        from ..noc.topology import parse_topology

        if self.topology is None:
            return parse_topology(tuple(self.mesh))
        return parse_topology(self.topology)

    def validate(self) -> None:
        topo = self.topology_plugin()  # parse-time topology validation
        self.mesh = (topo.width, topo.height)
        width, height = self.mesh
        nodes = set(topo.nodes())
        occupied: Dict[Address, str] = {}

        def place(addr: Address, what: str) -> None:
            if tuple(addr) not in nodes:
                if topo.kind == "mesh":
                    raise ValueError(
                        f"{what} at {addr} outside {width}x{height} mesh"
                    )
                raise ValueError(
                    f"{what} at {addr} is not a node of {topo.spec}"
                )
            if addr in occupied:
                raise ValueError(
                    f"{what} at {addr} collides with {occupied[addr]}"
                )
            occupied[addr] = what

        place(self.serial, "serial IP")
        for pid, addr in self.processors.items():
            if pid <= 0:
                raise ValueError("processor ids start at 1 (0 is the host/serial)")
            place(addr, f"processor {pid}")
        for i, addr in enumerate(self.memories):
            place(addr, f"memory {i}")

    # -- derived tables --------------------------------------------------------

    def id_to_flit(self) -> Dict[int, int]:
        """wait/notify numbering: 0 = serial/host, 1.. = processors."""
        table = {0: encode_address(*self.serial)}
        for pid, addr in self.processors.items():
            table[pid] = encode_address(*addr)
        return table

    def serial_flit(self) -> int:
        return encode_address(*self.serial)

    @classmethod
    def paper(cls) -> "SystemConfig":
        """The exact configuration prototyped on the Spartan-IIe
        (Figure 1: serial at 00, processors at 01 and 10, memory at 11)."""
        return cls()
