"""The Processor IP core (paper Section 2.4, Figure 5).

One Processor IP bundles an R8 core, its 1K-word local memory (four
BlockRAM nibble banks) and the control logic gluing both to a single
Hermes network interface.  The control logic:

* decodes R8 load/store addresses (local / other processor / remote
  memory / I/O / wait / notify) per the address map,
* turns remote accesses into NoC service packets, stalling the core
  until completion (the ``waitR8`` mechanism — a pending bus
  transaction),
* serves incoming read/write packets against the local memory with
  *lower* priority than the core ("The highest priority to access the
  memory banks is given to the processor"),
* handles activate / notify / wait packets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..memory.blockram import MemoryBanks
from ..noc import services
from ..noc.flit import decode_address, encode_address
from ..noc.ni import NetworkInterface
from ..noc.packet import Packet
from ..r8.bus import Transaction
from ..r8.cpu import R8Cpu
from ..sim import Component
from .address_map import Access, AccessKind, AddressMap

_SRV_IDLE = 0
_SRV_WRITING = 1
_SRV_READING = 2


class ProcessorIp(Component):
    """R8 core + local memory + NoC control logic.

    Parameters
    ----------
    proc_id:
        The processor number used by wait/notify ("the number of the
        processor that will be restarted").
    id_to_flit:
        Registry mapping processor/IP numbers to NoC header flits, shared
        across the system (wait/notify address peers by number).
    serial_flit:
        Header flit of the Serial IP, the printf/scanf endpoint.
    """

    def __init__(
        self,
        name: str,
        address: Tuple[int, int],
        proc_id: int,
        address_map: AddressMap,
        id_to_flit: Dict[int, int],
        serial_flit: int,
        local_words: int = 1024,
        stats=None,
    ):
        super().__init__(name)
        self.noc_address = address
        self.proc_id = proc_id
        self.address_map = address_map
        self.id_to_flit = id_to_flit
        self.serial_flit = serial_flit

        self.banks = MemoryBanks(local_words)
        self.cpu = R8Cpu(f"{name}.r8", bus=self)
        self.ni = NetworkInterface(f"{name}.ni", address, stats=stats)
        self.add_child(self.cpu)
        self.add_child(self.ni)

        # outstanding remote transaction issued by the core
        self._pending: Optional[Transaction] = None
        self._pending_kind: Optional[AccessKind] = None
        self._wait_source: Optional[int] = None
        # buffered notifies (a notify may land before the wait executes)
        self._notify_counts: Dict[int, int] = {}
        # local-memory packet server
        self._srv_state = _SRV_IDLE
        self._srv_addr = 0
        self._srv_words: List[int] = []
        self._srv_remaining = 0
        self._srv_reply_to: Optional[int] = None
        self._srv_backlog: List = []
        self._proc_mem_used = False
        self.dropped_packets: List[Packet] = []
        self.activations = 0
        #: symbol table of the last program loaded into this processor
        #: (name -> address), stashed by the host loader so the
        #: post-mortem profiler can resolve PC samples; None until then.
        self.symbols: Optional[Dict[str, int]] = None
        #: optional TelemetrySink; hooks are behind one None-check each
        self.sink = None
        self._now = 0
        self._wait_start: Optional[int] = None
        self._remote_start = 0
        self._scanf_start = 0

    # ======================= telemetry =====================================

    def attach_telemetry(self, sink) -> None:
        """Register tracks for this IP, its core and its NI; enable hooks."""
        self.sink = sink
        sink.track(self.name, process="cpu")
        sink.track(self.cpu.name, process="cpu")
        self.cpu.sink = sink
        self.cpu.enable_pc_sampling()
        sink.track(self.ni.name, process="noc")
        self.ni.sink = sink
        metrics = sink.metrics
        for stat in ("instructions_retired", "cycles_active", "cycles_stalled"):
            metrics.gauge(
                f"cpu_{self.proc_id}_{stat}", f"R8 core {stat}"
            ).set_function(lambda cpu=self.cpu, s=stat: getattr(cpu, s))

    # ================= MemoryBus protocol (called by the R8 core) ==========

    def fetch(self, addr: int) -> int:
        """Instruction fetch: always from local memory, processor priority.

        Uses the hook-free ``fetch_word`` path so debugger data
        watchpoints never fire on instruction streaming.
        """
        self._proc_mem_used = True
        return self.banks.fetch_word(addr % self.banks.depth)

    def read(self, addr: int) -> Transaction:
        access = self.address_map.classify(addr)
        txn = Transaction(False, addr)
        if access.kind == AccessKind.LOCAL:
            self._proc_mem_used = True
            txn.complete(self.banks.read_word(access.offset))
        elif access.kind == AccessKind.REMOTE:
            self.ni.send_packet(
                services.encode_read(
                    decode_address(access.target_flit),
                    encode_address(*self.noc_address),
                    access.offset,
                    1,
                )
            )
            self._pending = txn
            self._pending_kind = AccessKind.REMOTE
            if self.sink is not None:
                self._remote_start = self._now
        elif access.kind == AccessKind.IO:
            # LD from FFFF = scanf (paper Section 2.4, I/O Operations)
            self.ni.send_packet(
                services.encode_scanf(
                    decode_address(self.serial_flit), self.proc_id
                )
            )
            self._pending = txn
            self._pending_kind = AccessKind.IO
            if self.sink is not None:
                self._scanf_start = self._now
        else:
            raise RuntimeError(
                f"{self.name}: load from invalid address {addr:#06x} "
                f"({access.kind.value})"
            )
        return txn

    def write(self, addr: int, value: int) -> Transaction:
        access = self.address_map.classify(addr)
        txn = Transaction(True, addr, value)
        if access.kind == AccessKind.LOCAL:
            self._proc_mem_used = True
            self.banks.write_word(access.offset, value)
            txn.complete()
        elif access.kind == AccessKind.REMOTE:
            self.ni.send_packet(
                services.encode_write(
                    decode_address(access.target_flit), access.offset, [value]
                )
            )
            self._pending = txn
            self._pending_kind = AccessKind.REMOTE
        elif access.kind == AccessKind.IO:
            # ST to FFFF = printf
            self.ni.send_packet(
                services.encode_printf(
                    decode_address(self.serial_flit), self.proc_id, [value]
                )
            )
            self._pending = txn
            self._pending_kind = AccessKind.IO
            if self.sink is not None:
                self.sink.instant(self.name, "printf", self._now, value=value)
        elif access.kind == AccessKind.NOTIFY:
            # ST to FFFD: wake processor number <value>
            peer = self._peer_flit(value)
            self.ni.send_packet(
                services.encode_notify(decode_address(peer), self.proc_id)
            )
            self._pending = txn
            self._pending_kind = AccessKind.NOTIFY
            if self.sink is not None:
                self.sink.instant(self.name, "notify_send", self._now, to=value)
        elif access.kind == AccessKind.WAIT:
            # ST to FFFE: block until notify from processor number <value>
            if self._consume_notify(value):
                txn.complete()
                if self.sink is not None:
                    self.sink.complete(self.name, "wait", self._now, 0, on=value)
            else:
                self._pending = txn
                self._pending_kind = AccessKind.WAIT
                self._wait_source = value
                if self.sink is not None:
                    self._wait_start = self._now
        else:
            raise RuntimeError(
                f"{self.name}: store to invalid address {addr:#06x}"
            )
        return txn

    def _peer_flit(self, proc_id: int) -> int:
        try:
            return self.id_to_flit[proc_id]
        except KeyError as exc:
            raise RuntimeError(
                f"{self.name}: wait/notify names unknown processor {proc_id}"
            ) from exc

    def _consume_notify(self, source: int) -> bool:
        count = self._notify_counts.get(source, 0)
        if count > 0:
            self._notify_counts[source] = count - 1
            return True
        return False

    # ======================= simulation ========================================

    def eval(self, cycle: int) -> None:
        if self.sink is not None:
            self._now = cycle
        # cpu first (bus calls), then ni; inlined from the generic
        # child walk — these are the IP's only children and this call
        # chain runs every active cycle.
        self.cpu.eval(cycle)
        self.ni.eval(cycle)
        self._complete_posted_ops()
        self._handle_incoming(cycle)
        self._serve_local_memory()
        self._proc_mem_used = False

    def is_quiescent(self) -> bool:
        """The whole IP sleeps only when the core cannot advance on its
        own (halted, paused, or stalled on an external transaction), the
        NI is idle with nothing undelivered, the local-memory server has
        no work, and no posted operation is waiting to complete.  Every
        possible resume path is covered by a wake: incoming flits wake
        the NI's watched wires, and local completions keep the unit awake
        until they land."""
        if not self.cpu.sleepable:
            return False
        if self._srv_state != _SRV_IDLE or self._srv_backlog:
            return False
        p = self._pending
        if p is not None and not p.done:
            k = self._pending_kind
            if k == AccessKind.NOTIFY or (
                k in (AccessKind.REMOTE, AccessKind.IO) and p.is_write
            ):
                # fire-and-forget: completes locally on a later eval
                return False
        ni = self.ni
        return not ni.received and ni.is_quiescent()

    def on_wake(self, skipped_cycles: int) -> None:
        """Credit the skipped idle evals to the core's stall counters."""
        self.cpu.credit_idle_cycles(skipped_cycles)

    def reset(self) -> None:
        super().reset()
        self._pending = None
        self._pending_kind = None
        self._wait_source = None
        self._notify_counts = {}
        self._srv_state = _SRV_IDLE
        self._srv_words = []
        self._srv_remaining = 0
        self._srv_backlog = []
        self._proc_mem_used = False
        self.dropped_packets = []
        self.activations = 0
        self._wait_start = None

    # -- posted operations (writes, printf, notify) complete on injection ----

    def _complete_posted_ops(self) -> None:
        if self._pending is None or self._pending.done:
            return
        fire_and_forget = (
            self._pending_kind == AccessKind.NOTIFY
            or (self._pending_kind == AccessKind.REMOTE and self._pending.is_write)
            or (self._pending_kind == AccessKind.IO and self._pending.is_write)
        )
        if fire_and_forget and not self.ni.tx_busy:
            self._pending.complete()
            self._clear_pending()

    def _clear_pending(self) -> None:
        self._pending = None
        self._pending_kind = None
        self._wait_source = None

    # -- incoming service packets ------------------------------------------------

    def _handle_incoming(self, cycle: int) -> None:
        while self.ni.has_received():
            packet = self.ni.pop_received()
            try:
                message = services.decode(packet)
            except services.ServiceError:
                self.dropped_packets.append(packet)
                continue
            if isinstance(message, services.Activate):
                self.cpu.activate()
                self.activations += 1
                if self.sink is not None:
                    self.sink.instant(self.name, "activate_packet", cycle)
            elif isinstance(message, services.ReadReturn):
                self._complete_read(message.words)
            elif isinstance(message, services.ScanfReturn):
                self._complete_scanf(message.value)
            elif isinstance(message, services.Notify):
                self._handle_notify(message.source)
            elif isinstance(message, services.Wait):
                # the wait *packet* service: park the core until notified
                self.cpu.paused = True
                self._wait_source = message.source
            elif isinstance(message, (services.ReadRequest, services.WriteRequest)):
                self._enqueue_memory_op(message)
            else:
                self.dropped_packets.append(packet)

    def _complete_read(self, words: List[int]) -> None:
        if (
            self._pending is None
            or self._pending.is_write
            or self._pending_kind != AccessKind.REMOTE
        ):
            raise RuntimeError(f"{self.name}: unexpected read return")
        self._pending.complete(words[0] if words else 0)
        self._clear_pending()
        if self.sink is not None:
            self.sink.complete(
                self.name,
                "remote_read",
                self._remote_start,
                self._now - self._remote_start,
            )

    def _complete_scanf(self, value: int) -> None:
        if (
            self._pending is None
            or self._pending.is_write
            or self._pending_kind != AccessKind.IO
        ):
            raise RuntimeError(f"{self.name}: unexpected scanf return")
        self._pending.complete(value)
        self._clear_pending()
        if self.sink is not None:
            self.sink.complete(
                self.name,
                "scanf",
                self._scanf_start,
                self._now - self._scanf_start,
                value=value,
            )

    def _handle_notify(self, source: int) -> None:
        if self.sink is not None:
            self.sink.instant(self.name, "notify_recv", self._now, source=source)
        # A blocked ST-to-FFFE waiting on this source?
        if (
            self._pending is not None
            and self._pending_kind == AccessKind.WAIT
            and self._wait_source == source
        ):
            self._pending.complete()
            self._clear_pending()
            if self.sink is not None and self._wait_start is not None:
                self.sink.complete(
                    self.name,
                    "wait",
                    self._wait_start,
                    self._now - self._wait_start,
                    on=source,
                )
                self._wait_start = None
            return
        # A wait *packet* pause?
        if self.cpu.paused and self._wait_source == source:
            self.cpu.paused = False
            self._wait_source = None
            return
        self._notify_counts[source] = self._notify_counts.get(source, 0) + 1

    # -- serving the local memory to the NoC ---------------------------------------

    def _enqueue_memory_op(self, message) -> None:
        if self._srv_state != _SRV_IDLE:
            # One operation at a time; hardware applies backpressure by
            # not consuming flits, we emulate with a tiny queue.
            self._srv_backlog.append(message)
            return
        self._start_memory_op(message)

    def _start_memory_op(self, message) -> None:
        if isinstance(message, services.WriteRequest):
            self._srv_state = _SRV_WRITING
            self._srv_addr = message.address
            self._srv_words = list(message.words)
        else:
            self._srv_state = _SRV_READING
            self._srv_addr = message.address
            self._srv_remaining = message.count
            self._srv_words = []
            self._srv_reply_to = message.reply_to

    def _serve_local_memory(self) -> None:
        if self._srv_state == _SRV_IDLE:
            if self._srv_backlog:
                self._start_memory_op(self._srv_backlog.pop(0))
            return
        if self._proc_mem_used:
            return  # processor has priority over the banks
        if self._srv_state == _SRV_WRITING:
            if self._srv_words:
                self.banks.write_word(
                    self._srv_addr % self.banks.depth, self._srv_words.pop(0)
                )
                self._srv_addr += 1
            if not self._srv_words:
                self._srv_state = _SRV_IDLE
        elif self._srv_state == _SRV_READING:
            if self._srv_remaining > 0:
                self._srv_words.append(
                    self.banks.read_word(
                        (self._srv_addr + len(self._srv_words)) % self.banks.depth
                    )
                )
                self._srv_remaining -= 1
                return
            assert self._srv_reply_to is not None
            self.ni.send_packet(
                services.encode_read_return(
                    decode_address(self._srv_reply_to),
                    self._srv_addr,
                    self._srv_words,
                )
            )
            self._srv_state = _SRV_IDLE
            self._srv_words = []

    # -- checkpointing -------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "mem": self.banks.dump(),
            # the pending transaction itself lives in the CPU snapshot
            # (self._pending aliases cpu._txn); record only the kind.
            "pending_kind": (
                self._pending_kind.value
                if self._pending_kind is not None
                else None
            ),
            "wait_source": self._wait_source,
            "notify_counts": sorted(
                [src, n] for src, n in self._notify_counts.items()
            ),
            "srv_state": self._srv_state,
            "srv_addr": self._srv_addr,
            "srv_words": list(self._srv_words),
            "srv_remaining": self._srv_remaining,
            "srv_reply_to": self._srv_reply_to,
            "srv_backlog": [
                services.message_to_state(m) for m in self._srv_backlog
            ],
            "proc_mem_used": self._proc_mem_used,
            "dropped": [p.to_state() for p in self.dropped_packets],
            "activations": self.activations,
            "symbols": self.symbols,
            "now": self._now,
            "wait_start": self._wait_start,
            "remote_start": self._remote_start,
            "scanf_start": self._scanf_start,
        }

    def restore_state(self, state: dict) -> None:
        self.banks.load(state["mem"])
        kind = state["pending_kind"]
        if kind is None:
            self._pending = None
            self._pending_kind = None
        else:
            # children restored first, so the CPU already rebuilt its
            # transaction object: re-link the alias (the IP completes the
            # very object the core is stalled on).
            self._pending = self.cpu._txn
            self._pending_kind = AccessKind(kind)
            if self._pending is None:
                raise RuntimeError(
                    f"{self.name}: pending {kind} access without a CPU "
                    f"transaction in the snapshot"
                )
        self._wait_source = state["wait_source"]
        self._notify_counts = {
            src: n for src, n in state["notify_counts"]
        }
        self._srv_state = state["srv_state"]
        self._srv_addr = state["srv_addr"]
        self._srv_words = list(state["srv_words"])
        self._srv_remaining = state["srv_remaining"]
        self._srv_reply_to = state["srv_reply_to"]
        self._srv_backlog = [
            services.message_from_state(m) for m in state["srv_backlog"]
        ]
        self._proc_mem_used = state["proc_mem_used"]
        self.dropped_packets = [
            Packet.from_state(p) for p in state["dropped"]
        ]
        self.activations = state["activations"]
        self.symbols = state["symbols"]
        self._now = state["now"]
        self._wait_start = state["wait_start"]
        self._remote_start = state["remote_start"]
        self._scanf_start = state["scanf_start"]

    @property
    def server_idle(self) -> bool:
        """True when no NoC-initiated local-memory operation is in flight."""
        return self._srv_state == _SRV_IDLE and not self._srv_backlog

    def probe_state(self) -> dict:
        """Cheap introspection snapshot for health monitoring/diagnostics."""
        cpu = self.cpu
        return {
            "proc_id": self.proc_id,
            "address": self.noc_address,
            "pc": cpu.state.pc,
            "fsm": cpu.fsm_state,
            "halted": cpu.halted,
            "paused": cpu.paused,
            "instructions_retired": cpu.instructions_retired,
            "pending": (
                self._pending_kind.value
                if self._pending_kind is not None
                else None
            ),
            "wait_source": self._wait_source,
            "ni": self.ni.probe_state(),
        }

    # -- debugging helpers -------------------------------------------------------------

    def load(self, words, base: int = 0) -> None:
        """Directly load words into local memory (testbench shortcut)."""
        self.banks.load(words, base)

    def dump(self, start: int = 0, count: Optional[int] = None) -> List[int]:
        return self.banks.dump(start, count)
