"""Processor address decoding (paper Figure 6 and Section 2.4).

The R8 sees one flat 16-bit address space; the Processor IP control
logic decodes it into:

* ``[0, 1024)``      — the local memory,
* ``[1024, 2048)``   — the *other* processor's memory (over the NoC),
* ``[2048, 3072)``   — the remote Memory IP (over the NoC),
* ``FFFDh``          — notify (store only),
* ``FFFEh``          — wait (store only),
* ``FFFFh``          — I/O: store = printf, load = scanf.

(The paper's Figure 6 prints ``globalAddress = 1024 - address``; the
prose makes clear the intended operation is ``address - 1024``, which is
what we implement.)

The map is data-driven so larger platforms (the paper's scalability
argument) can attach one window per extra IP.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

IO_ADDRESS = 0xFFFF
WAIT_ADDRESS = 0xFFFE
NOTIFY_ADDRESS = 0xFFFD


class AccessKind(Enum):
    LOCAL = "local"
    REMOTE = "remote"  # another IP's memory, reached over the NoC
    IO = "io"
    WAIT = "wait"
    NOTIFY = "notify"
    INVALID = "invalid"


@dataclass(frozen=True)
class Window:
    """A remote-memory window: addresses [base, base+size) map onto the
    IP whose NoC header flit is *target_flit*, at offset ``addr - base``."""

    base: int
    size: int
    target_flit: int


@dataclass(frozen=True)
class Access:
    """Decoded access: what kind, and where it lands."""

    kind: AccessKind
    offset: int = 0
    target_flit: Optional[int] = None


class AddressMap:
    """Figure 6's decoder, extensible with extra remote windows."""

    def __init__(self, local_size: int = 1024):
        self.local_size = local_size
        self.windows: List[Window] = []

    def add_window(self, base: int, size: int, target_flit: int) -> None:
        for w in self.windows:
            if base < w.base + w.size and w.base < base + size:
                raise ValueError(
                    f"window [{base:#x},{base + size:#x}) overlaps "
                    f"[{w.base:#x},{w.base + w.size:#x})"
                )
        if base < self.local_size:
            raise ValueError("remote window overlaps local memory")
        self.windows.append(Window(base, size, target_flit))

    def classify(self, addr: int) -> Access:
        if not 0 <= addr <= 0xFFFF:
            raise ValueError(f"address {addr!r} out of 16-bit range")
        if addr == IO_ADDRESS:
            return Access(AccessKind.IO)
        if addr == WAIT_ADDRESS:
            return Access(AccessKind.WAIT)
        if addr == NOTIFY_ADDRESS:
            return Access(AccessKind.NOTIFY)
        if addr < self.local_size:
            return Access(AccessKind.LOCAL, offset=addr)
        for w in self.windows:
            if w.base <= addr < w.base + w.size:
                return Access(
                    AccessKind.REMOTE, offset=addr - w.base, target_flit=w.target_flit
                )
        return Access(AccessKind.INVALID)


def standard_map(
    other_proc_flit: int, remote_mem_flit: int, local_size: int = 1024
) -> AddressMap:
    """The exact MultiNoC map of Figure 6 for one of the two processors."""
    amap = AddressMap(local_size)
    amap.add_window(1024, 1024, other_proc_flit)
    amap.add_window(2048, 1024, remote_mem_flit)
    return amap
