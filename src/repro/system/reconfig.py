"""Partial and dynamic reconfiguration (paper Section 5).

"One of the current research foci is on partial and dynamic
reconfiguration applied to the MultiNoC system.  Partial and dynamic
reconfiguration allows, for example, that the IP cores position be
modified in execution at run-time, favoring the IPs communication with
improved throughput.  Reconfiguration can also be used to reduce system
area consumption through insertion and removal of IP cores on demand."

This module models both uses on the running simulation:

* :meth:`ReconfigurationManager.relocate` — move a processor or memory
  IP to a free mesh node (shorter XY paths => lower NUMA latency),
* :meth:`ReconfigurationManager.swap` — exchange two IP positions,
* :meth:`ReconfigurationManager.remove_memory` /
  :meth:`insert_memory` — on-demand insertion/removal, with the area
  model quantifying the saved slices.

Like real partial reconfiguration, operations require the fabric to be
quiescent (no in-flight flits through the affected region): the manager
refuses to reconfigure while the network holds traffic.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..memory.memory_ip import MemoryIp
from ..noc.flit import encode_address
from .multinoc import MultiNoC
from .processor_ip import ProcessorIp

Address = Tuple[int, int]


class ReconfigError(Exception):
    """Illegal reconfiguration request."""


class ReconfigurationManager:
    """Run-time placement changes for a live MultiNoC instance."""

    def __init__(self, system: MultiNoC):
        self.system = system
        self.reconfigurations = 0

    # -- helpers ------------------------------------------------------------

    def _occupied(self) -> Dict[Address, str]:
        config = self.system.config
        table: Dict[Address, str] = {config.serial: "serial"}
        for pid, addr in config.processors.items():
            table[addr] = f"proc{pid}"
        for i, addr in enumerate(config.memories):
            table[addr] = f"mem{i}"
        return table

    def _require_quiescent(self) -> None:
        if not self.system.mesh.idle:
            raise ReconfigError(
                "network not quiescent: reconfiguration with in-flight "
                "flits would corrupt wormholes"
            )

    def _check_target(self, new_addr: Address) -> None:
        width, height = self.system.config.mesh
        x, y = new_addr
        if not (0 <= x < width and 0 <= y < height):
            raise ReconfigError(f"{new_addr} is outside the mesh")
        holder = self._occupied().get(new_addr)
        if holder is not None:
            raise ReconfigError(f"{new_addr} is occupied by {holder}")

    def _move_ni(self, ip, new_addr: Address) -> None:
        """Re-wire an IP's network interface onto another Local port."""
        into, out = self.system.mesh.local_channels(new_addr)
        ip.ni.detach()
        ip.ni.attach(to_router=into, from_router=out)
        ip.ni.address = new_addr
        ip.noc_address = new_addr

    def _rebuild_address_maps(self) -> None:
        """Placement changed: regenerate every Figure 6 decoder and the
        wait/notify peer table in place (it is shared by reference)."""
        system = self.system
        id_to_flit = system.config.id_to_flit()
        for pid, proc in system.processors.items():
            proc.address_map = system._build_address_map(pid)
            proc.id_to_flit.clear()
            proc.id_to_flit.update(id_to_flit)

    # -- operations -----------------------------------------------------------

    def relocate(self, ip_name: str, new_addr: Address) -> None:
        """Move ``procN``/``memN`` to a free node.

        The serial IP is not relocatable: its pads are fixed on the die
        (Figure 7 places it next to the I/O pins for that reason).
        """
        self._require_quiescent()
        self._check_target(new_addr)
        system = self.system
        if ip_name.startswith("proc"):
            pid = int(ip_name[4:])
            if pid not in system.processors:
                raise ReconfigError(f"no such processor {ip_name!r}")
            self._move_ni(system.processors[pid], new_addr)
            system.config.processors[pid] = new_addr
        elif ip_name.startswith("mem"):
            index = int(ip_name[3:] or "0")
            if not 0 <= index < len(system.memories):
                raise ReconfigError(f"no such memory {ip_name!r}")
            self._move_ni(system.memories[index], new_addr)
            system.config.memories[index] = new_addr
        elif ip_name == "serial":
            raise ReconfigError("the serial IP is bonded to its I/O pads")
        else:
            raise ReconfigError(f"unknown IP {ip_name!r}")
        self._rebuild_address_maps()
        self.reconfigurations += 1

    def swap(self, ip_a: str, ip_b: str) -> None:
        """Exchange the positions of two relocatable IPs."""
        occupied = {name: addr for addr, name in self._occupied().items()}
        if ip_a not in occupied or ip_b not in occupied:
            raise ReconfigError(f"unknown IPs {ip_a!r}/{ip_b!r}")
        addr_a, addr_b = occupied[ip_a], occupied[ip_b]
        width, height = self.system.config.mesh
        # a temporary free slot is not needed: relocate in three steps via
        # direct rewiring (both NIs detach before reattaching).
        self._require_quiescent()
        if "serial" in (ip_a, ip_b):
            raise ReconfigError("the serial IP is bonded to its I/O pads")
        a = self._ip_by_name(ip_a)
        b = self._ip_by_name(ip_b)
        a.ni.detach()
        b.ni.detach()
        self._place(ip_a, a, addr_b)
        self._place(ip_b, b, addr_a)
        self._rebuild_address_maps()
        self.reconfigurations += 1

    def _ip_by_name(self, name: str):
        if name.startswith("proc"):
            return self.system.processors[int(name[4:])]
        return self.system.memories[int(name[3:] or "0")]

    def _place(self, name: str, ip, addr: Address) -> None:
        into, out = self.system.mesh.local_channels(addr)
        ip.ni.attach(to_router=into, from_router=out)
        ip.ni.address = addr
        ip.noc_address = addr
        if name.startswith("proc"):
            self.system.config.processors[int(name[4:])] = addr
        else:
            self.system.config.memories[int(name[3:] or "0")] = addr

    def remove_memory(self, index: int = 0) -> MemoryIp:
        """Remove a Memory IP on demand; returns it (state preserved).

        The freed node's Local port goes silent; the area model's view of
        the configuration shrinks accordingly.
        """
        self._require_quiescent()
        system = self.system
        if not 0 <= index < len(system.memories):
            raise ReconfigError(f"no memory {index}")
        mem = system.memories.pop(index)
        system.config.memories.pop(index)
        mem.ni.detach()
        system.remove_child(mem)
        self._rebuild_address_maps()
        self.reconfigurations += 1
        return mem

    def insert_memory(self, addr: Address, depth: int = 1024) -> MemoryIp:
        """Insert a fresh Memory IP at a free node, at run time."""
        self._require_quiescent()
        self._check_target(addr)
        system = self.system
        index = len(system.memories)
        mem = MemoryIp(f"mem{index}", addr, depth=depth, stats=system.stats)
        into, out = system.mesh.local_channels(addr)
        mem.ni.attach(to_router=into, from_router=out)
        system.memories.append(mem)
        system.config.memories.append(addr)
        system.add_child(mem)
        self._rebuild_address_maps()
        self.reconfigurations += 1
        return mem
