"""The MultiNoC system: processor IPs, address decoding, top level."""

from .address_map import (
    IO_ADDRESS,
    NOTIFY_ADDRESS,
    WAIT_ADDRESS,
    Access,
    AccessKind,
    AddressMap,
    standard_map,
)
from .config import SystemConfig
from .multinoc import MultiNoC
from .processor_ip import ProcessorIp
from .reconfig import ReconfigError, ReconfigurationManager

__all__ = [
    "Access",
    "AccessKind",
    "AddressMap",
    "IO_ADDRESS",
    "MultiNoC",
    "NOTIFY_ADDRESS",
    "ProcessorIp",
    "ReconfigError",
    "ReconfigurationManager",
    "SystemConfig",
    "WAIT_ADDRESS",
    "standard_map",
]
