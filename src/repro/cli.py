"""Command-line toolchain: assembler, disassembler, simulators, compiler.

Run as ``python -m repro.cli <command>``::

    asm FILE            assemble R8 source to an object file
    dis FILE            disassemble an object file
    run FILE            execute on the stand-alone R8 Simulator
    debug FILE          run a debugger script against a program
    cc FILE             compile R8C to assembly or object code
    system FILE         load and run on the full MultiNoC platform
    profile [FILE]      host performance observatory (sampling profiler)
    top                 live terminal dashboard for a served simulation
    analyze TRACE       post-mortem analysis of a JSONL trace
    runs ...            cross-run registry: list/show/diff/trend/gc
    alerts ...          alert/SLO rules: lint, post-hoc check (CI gate)
    prototype           print the virtual FPGA implementation report

Every command reads/writes the same text object format the Serial
software uses, so the pieces compose like the paper's Figure 8 flow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .r8.assembler import ObjectCode, assemble
from .r8.debugger import Debugger
from .r8.disassembler import disassemble
from .r8.simulator import R8Simulator


def _load_program(path: str) -> ObjectCode:
    """Object file or assembly source, by extension."""
    text = Path(path).read_text()
    if path.endswith((".obj", ".hex")):
        return ObjectCode.from_text(text)
    return assemble(text, filename=path)


def cmd_asm(args) -> int:
    obj = assemble(Path(args.file).read_text(), filename=args.file)
    if args.listing:
        for line in obj.listing:
            print(line)
    out = args.output or str(Path(args.file).with_suffix(".obj"))
    Path(out).write_text(obj.to_text())
    print(f"{obj.size_words} words -> {out}")
    return 0


def cmd_dis(args) -> int:
    obj = _load_program(args.file)
    for origin, words in obj.segments:
        for line in disassemble(words, base=origin):
            print(line)
    return 0


def cmd_run(args) -> int:
    from .r8.simulator import SimulatorError

    scanf_values = [int(v, 0) for v in args.scanf.split(",")] if args.scanf else []
    values = list(scanf_values)
    sim = R8Simulator(on_scanf=(lambda: values.pop(0)) if values else None)
    sim.load(_load_program(args.file))
    sim.activate()
    try:
        sim.run(max_instructions=args.max_instructions)
    except SimulatorError as exc:
        for value in sim.printed:
            print(f"printf: {value} ({value:#06x})")
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for value in sim.printed:
        print(f"printf: {value} ({value:#06x})")
    print(
        f"halted after {sim.instructions} instructions, "
        f"{sim.cycles} cycles, CPI {sim.cpi():.2f}"
    )
    return 0


def cmd_debug(args) -> int:
    script = (
        sys.stdin.read() if args.script == "-" else Path(args.script).read_text()
    )
    if args.system:
        return _debug_system(args, script)
    if not args.file:
        print("error: debug needs a program file (or --system)", file=sys.stderr)
        return 2
    dbg = Debugger()
    dbg.load_object(_load_program(args.file))
    for line in script.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        print(f"(r8db) {line}")
        print(dbg.execute(line))
    return 0


def _debug_system(args, script: str) -> int:
    """``debug --system``: a scripted full-system debugger session."""
    from .core import MultiNoCPlatform
    from .debug import SystemDebugger
    from .r8.debugger import DebuggerError
    from .telemetry import TelemetrySink

    session = MultiNoCPlatform.standard().launch(
        telemetry=TelemetrySink(), strict_lockstep=args.no_idle_skip
    )
    if args.file:
        session.host.sync()
        obj = _load_program(args.file)
        addr = session.processor_address(args.proc)
        session.host.load_program(addr, obj)
        session.host.activate(addr)
    dbg = SystemDebugger(
        session, checkpoint_interval=args.checkpoint_interval
    )
    status = 0
    for line in script.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        print(f"(mndb) {line}")
        try:
            print(dbg.execute(line))
        except DebuggerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
            break
    if args.checkpoint:
        from .sim import save_checkpoint

        path = save_checkpoint(
            session.sim,
            args.checkpoint,
            meta={"mesh": list(session.system.config.mesh)},
            topology=session.system.topology,
        )
        print(f"checkpoint -> {path}")
    return status


def cmd_cc(args) -> int:
    from .cc import compile_source, compile_to_asm

    source = Path(args.file).read_text()
    if args.emit_asm:
        print(compile_to_asm(source))
        return 0
    obj = compile_source(source)
    out = args.output or str(Path(args.file).with_suffix(".obj"))
    Path(out).write_text(obj.to_text())
    print(f"{obj.size_words} words -> {out}")
    return 0


def _system_platform(args):
    """The platform a ``system`` run describes: the paper's standard
    2x2 instance, or ``--topology``/``--procs`` overrides."""
    from .core import MultiNoCPlatform

    topology = getattr(args, "topology", None)
    procs = getattr(args, "procs", None)
    if topology is None and not procs:
        return MultiNoCPlatform.standard()
    return MultiNoCPlatform(
        n_processors=procs or 2, topology=topology or (2, 2)
    )


def cmd_system(args) -> int:
    telemetry = None
    if args.trace or args.trace_jsonl or args.metrics:
        from .telemetry import TelemetrySink

        telemetry = TelemetrySink()
    try:
        platform = _system_platform(args)
    except ValueError as exc:  # includes TopologyError at spec parse time
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = platform.launch(
        telemetry=telemetry, strict_lockstep=args.no_idle_skip
    )
    profiler = None
    if args.profile:
        from .telemetry import KernelProfiler

        profiler = KernelProfiler().attach(session.sim)
    hostperf = None
    if args.hostperf:
        hostperf = session.profile_host()
    vcd = None
    if args.vcd:
        from .sim import VcdWriter

        vcd = VcdWriter([session.system.rxd, session.system.txd])
        session.sim.add_watcher(vcd.sample)
    health = None
    if args.monitor or args.sample_interval or args.health_report:
        health = session.monitor_health(
            sample_interval=args.sample_interval,
            invariants=True,
        )
    live = server = engine = None
    if args.top or args.serve is not None or args.alerts:
        live = session.live_stream(stride=args.live_stride)
    if args.alerts:
        from .telemetry.alerts import RuleError, load_rules

        try:
            rules = load_rules(args.alerts)
        except (OSError, RuleError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        engine = session.alert_engine(
            rules,
            log=args.alert_log,
            notify=sys.stderr,
            sink=telemetry,
            registry=session.system.stats.registry,
        )
        if telemetry is not None:
            # mirror frames into the event log so `multinoc alerts
            # check RULES --trace` replays the exact frames this run
            # was alerted on
            live.mirror_to(telemetry)
    if args.serve is not None:
        server = session.serve_telemetry(port=args.serve)
        print(
            f"telemetry server -> {server.address}"
            "  (/metrics /frame /frames"
            + (" /alerts" if engine is not None else "")
            + ")"
        )
    if args.top:
        from .telemetry import MeshTop

        top = MeshTop(color=False if args.no_color else None).attach(live)
        if engine is not None:
            top.attach_alerts(engine)
    flight = None
    if args.crash_dir:
        # after live wiring so the recorder can mirror frames
        flight = session.flight_recorder(args.crash_dir)
    session.host.sync()
    obj = _load_program(args.file)
    addr = session.processor_address(args.proc)
    if args.scanf:
        values = [int(v, 0) for v in args.scanf.split(",")]
        it = iter(values)
        session.host.set_scanf_handler(args.proc, lambda: next(it))
    try:
        session.host.load_program(addr, obj)
        session.host.activate(addr)
        session.sim.run_until(
            lambda: session.system.processors[args.proc].cpu.halted,
            max_cycles=args.max_cycles,
        )
    except Exception as exc:
        if hostperf is not None:
            hostperf.stop()
        if flight is not None:
            bundle = flight.record(
                exc,
                sim=session.sim,
                hostperf=hostperf,
                health=health,
                meta={"program": str(args.file), "proc": args.proc},
            )
            print(f"crash bundle -> {bundle}", file=sys.stderr)
        if health is not None:
            _report_health_failure(exc, health, args.health_report)
        elif profiler is None and hostperf is None and flight is None:
            raise
        else:
            print(f"error: {exc}", file=sys.stderr)
        # exactly the runs that most need their instrumentation: flush
        # what was collected before the failure, then report it
        if telemetry is not None:
            session.system.flush_telemetry()
        _flush_system_exports(session, args, telemetry, vcd)
        if profiler is not None:
            print(profiler.report())
        if hostperf is not None:
            print(hostperf.report())
        _record_system_run(session, args, status="failed", exit_code=1)
        return 1
    session.sim.step(6000)
    if live is not None:
        # one final off-stride frame so dashboards and post-run scrapes
        # see the end-of-run state
        live.force()
    monitor = session.host.monitor(args.proc)
    print(monitor.transcript() or "(no I/O)")
    print(
        f"halted at cycle {session.sim.cycle} "
        f"({session.sim.elapsed_seconds() * 1e3:.2f} ms at 25 MHz)"
    )
    if args.stats:
        _print_system_stats(session)
    if args.metrics:
        print(session.system.stats.registry.prometheus_text(), end="")
    if telemetry is not None:
        # flush deferred telemetry (CPU PC samples) before any export
        session.system.flush_telemetry()
    if _flush_system_exports(session, args, telemetry, vcd) != 0:
        return 1
    if profiler is not None:
        print(profiler.report())
    if hostperf is not None:
        hostperf.stop()
        print(hostperf.report())
    if health is not None:
        if health.sampler is not None:
            print("health timeline:")
            print(health.sampler.timeline())
        n = len(health.violations)
        print(f"health: {'OK, no violations' if n == 0 else f'{n} violation(s)'}")
        if args.health_report:
            _write_health_report(health, args.health_report)
    if engine is not None:
        print(engine.report())
        if args.alert_log:
            print(f"alert log -> {args.alert_log}")
        engine.close()
    _record_system_run(session, args, status="ok", exit_code=0)
    if server is not None:
        if args.linger:
            import time

            print(f"lingering {args.linger:g}s for scrapes (Ctrl-C to stop)")
            try:
                time.sleep(args.linger)
            except KeyboardInterrupt:
                pass
        server.close()
    return 0


def _flush_system_exports(session, args, telemetry, vcd) -> int:
    """Write the ``--trace``/``--trace-jsonl``/``--vcd`` outputs.

    Shared by the success path and the failure path (a failing run's
    partial trace is often the most valuable artifact it leaves).
    Returns 0, or 1 when an export target cannot be written.
    """
    try:
        if telemetry is not None and args.trace:
            from .telemetry import write_chrome_trace

            path = write_chrome_trace(
                telemetry, args.trace, clock_hz=session.system.config.clock_hz
            )
            print(f"chrome trace ({len(telemetry)} events) -> {path}")
        if telemetry is not None and args.trace_jsonl:
            from .telemetry import write_jsonl

            print(f"event log -> {write_jsonl(telemetry, args.trace_jsonl)}")
        if vcd is not None:
            print(f"serial-line waveform -> {vcd.write(args.vcd)}")
    except OSError as exc:
        print(f"error: cannot write export file: {exc}", file=sys.stderr)
        return 1
    return 0


def _record_system_run(session, args, *, status: str, exit_code: int) -> None:
    """Append the run to the cross-run registry (``multinoc runs ...``).

    On by default — the registry is the durable history every later
    ``runs trend`` gate reads — and disabled with ``--no-record``.
    Registry failures must never fail the run they describe.
    """
    if getattr(args, "no_record", False):
        return
    from .telemetry.registry import AUTO

    artifacts = {
        name: str(value)
        for name, value in (
            ("trace", getattr(args, "trace", None)),
            ("trace_jsonl", getattr(args, "trace_jsonl", None)),
            ("vcd", getattr(args, "vcd", None)),
            ("health_report", getattr(args, "health_report", None)),
        )
        if value
    }
    try:
        record = session.record_run(
            registry=getattr(args, "runs_dir", None),
            kind="system",
            status=status,
            exit_code=exit_code,
            artifacts=artifacts,
            meta={"program": str(args.file), "proc": args.proc},
            git_rev=AUTO,
        )
        # stderr: run ids are unique, stdout must stay comparable
        print(f"run record {record['run_id']} -> registry", file=sys.stderr)
    except OSError as exc:
        print(f"warning: could not record run: {exc}", file=sys.stderr)


def _write_health_report(monitor, path: str) -> None:
    import json

    Path(path).write_text(json.dumps(monitor.report(), indent=2))
    print(f"health report -> {path}")


def _report_health_failure(exc, monitor, report_path) -> None:
    """A monitored run failed: print the diagnosis, write the report."""
    from .telemetry import HealthViolation

    print(f"error: {exc}", file=sys.stderr)
    if isinstance(exc, HealthViolation):
        # timeouts already embed describe(); violations carry details
        print(monitor.describe(), file=sys.stderr)
    if report_path:
        if isinstance(exc, HealthViolation):
            monitor.violations.append(exc)
        _write_health_report(monitor, report_path)


def _print_system_stats(session) -> None:
    """The --stats report: latency percentiles + mesh utilisation map."""
    stats = session.system.stats
    summary = stats.latency_summary()
    print(
        f"packets: {stats.packets_injected} injected, "
        f"{stats.packets_delivered} delivered, "
        f"{stats.in_flight_count} in flight"
    )
    if summary["count"]:
        print(
            "latency (cycles): "
            f"mean {summary['mean']:.1f}  p50 {summary['p50']:.0f}  "
            f"p90 {summary['p90']:.0f}  p99 {summary['p99']:.0f}  "
            f"max {summary['max']:.0f}"
        )
    else:
        print("latency (cycles): no packets delivered")
    topo = session.system.topology
    label = "mesh" if topo.kind == "mesh" else topo.spec
    print(f"{label} utilisation (top row = highest y):")
    print(
        stats.heatmap(
            topo.width, topo.height, session.sim.cycle,
            ports=topo.router_ports,
        )
    )


def cmd_profile(args) -> int:
    """``multinoc profile``: the host performance observatory.

    Runs a program (or the built-in edge-detection workload) under the
    sampling :class:`~repro.telemetry.hostperf.HostPerfProfiler` —
    never changing the kernel's execution mode — and reports where host
    wall-clock goes: per subsystem, per kernel region, and as the
    headline host-seconds per simulated kilocycle.  Optional outputs:
    a ``multinoc-hostperf/1`` JSON snapshot (``--json``), a
    folded-stack flamegraph (``--flamegraph``, same format as
    ``analyze --flamegraph``), and a crash bundle on failure
    (``--crash-dir``).
    """
    import json

    if not args.file and args.workload is None:
        print(
            "error: profile needs a program file or --workload",
            file=sys.stderr,
        )
        return 2
    try:
        platform = _system_platform(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = platform.launch(strict_lockstep=args.no_idle_skip)
    hostperf = session.profile_host(interval=args.interval)
    flight = None
    if args.crash_dir:
        flight = session.flight_recorder(args.crash_dir)

    status = 0
    try:
        if args.workload == "edge-detection":
            import random

            from .apps.edge_detection import EdgeDetectionApp, reference_sobel

            processors = sorted(session.system.processors)
            app = EdgeDetectionApp(session.host, processors=processors)
            app.deploy()
            rng = random.Random(11)
            image = [
                [rng.randrange(256) for _ in range(16)] for _ in range(6)
            ]
            result = app.run(image)
            if result.output != reference_sobel(image):
                print("error: edge-detection output mismatch", file=sys.stderr)
                status = 1
        else:
            session.host.sync()
            obj = _load_program(args.file)
            addr = session.processor_address(args.proc)
            session.host.load_program(addr, obj)
            session.host.activate(addr)
            session.sim.run_until(
                lambda: session.system.processors[args.proc].cpu.halted,
                max_cycles=args.max_cycles,
            )
            session.sim.step(6000)
    except Exception as exc:
        hostperf.stop()
        if flight is not None:
            bundle = flight.record(
                exc,
                sim=session.sim,
                hostperf=hostperf,
                meta={"workload": args.workload or str(args.file)},
            )
            print(f"crash bundle -> {bundle}", file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        status = 1
    hostperf.stop()

    print(hostperf.report(top=args.top))
    try:
        if args.json:
            Path(args.json).write_text(
                json.dumps(hostperf.snapshot(), indent=2) + "\n"
            )
            print(f"hostperf snapshot -> {args.json}")
        if args.flamegraph:
            lines = hostperf.folded_stacks()
            Path(args.flamegraph).write_text(
                "\n".join(lines) + ("\n" if lines else "")
            )
            print(f"folded stacks ({len(lines)}) -> {args.flamegraph}")
    except OSError as exc:
        print(f"error: cannot write output file: {exc}", file=sys.stderr)
        status = status or 1

    if not args.no_record:
        from .telemetry.registry import AUTO

        artifacts = {
            name: str(value)
            for name, value in (
                ("hostperf", args.json),
                ("flamegraph", args.flamegraph),
            )
            if value
        }
        try:
            record = session.record_run(
                registry=args.runs_dir,
                kind="profile",
                status="ok" if status == 0 else "failed",
                exit_code=status,
                artifacts=artifacts,
                meta={"workload": args.workload or str(args.file)},
                git_rev=AUTO,
            )
            print(f"run record {record['run_id']} -> registry", file=sys.stderr)
        except OSError as exc:
            print(f"warning: could not record run: {exc}", file=sys.stderr)
    return status


def cmd_analyze(args) -> int:
    """Post-mortem analysis of a ``--trace-jsonl`` event log."""
    import json

    from .telemetry import analyze_trace, diff_traces, load_jsonl

    analysis = analyze_trace(load_jsonl(args.trace))
    print(analysis.report(top=args.top))
    document = analysis.to_dict()
    status = 0

    if args.baseline:
        diff = diff_traces(
            analysis,
            analyze_trace(load_jsonl(args.baseline)),
            threshold_pct=args.threshold_pct,
            threshold_cycles=args.threshold_cycles,
        )
        print()
        print(f"diff vs {args.baseline}:")
        print(diff.report())
        document["diff"] = diff.to_dict()
        if not diff.ok:
            status = 1

    try:
        if args.flamegraph:
            lines = analysis.folded_stacks()
            Path(args.flamegraph).write_text(
                "\n".join(lines) + ("\n" if lines else "")
            )
            print(
                f"folded stacks ({len(lines)} frames) -> {args.flamegraph} "
                "(open with flamegraph.pl or speedscope)"
            )
        if args.annotate:
            obj = _load_program(args.annotate)
            for track in sorted(analysis.profiles):
                profile = analysis.profiles[track]
                if not profile.samples:
                    continue
                print(f"annotated listing for {track}:")
                for line in profile.annotate(obj):
                    print(line)
        if args.json:
            Path(args.json).write_text(json.dumps(document, indent=2))
            print(f"analysis -> {args.json}")
    except OSError as exc:
        print(f"error: cannot write output file: {exc}", file=sys.stderr)
        return 1
    _record_analyze_run(analysis, document, args, status)
    return status


def _record_analyze_run(analysis, document, args, status: int) -> None:
    """Append the analysis outcome to the cross-run registry."""
    if getattr(args, "no_record", False):
        return
    from .telemetry.registry import AUTO, RunRegistry

    delivered = analysis.delivered()
    metrics = {
        "packets": float(len(delivered)),
        "blocked_total": float(
            sum(l.blocked_cycles for l in analysis.links.values())
        ),
    }
    if delivered:
        latencies = sorted(p.latency for p in delivered)
        metrics["latency_mean"] = round(
            sum(latencies) / len(latencies), 4
        )
        metrics["latency_max"] = float(latencies[-1])
    artifacts = {
        name: str(value)
        for name, value in (
            ("trace", args.trace),
            ("json", args.json),
            ("flamegraph", args.flamegraph),
        )
        if value
    }
    meta = {"baseline": args.baseline} if args.baseline else {}
    if "diff" in document:
        meta["diff_ok"] = document["diff"]["ok"]
    try:
        record = RunRegistry(getattr(args, "runs_dir", None)).record(
            kind="analyze",
            status="ok" if status == 0 else "failed",
            exit_code=status,
            metrics=metrics,
            artifacts=artifacts,
            meta=meta,
            git_rev=AUTO,
        )
        print(f"run record {record['run_id']} -> registry", file=sys.stderr)
    except OSError as exc:
        print(f"warning: could not record run: {exc}", file=sys.stderr)


def cmd_top(args) -> int:
    """Attach the terminal dashboard to a remote telemetry server."""
    from .telemetry.top import MeshTop, watch, watch_fleet

    top = MeshTop(color=False if args.no_color else None)
    if args.fleet:
        return watch_fleet(
            args.url,
            once=args.once,
            frames=args.frames,
            interval=args.interval,
            top=top,
        )
    return watch(
        args.url,
        once=args.once,
        frames=args.frames,
        top=top,
        retries=args.retries,
    )


def cmd_runs(args) -> int:
    """The cross-run observatory: query and gate the run registry."""
    import json

    from .telemetry.registry import RegistryError, RunRegistry
    from .telemetry.trend import compute_trend, diff_records, metric_arrow

    registry = RunRegistry(args.dir)
    try:
        if args.runs_command == "list":
            entries = registry.index()
            if args.limit is not None:
                entries = entries[-args.limit:]
            if args.json:
                print(json.dumps(entries, indent=2))
                return 0
            if not entries:
                print(f"no runs recorded in {registry.root}")
                return 0
            metric = getattr(args, "metric", None)
            metric_col = ""
            if metric:
                title = metric if len(metric) <= 16 else metric[:15] + "…"
                metric_col = f" {title.upper():>18}"
            print(
                f"{'RUN':<34} {'KIND':<8} {'STATUS':<7} "
                f"{'PRESET':<7} {'MACHINE':<13}{metric_col} GIT"
            )
            values: list = []
            for e in entries:
                cell = ""
                if metric:
                    value = registry.load(e["run_id"]).get(
                        "metrics", {}
                    ).get(metric)
                    if value is None:
                        cell = f" {'-':>18}"
                    else:
                        values.append(float(value))
                        arrow = metric_arrow(values)
                        cell = f" {f'{value:g} {arrow}':>18}"
                print(
                    f"{e.get('run_id', '?'):<34} {e.get('kind') or '-':<8} "
                    f"{e.get('status') or '-':<7} "
                    f"{e.get('preset') or '-':<7} "
                    f"{e.get('fingerprint') or '-':<13}{cell} "
                    f"{e.get('git_rev') or '-'}"
                )
            print(f"{len(entries)} run(s) in {registry.root}")
            return 0

        if args.runs_command == "show":
            # verbatim file bytes: `runs show` round-trips bit-identically
            sys.stdout.write(registry.raw(args.run_id))
            return 0

        if args.runs_command == "diff":
            diff = diff_records(
                registry.load(args.current),
                registry.load(args.baseline),
                threshold_pct=args.threshold_pct,
                threshold_abs=args.threshold_abs,
            )
            print(diff.report())
            if args.json:
                Path(args.json).write_text(
                    json.dumps(diff.to_dict(), indent=2)
                )
                print(f"diff -> {args.json}")
            return 0 if diff.ok else 1

        if args.runs_command == "trend":
            metrics = None
            if args.metric:
                metrics = [
                    m for arg in args.metric for m in arg.split(",") if m
                ]
            records = registry.records(kind=args.kind)
            report = compute_trend(
                records,
                metrics=metrics,
                window=args.window,
                threshold_pct=args.threshold_pct,
                threshold_abs=args.threshold_abs,
                sustain=args.sustain,
                allow_cross_machine=args.allow_cross_machine,
            )
            print(report.report())
            if args.json:
                Path(args.json).write_text(
                    json.dumps(report.to_dict(), indent=2)
                )
                print(f"trend -> {args.json}")
            return 0 if report.ok else 1

        if args.runs_command == "gc":
            removed = registry.gc(args.keep)
            print(
                f"removed {len(removed)} record(s), "
                f"kept newest {args.keep} in {registry.root}"
            )
            for run_id in removed:
                print(f"  gc {run_id}")
            return 0
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled runs command {args.runs_command!r}")


def cmd_alerts(args) -> int:
    """Lint alert/SLO rules and replay them over stored artifacts."""
    import json

    from .telemetry.alerts import (
        FIELD_HELP,
        RuleError,
        check_frames,
        check_records,
        frames_from_trace,
        load_rules,
    )

    try:
        rules = load_rules(args.rules)
    except (OSError, RuleError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.alerts_command == "lint":
        kinds = f"{len(rules.alerts)} alert(s), {len(rules.slos)} slo(s)"
        print(f"{args.rules}: OK ({kinds})")
        for name, rule in zip(rules.names(), rules.alerts + rules.slos):
            print(f"  {name}: {rule.condition.source}")
        if args.verbose:
            print("fields:")
            for field, help_text in FIELD_HELP.items():
                print(f"  {field:<18} {help_text}")
        return 0

    if args.alerts_command == "check":
        if (args.trace is None) == (args.runs_dir is None):
            print(
                "error: check needs exactly one of --trace or --runs-dir",
                file=sys.stderr,
            )
            return 2
        engine_kwargs = {"log": args.log} if args.log else {}
        if args.trace:
            from .telemetry import load_jsonl

            frames = frames_from_trace(load_jsonl(args.trace))
            if not frames:
                print(
                    f"error: {args.trace} has no mirrored live frames; "
                    "produce one with `multinoc system --alerts RULES "
                    "--trace-jsonl FILE` (alerting mirrors frames into "
                    "the event log)",
                    file=sys.stderr,
                )
                return 2
            engine = check_frames(rules, frames, **engine_kwargs)
        else:
            from .telemetry.registry import RunRegistry

            records = RunRegistry(args.runs_dir).records(
                kind=args.kind, limit=args.limit
            )
            if not records:
                print(
                    f"error: no records in registry {args.runs_dir}",
                    file=sys.stderr,
                )
                return 2
            engine = check_records(rules, records, **engine_kwargs)
        print(engine.report())
        if args.json:
            Path(args.json).write_text(
                json.dumps(engine.document(), indent=2)
            )
            print(f"alerts document -> {args.json}")
        engine.close()
        fired = engine.fired_ever()
        burning = [s for s in engine.slo_status() if not s["healthy"]]
        return 1 if fired or burning else 0

    raise AssertionError(f"unhandled alerts command {args.alerts_command!r}")


def cmd_prototype(args) -> int:
    from .fpga import prototype

    print(prototype(anneal_iterations=args.iterations).summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="MultiNoC toolchain"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("asm", help="assemble R8 source")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.add_argument("--listing", action="store_true")
    p.set_defaults(fn=cmd_asm)

    p = sub.add_parser("dis", help="disassemble object code")
    p.add_argument("file")
    p.set_defaults(fn=cmd_dis)

    p = sub.add_parser("run", help="run on the R8 Simulator")
    p.add_argument("file")
    p.add_argument("--scanf", help="comma-separated scanf answers")
    p.add_argument("--max-instructions", type=int, default=1_000_000)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("debug", help="run a debugger script")
    p.add_argument("file", nargs="?", help="program (optional with --system)")
    p.add_argument("--script", required=True, help="script file or - for stdin")
    p.add_argument(
        "--system",
        action="store_true",
        help="debug the full MultiNoC platform instead of a lone R8 core",
    )
    p.add_argument(
        "--proc",
        type=int,
        default=1,
        help="processor to load FILE onto in --system mode",
    )
    p.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1000,
        metavar="K",
        help="record a reverse-step checkpoint every K cycles (--system)",
    )
    p.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="save a full-system checkpoint when the script ends (--system)",
    )
    p.add_argument(
        "--no-idle-skip",
        action="store_true",
        help="strict lock-step kernel in --system mode",
    )
    p.set_defaults(fn=cmd_debug)

    p = sub.add_parser("cc", help="compile R8C")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.add_argument("-S", "--emit-asm", action="store_true")
    p.set_defaults(fn=cmd_cc)

    p = sub.add_parser("system", help="run on the full MultiNoC")
    p.add_argument("file")
    p.add_argument("--proc", type=int, default=1)
    p.add_argument(
        "--topology",
        metavar="SPEC",
        help="fabric shape: mesh:WxH, torus:WxH or cmesh:WxHxC "
        "(default: the paper's 2x2 mesh)",
    )
    p.add_argument(
        "--procs",
        type=int,
        metavar="N",
        help="number of processor IPs to auto-place (default 2; "
        "combine with --topology for larger fabrics)",
    )
    p.add_argument("--scanf", help="comma-separated scanf answers")
    p.add_argument("--max-cycles", type=int, default=5_000_000)
    p.add_argument("--vcd", help="dump the serial lines to a VCD file")
    p.add_argument(
        "--trace", help="write a Chrome/Perfetto trace-event JSON file"
    )
    p.add_argument("--trace-jsonl", help="write the raw event log as JSONL")
    p.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry as Prometheus text",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print the latency summary and mesh utilisation heatmap",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="profile kernel wall-clock time per component "
        "(exact but forces lock-step; see --hostperf for sampling)",
    )
    p.add_argument(
        "--hostperf",
        action="store_true",
        help="attach the sampling host profiler (host-seconds per "
        "kilocycle per subsystem; never changes the execution mode)",
    )
    p.add_argument(
        "--crash-dir",
        metavar="DIR",
        help="write a multinoc-crash/1 bundle (frames, hostperf "
        "snapshot, health diagnostics) under DIR if the run fails",
    )
    p.add_argument(
        "--monitor",
        action="store_true",
        help="attach the health monitor (watchdogs + invariant checks)",
    )
    p.add_argument(
        "--sample-interval",
        type=int,
        default=0,
        metavar="K",
        help="sample health time-series gauges every K cycles",
    )
    p.add_argument(
        "--health-report",
        metavar="FILE",
        help="write the health report (violations, sampler series) as JSON",
    )
    p.add_argument(
        "--no-idle-skip",
        action="store_true",
        help="strict lock-step kernel: evaluate every component every "
        "cycle (identical results, no quiescence fast-forward)",
    )
    p.add_argument(
        "--top",
        action="store_true",
        help="render the live terminal dashboard while the run executes",
    )
    p.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        help="serve live telemetry over localhost HTTP "
        "(/metrics, /frame, /frames; 0 picks a free port)",
    )
    p.add_argument(
        "--live-stride",
        type=int,
        default=1024,
        metavar="K",
        help="emit a live frame every K cycles (default 1024)",
    )
    p.add_argument(
        "--linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="keep the telemetry server up this long after the run "
        "(lets scrapers and remote dashboards catch the final frame)",
    )
    p.add_argument(
        "--alerts",
        metavar="RULES",
        help="evaluate a declarative alert/SLO rule file against every "
        "live frame (pending/firing/resolved notices on stderr, "
        "verdict report at the end; see docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "--alert-log",
        metavar="FILE",
        help="append every alert transition as multinoc-alert/1 JSONL",
    )
    p.add_argument(
        "--no-color",
        action="store_true",
        help="plain-ASCII dashboard output (also honours NO_COLOR)",
    )
    p.add_argument(
        "--no-record",
        action="store_true",
        help="do not append this run to the cross-run registry",
    )
    p.add_argument(
        "--runs-dir",
        metavar="DIR",
        help="registry root for the run record "
        "(default: $MULTINOC_RUNS_DIR or .multinoc/runs)",
    )
    p.set_defaults(fn=cmd_system)

    p = sub.add_parser(
        "profile",
        help="host performance observatory: sampling self-profiler",
    )
    p.add_argument("file", nargs="?", help="program to run under the profiler")
    p.add_argument(
        "--workload",
        choices=["edge-detection"],
        help="profile a built-in workload instead of a program file",
    )
    p.add_argument("--proc", type=int, default=1)
    p.add_argument(
        "--topology",
        metavar="SPEC",
        help="fabric shape: mesh:WxH, torus:WxH or cmesh:WxHxC",
    )
    p.add_argument(
        "--procs",
        type=int,
        metavar="N",
        help="number of processor IPs to auto-place",
    )
    p.add_argument("--max-cycles", type=int, default=5_000_000)
    p.add_argument(
        "--interval",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="stack-sampling interval (default 5 ms)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=12,
        metavar="N",
        help="subsystem rows in the report table",
    )
    p.add_argument(
        "--json",
        metavar="FILE",
        help="write the multinoc-hostperf/1 snapshot as JSON",
    )
    p.add_argument(
        "--flamegraph",
        metavar="FILE",
        help="write sampled stacks in folded format "
        "(flamegraph.pl / speedscope, same as `analyze --flamegraph`)",
    )
    p.add_argument(
        "--crash-dir",
        metavar="DIR",
        help="write a multinoc-crash/1 bundle under DIR if the run fails",
    )
    p.add_argument(
        "--no-idle-skip",
        action="store_true",
        help="profile the strict lock-step kernel instead of the "
        "quiescent fast path",
    )
    p.add_argument(
        "--no-record",
        action="store_true",
        help="do not append this run to the cross-run registry",
    )
    p.add_argument(
        "--runs-dir",
        metavar="DIR",
        help="registry root for the run record "
        "(default: $MULTINOC_RUNS_DIR or .multinoc/runs)",
    )
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "top", help="live terminal dashboard for a served simulation"
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:9777",
        help="telemetry server to attach to (see `system --serve`)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render the latest frame once and exit (CI snapshots)",
    )
    p.add_argument(
        "--frames",
        type=int,
        metavar="N",
        help="exit after rendering N streamed frames",
    )
    p.add_argument(
        "--no-color",
        action="store_true",
        help="plain-ASCII output (also honours NO_COLOR)",
    )
    p.add_argument(
        "--fleet",
        action="store_true",
        help="render the aggregator's /runs fleet table "
        "(one row per session) instead of a single mesh",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="poll cadence for --fleet (default 1s)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=6,
        metavar="N",
        help="retry --once snapshots this many times (short backoff) "
        "while the server has no frame yet",
    )
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser(
        "analyze", help="post-mortem analysis of a JSONL trace"
    )
    p.add_argument("trace", help="JSONL event log (from --trace-jsonl)")
    p.add_argument(
        "--baseline",
        help="baseline JSONL trace to diff against (exit 1 on regression)",
    )
    p.add_argument(
        "--flamegraph",
        metavar="FILE",
        help="write folded stacks for flamegraph.pl / speedscope",
    )
    p.add_argument(
        "--annotate",
        metavar="OBJ",
        help="object/assembly file to render as an annotated listing",
    )
    p.add_argument("--json", metavar="FILE", help="write the analysis as JSON")
    p.add_argument(
        "--top", type=int, default=5, help="rows per report section"
    )
    p.add_argument(
        "--threshold-pct",
        type=float,
        default=10.0,
        help="relative regression threshold for --baseline",
    )
    p.add_argument(
        "--threshold-cycles",
        type=float,
        default=5.0,
        help="absolute regression threshold for --baseline",
    )
    p.add_argument(
        "--no-record",
        action="store_true",
        help="do not append this analysis to the cross-run registry",
    )
    p.add_argument(
        "--runs-dir",
        metavar="DIR",
        help="registry root for the run record "
        "(default: $MULTINOC_RUNS_DIR or .multinoc/runs)",
    )
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "runs",
        help="cross-run observatory: the persistent run registry",
        description="Query, compare, trend and prune the append-only "
        "run registry (.multinoc/runs or $MULTINOC_RUNS_DIR).",
    )
    p.add_argument(
        "--dir",
        metavar="DIR",
        help="registry root (default: $MULTINOC_RUNS_DIR or .multinoc/runs)",
    )
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    def _dir_flag(q):
        # accepted both before and after the subcommand; SUPPRESS keeps
        # the subparser from clobbering a value parsed by the parent
        q.add_argument(
            "--dir", metavar="DIR", default=argparse.SUPPRESS,
            help="registry root (overrides the pre-subcommand --dir)",
        )

    q = runs_sub.add_parser("list", help="history index, oldest first")
    _dir_flag(q)
    q.add_argument("--limit", type=int, metavar="N", help="newest N only")
    q.add_argument(
        "--metric",
        metavar="NAME",
        help="add a column with this metric's value and a trend arrow "
        "(latest vs the rolling-median baseline)",
    )
    q.add_argument(
        "--json", action="store_true", help="print index entries as JSON"
    )
    q.set_defaults(fn=cmd_runs)

    q = runs_sub.add_parser(
        "show", help="print one record verbatim (bit-identical JSON)"
    )
    _dir_flag(q)
    q.add_argument("run_id")
    q.set_defaults(fn=cmd_runs)

    q = runs_sub.add_parser(
        "diff", help="compare two records metric-by-metric (exit 1 on "
        "regression)"
    )
    _dir_flag(q)
    q.add_argument("baseline", help="baseline run id")
    q.add_argument("current", help="current run id")
    q.add_argument(
        "--threshold-pct", type=float, default=10.0,
        help="relative regression threshold (default 10%%)",
    )
    q.add_argument(
        "--threshold-abs", type=float, default=0.0,
        help="absolute regression threshold (default 0)",
    )
    q.add_argument("--json", metavar="FILE", help="write the diff as JSON")
    q.set_defaults(fn=cmd_runs)

    q = runs_sub.add_parser(
        "trend",
        help="rolling-median trend over the history; exit 1 on a "
        "sustained regression (the CI gate)",
    )
    _dir_flag(q)
    q.add_argument(
        "--metric",
        action="append",
        metavar="NAME[,NAME...]",
        help="metric(s) to trend (default: all in the newest record)",
    )
    q.add_argument(
        "--kind", help="only trend records of this kind (system, bench, ...)"
    )
    q.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="rolling-median baseline window (default 5 records)",
    )
    q.add_argument(
        "--sustain", type=int, default=2, metavar="K",
        help="consecutive regressed records before flagging (default 2)",
    )
    q.add_argument(
        "--threshold-pct", type=float, default=10.0,
        help="relative regression threshold (default 10%%)",
    )
    q.add_argument(
        "--threshold-abs", type=float, default=0.0,
        help="absolute regression threshold (default 0)",
    )
    q.add_argument(
        "--allow-cross-machine",
        action="store_true",
        help="compare records across machine fingerprints (off by "
        "default: cross-machine histories are excluded, with a note)",
    )
    q.add_argument("--json", metavar="FILE", help="write the report as JSON")
    q.set_defaults(fn=cmd_runs)

    q = runs_sub.add_parser(
        "gc", help="retention: delete all but the newest N records"
    )
    _dir_flag(q)
    q.add_argument(
        "--keep", type=int, required=True, metavar="N",
        help="number of newest records to keep",
    )
    q.set_defaults(fn=cmd_runs)

    p = sub.add_parser(
        "alerts",
        help="alerting & SLO engine: lint rules, replay them post-hoc",
        description="One rule syntax across live and post-mortem: the "
        "same file `multinoc system --alerts` evaluates on live frames "
        "can be linted here, or replayed over stored traces and "
        "registry records as a CI gate.",
    )
    alerts_sub = p.add_subparsers(dest="alerts_command", required=True)

    q = alerts_sub.add_parser(
        "check",
        help="replay rules over a stored trace or the run registry "
        "(exit 1 if any alert fired or an SLO is burning)",
    )
    q.add_argument("rules", help="alert/SLO rule file")
    q.add_argument(
        "--trace",
        metavar="JSONL",
        help="replay the mirrored live frames of a JSONL event log "
        "(written by `system --alerts ... --trace-jsonl`)",
    )
    q.add_argument(
        "--runs-dir",
        metavar="DIR",
        help="evaluate over run-registry records instead "
        "(one record = one rule step; `for: N` = N consecutive records)",
    )
    q.add_argument(
        "--kind", help="only registry records of this kind (system, bench)"
    )
    q.add_argument(
        "--limit", type=int, metavar="N", help="newest N records only"
    )
    q.add_argument(
        "--log",
        metavar="FILE",
        help="append replayed transitions as multinoc-alert/1 JSONL",
    )
    q.add_argument(
        "--json", metavar="FILE", help="write the verdict document as JSON"
    )
    q.set_defaults(fn=cmd_alerts)

    q = alerts_sub.add_parser(
        "lint", help="parse and validate a rule file (exit 2 on errors)"
    )
    q.add_argument("rules", help="alert/SLO rule file")
    q.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print the frame-field reference",
    )
    q.set_defaults(fn=cmd_alerts)

    p = sub.add_parser("prototype", help="Section 3 implementation report")
    p.add_argument("--iterations", type=int, default=3000)
    p.set_defaults(fn=cmd_prototype)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
