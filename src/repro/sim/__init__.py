"""Synchronous, cycle-accurate simulation kernel used by every hardware model.

The kernel is deliberately tiny: :class:`Wire` (two-phase registered
signals), :class:`Component` (a clocked block with an ``eval``/``commit``
protocol and an opt-in quiescence/activity protocol) and
:class:`Simulator` (the quiescence-aware clock driver, with a strict
lock-step mode behind ``strict_lockstep=True``).  Everything in
:mod:`repro.noc`, :mod:`repro.r8`, :mod:`repro.memory`,
:mod:`repro.serial` and :mod:`repro.system` is built on these three
classes.
"""

from .checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointEntry,
    CheckpointError,
    CheckpointRing,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from .component import Component, SnapshotError
from .kernel import SimulationTimeout, Simulator, stride_points
from .trace import TraceEvent, Tracer
from .vcd import VcdWriter
from .wire import CheckedWire, HandshakeTx, Wire, make_channel

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckedWire",
    "CheckpointEntry",
    "CheckpointError",
    "CheckpointRing",
    "Component",
    "HandshakeTx",
    "SimulationTimeout",
    "Simulator",
    "SnapshotError",
    "TraceEvent",
    "Tracer",
    "VcdWriter",
    "Wire",
    "load_checkpoint",
    "make_channel",
    "restore_checkpoint",
    "save_checkpoint",
    "stride_points",
]
