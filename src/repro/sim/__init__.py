"""Synchronous, cycle-accurate simulation kernel used by every hardware model.

The kernel is deliberately tiny: :class:`Wire` (two-phase registered
signals), :class:`Component` (a clocked block with an ``eval``/``commit``
protocol) and :class:`Simulator` (the lock-step clock driver).  Everything
in :mod:`repro.noc`, :mod:`repro.r8`, :mod:`repro.memory`,
:mod:`repro.serial` and :mod:`repro.system` is built on these three
classes.
"""

from .component import Component
from .kernel import SimulationTimeout, Simulator
from .trace import TraceEvent, Tracer
from .vcd import VcdWriter
from .wire import HandshakeTx, Wire, make_channel

__all__ = [
    "Component",
    "HandshakeTx",
    "SimulationTimeout",
    "Simulator",
    "TraceEvent",
    "Tracer",
    "VcdWriter",
    "Wire",
    "make_channel",
]
