"""Two-phase signal wires for synchronous hardware simulation.

Every value exchanged between two components travels over a :class:`Wire`.
During the *evaluate* phase of a clock cycle components read ``wire.value``
(the value latched at the previous clock edge) and call :meth:`Wire.drive`
to schedule the value for the next edge.  The kernel then *commits* all
wires at once, which models a synchronous register boundary and makes the
simulation independent of component evaluation order.

Two kernel-facing refinements keep the hot path flat:

* **Driven-wire queue.**  When the quiescence-aware kernel elaborates a
  design it installs its pending-commit list as each wire's ``_queue``;
  the first :meth:`drive` of a cycle enqueues the wire, so the commit
  phase touches only wires that were actually driven instead of walking
  the whole component tree.  ``_sinks`` holds the schedulable units that
  declared the wire as an input — a committed value *change* wakes them.
* **Checked/unchecked split.**  Width checking lives in the
  :class:`CheckedWire` subclass; ``Wire(name, width=8)`` transparently
  builds one.  Wires created without a width run a :meth:`drive` with no
  per-call width branch at all.
"""

from __future__ import annotations

from typing import Any


class Wire:
    """A named signal with registered (two-phase) update semantics.

    Parameters
    ----------
    name:
        Diagnostic name, shown in traces and error messages.
    reset:
        Value the wire holds at cycle zero and after :meth:`reset`.
    width:
        Optional bit width.  When given, the constructor returns a
        :class:`CheckedWire` whose :meth:`drive` validates values against
        ``[0, 2**width)``, catching encoding bugs early.  Without a
        width, drives are entirely unchecked (the fast path).
    """

    __slots__ = (
        "name",
        "value",
        "reset_value",
        "width",
        "_next",
        "_queue",
        "_queued",
        "_sinks",
    )

    def __new__(cls, name: str, reset: Any = 0, width: int | None = None):
        if cls is Wire and width is not None:
            return object.__new__(CheckedWire)
        return object.__new__(cls)

    def __init__(self, name: str, reset: Any = 0, width: int | None = None):
        self.name = name
        self.reset_value = reset
        self.width = width
        self.value = reset
        self._next = reset
        #: kernel's pending-commit list (installed at elaboration) or None
        self._queue = None
        self._queued = False
        #: schedulable units reading this wire (built at elaboration)
        self._sinks: Any = ()
        if width is not None:
            self._max = 1 << width

    def drive(self, value: Any) -> None:
        """Schedule *value* to appear on the wire at the next clock edge."""
        self._next = value
        if not self._queued:
            q = self._queue
            if q is not None:
                q.append(self)
                self._queued = True

    def commit(self) -> None:
        """Latch the scheduled value (called by the kernel, once per cycle)."""
        self.value = self._next

    def reset(self) -> None:
        """Return the wire to its reset value in both phases."""
        self.value = self.reset_value
        self._next = self.reset_value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Wire({self.name}={self.value!r})"


class CheckedWire(Wire):
    """A :class:`Wire` with a declared bit width and range-checked drives.

    ``Wire(name, width=n)`` returns one of these; the precomputed bound
    keeps the check to a single comparison, and width-less wires never
    pay for it at all.
    """

    __slots__ = ("_max",)

    def drive(self, value: Any) -> None:
        if not isinstance(value, int) or not 0 <= value < self._max:
            raise ValueError(
                f"wire {self.name!r}: value {value!r} does not fit in "
                f"{self.width} bits"
            )
        self._next = value
        if not self._queued:
            q = self._queue
            if q is not None:
                q.append(self)
                self._queued = True


class HandshakeTx:
    """The sender-side half of a Hermes asynchronous handshake channel.

    A channel is three wires: ``tx`` (data valid), ``data`` and ``ack``
    (data accepted).  The protocol follows the paper's Section 2.1: the
    sender raises ``tx`` with stable ``data``; the receiver stores the flit
    and pulses ``ack``; the sender drops ``tx`` (or presents the next flit)
    after seeing the pulse.  With registered wires this costs two clock
    cycles per flit, which is exactly the factor 2 in the paper's latency
    formula.
    """

    __slots__ = ("tx", "data", "ack")

    def __init__(self, name: str, data_width: int = 8):
        self.tx = Wire(f"{name}.tx", reset=0, width=1)
        self.data = Wire(f"{name}.data", reset=0, width=data_width)
        self.ack = Wire(f"{name}.ack", reset=0, width=1)

    def wires(self) -> tuple[Wire, Wire, Wire]:
        return (self.tx, self.data, self.ack)


def make_channel(name: str, data_width: int = 8) -> HandshakeTx:
    """Create a handshake channel (tx/data owned by sender, ack by receiver)."""
    return HandshakeTx(name, data_width)
