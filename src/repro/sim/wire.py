"""Two-phase signal wires for synchronous hardware simulation.

Every value exchanged between two components travels over a :class:`Wire`.
During the *evaluate* phase of a clock cycle components read ``wire.value``
(the value latched at the previous clock edge) and call :meth:`Wire.drive`
to schedule the value for the next edge.  The kernel then *commits* all
wires at once, which models a synchronous register boundary and makes the
simulation independent of component evaluation order.
"""

from __future__ import annotations

from typing import Any


class Wire:
    """A named signal with registered (two-phase) update semantics.

    Parameters
    ----------
    name:
        Diagnostic name, shown in traces and error messages.
    reset:
        Value the wire holds at cycle zero and after :meth:`reset`.
    width:
        Optional bit width.  When given, driven integer values are checked
        against ``[0, 2**width)`` which catches encoding bugs early.
    """

    __slots__ = ("name", "value", "reset_value", "width", "_next", "_max")

    def __init__(self, name: str, reset: Any = 0, width: int | None = None):
        self.name = name
        self.reset_value = reset
        self.width = width
        self._max = (1 << width) if width is not None else None
        self.value = reset
        self._next = reset

    def drive(self, value: Any) -> None:
        """Schedule *value* to appear on the wire at the next clock edge."""
        if self._max is not None:
            if not isinstance(value, int) or not 0 <= value < self._max:
                raise ValueError(
                    f"wire {self.name!r}: value {value!r} does not fit in "
                    f"{self.width} bits"
                )
        self._next = value

    def commit(self) -> None:
        """Latch the scheduled value (called by the kernel, once per cycle)."""
        self.value = self._next

    def reset(self) -> None:
        """Return the wire to its reset value in both phases."""
        self.value = self.reset_value
        self._next = self.reset_value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Wire({self.name}={self.value!r})"


class HandshakeTx:
    """The sender-side half of a Hermes asynchronous handshake channel.

    A channel is three wires: ``tx`` (data valid), ``data`` and ``ack``
    (data accepted).  The protocol follows the paper's Section 2.1: the
    sender raises ``tx`` with stable ``data``; the receiver stores the flit
    and pulses ``ack``; the sender drops ``tx`` (or presents the next flit)
    after seeing the pulse.  With registered wires this costs two clock
    cycles per flit, which is exactly the factor 2 in the paper's latency
    formula.
    """

    __slots__ = ("tx", "data", "ack")

    def __init__(self, name: str, data_width: int = 8):
        self.tx = Wire(f"{name}.tx", reset=0, width=1)
        self.data = Wire(f"{name}.data", reset=0, width=data_width)
        self.ack = Wire(f"{name}.ack", reset=0, width=1)

    def wires(self) -> tuple[Wire, Wire, Wire]:
        return (self.tx, self.data, self.ack)


def make_channel(name: str, data_width: int = 8) -> HandshakeTx:
    """Create a handshake channel (tx/data owned by sender, ack by receiver)."""
    return HandshakeTx(name, data_width)
