"""Lightweight signal tracing for debugging cycle-accurate models."""

from __future__ import annotations

import csv
import io
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

from .wire import Wire


@dataclass
class TraceEvent:
    """A single recorded signal change."""

    cycle: int
    wire: str
    value: Any


@dataclass
class Tracer:
    """Records value changes on a set of wires.

    Attach with ``sim.add_watcher(tracer.sample)``.  Only *changes* are
    stored, so long idle stretches are cheap.  For unbounded runs pass
    ``max_events``: the tracer becomes a ring buffer keeping the newest
    events (``dropped`` counts the discarded oldest ones).
    """

    wires: Sequence[Wire]
    max_events: Optional[int] = None
    events: Union[List[TraceEvent], Deque[TraceEvent]] = field(
        default_factory=list
    )
    dropped: int = 0
    _last: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_events is not None and not isinstance(self.events, deque):
            self.events = deque(self.events, maxlen=self.max_events)
        # Baseline at attach time: only subsequent *changes* are events.
        for w in self.wires:
            self._last[w.name] = w.value

    def sample(self, cycle: int) -> None:
        for w in self.wires:
            if self._last.get(w.name) != w.value:
                self._last[w.name] = w.value
                if (
                    self.max_events is not None
                    and len(self.events) == self.max_events
                ):
                    self.dropped += 1
                self.events.append(TraceEvent(cycle, w.name, w.value))

    def changes(self, wire_name: str) -> List[Tuple[int, Any]]:
        """All (cycle, value) changes recorded for *wire_name*."""
        return [(e.cycle, e.value) for e in self.events if e.wire == wire_name]

    def as_text(self) -> str:
        """Human-readable dump, one change per line."""
        return "\n".join(
            f"{e.cycle:>8}  {e.wire:<40} {e.value!r}" for e in self.events
        )

    def as_csv(self) -> str:
        """``cycle,wire,value`` lines with a header, for offline analysis.

        Uses :mod:`csv` so wire names *and* values containing commas,
        quotes or newlines survive a round-trip through any CSV reader.
        """
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["cycle", "wire", "value"])
        for e in self.events:
            writer.writerow([e.cycle, e.wire, e.value])
        return out.getvalue()
