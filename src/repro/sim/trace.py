"""Lightweight signal tracing for debugging cycle-accurate models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from .wire import Wire


@dataclass
class TraceEvent:
    """A single recorded signal change."""

    cycle: int
    wire: str
    value: Any


@dataclass
class Tracer:
    """Records value changes on a set of wires.

    Attach with ``sim.add_watcher(tracer.sample)``.  Only *changes* are
    stored, so long idle stretches are cheap.
    """

    wires: Sequence[Wire]
    events: List[TraceEvent] = field(default_factory=list)
    _last: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Baseline at attach time: only subsequent *changes* are events.
        for w in self.wires:
            self._last[w.name] = w.value

    def sample(self, cycle: int) -> None:
        for w in self.wires:
            if self._last.get(w.name) != w.value:
                self._last[w.name] = w.value
                self.events.append(TraceEvent(cycle, w.name, w.value))

    def changes(self, wire_name: str) -> List[Tuple[int, Any]]:
        """All (cycle, value) changes recorded for *wire_name*."""
        return [(e.cycle, e.value) for e in self.events if e.wire == wire_name]

    def as_text(self) -> str:
        """Human-readable dump, one change per line."""
        return "\n".join(
            f"{e.cycle:>8}  {e.wire:<40} {e.value!r}" for e in self.events
        )
