"""Cycle-based simulation kernel.

The kernel owns a set of top-level :class:`~repro.sim.component.Component`
instances and advances them in lock-step: every cycle it calls ``eval`` on
each component (which reads last cycle's wire values and schedules new
ones) and then commits every wire.  This two-phase discipline makes the
result independent of evaluation order, exactly like synchronous RTL.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .component import Component


class SimulationTimeout(Exception):
    """Raised when :meth:`Simulator.run_until` exceeds its cycle budget.

    When a :class:`~repro.telemetry.health.HealthMonitor` is attached to
    the simulator, :attr:`diagnostics` carries its full diagnostic dump
    (wait-for graph, FIFO snapshots, last-movement cycle per router) so
    the failure localises itself instead of just naming a cycle count.
    """

    def __init__(self, message: str, diagnostics: Optional[dict] = None):
        super().__init__(message)
        self.diagnostics = diagnostics


class Simulator:
    """Lock-step clock driver for a set of components.

    Parameters
    ----------
    clock_hz:
        Nominal clock frequency; only used to convert cycle counts into
        wall-clock figures for reports (the paper's board runs at 25 MHz
        after the clkdll division of the 50 MHz oscillator).
    """

    def __init__(self, clock_hz: float = 25_000_000.0):
        self.clock_hz = clock_hz
        self.cycle = 0
        self._components: List[Component] = []
        self._watchers: List[Callable[[int], None]] = []
        #: optional KernelProfiler (see repro.telemetry.profiler); when
        #: set, step() takes the instrumented path — the plain loop is
        #: untouched so disabled profiling costs one None-check per call.
        self.profiler = None
        #: optional HealthMonitor (see repro.telemetry.health); set by
        #: HealthMonitor.attach().  Only consulted on the cold timeout
        #: path, so an unmonitored run pays nothing per cycle.
        self.health = None

    # -- construction ----------------------------------------------------

    def add(self, component: Component) -> Component:
        """Register a top-level component and return it.

        Adding the same component twice is a no-op: double registration
        would evaluate it twice per cycle and corrupt its state.
        """
        if component not in self._components:
            self._components.append(component)
        return component

    def add_watcher(self, fn: Callable[[int], None]) -> None:
        """Call *fn(cycle)* after every committed cycle (tracing hooks).

        Adding the same function twice is a no-op, like :meth:`add`:
        double registration would run the hook twice per cycle.
        """
        if fn not in self._watchers:
            self._watchers.append(fn)

    def remove_watcher(self, fn: Callable[[int], None]) -> None:
        """Detach a watcher added with :meth:`add_watcher`.

        Removing a function that is not registered is a no-op, so
        monitors and exporters can detach unconditionally.
        """
        try:
            self._watchers.remove(fn)
        except ValueError:
            pass

    # -- execution ---------------------------------------------------------

    def reset(self) -> None:
        """Assert the global reset: all wires/components to initial state."""
        self.cycle = 0
        for c in self._components:
            c.reset()

    def step(self, cycles: int = 1) -> int:
        """Advance the simulation by *cycles* clock cycles."""
        if self.profiler is not None:
            return self._step_profiled(cycles)
        components = self._components
        watchers = self._watchers
        for _ in range(cycles):
            cyc = self.cycle
            for c in components:
                c.eval(cyc)
            for c in components:
                c.commit()
            self.cycle = cyc + 1
            for fn in watchers:
                fn(self.cycle)
        return self.cycle

    def _step_profiled(self, cycles: int) -> int:
        """Instrumented twin of :meth:`step`: every component eval,
        commit and watcher call is timed by the attached profiler."""
        prof = self.profiler
        for _ in range(cycles):
            cyc = self.cycle
            for c in self._components:
                prof.timed_eval(c, cyc)
            for c in self._components:
                prof.timed_commit(c)
            self.cycle = cyc + 1
            for fn in self._watchers:
                prof.timed_watcher(fn, self.cycle)
            prof.cycles += 1
        return self.cycle

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 1_000_000,
        label: Optional[str] = None,
    ) -> int:
        """Step until *predicate()* is true; return cycles consumed.

        Raises :class:`SimulationTimeout` after *max_cycles* additional
        cycles so a deadlocked model fails loudly instead of spinning.
        """
        start = self.cycle
        while not predicate():
            if self.cycle - start >= max_cycles:
                what = label or getattr(predicate, "__name__", "condition")
                message = (
                    f"{what} not reached within {max_cycles} cycles "
                    f"(at cycle {self.cycle})"
                )
                diagnostics = None
                if self.health is not None:
                    diagnostics = self.health.diagnostics()
                    message += "\n" + self.health.describe(diagnostics)
                raise SimulationTimeout(message, diagnostics=diagnostics)
            self.step()
        return self.cycle - start

    # -- reporting ---------------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Simulated wall-clock time at the nominal clock frequency."""
        return self.cycle / self.clock_hz
