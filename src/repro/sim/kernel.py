"""Cycle-based simulation kernel.

The kernel owns a set of top-level :class:`~repro.sim.component.Component`
instances and advances them with two-phase (evaluate, then commit)
semantics, exactly like synchronous RTL.

Historically every component was evaluated every cycle.  The kernel is
now *quiescence-aware*: at elaboration it flattens the component tree
into schedulable units (components overriding ``eval``), wires input
declarations into per-wire sink lists, and installs a driven-wire queue
so commit touches only wires actually driven that cycle.  A unit that
reports :meth:`~repro.sim.component.Component.is_quiescent` after its
eval is put to sleep until an input wire changes, an external call wakes
it, or a scheduled ``wake_at`` fires.  When *every* unit sleeps, the
kernel fast-forwards ``self.cycle`` straight to the earliest scheduled
wake (or the step/run budget) instead of spinning.

The results are cycle-exact with respect to the legacy schedule: a
quiescent component's eval is by contract a no-op, and skipped idle
evals are credited through ``on_wake`` so per-cycle counters (CPU stall
accounting, PC samples) match bit for bit.  ``Simulator(
strict_lockstep=True)`` keeps the original evaluate-everything loop for
A/B comparison, and an attached :class:`~repro.telemetry.profiler.
KernelProfiler` also forces lock-step so wall clock attribution stays
per-component (it announces the fidelity change on attach and restores
the fast path on ``detach()``).  The sampling
:class:`~repro.telemetry.hostperf.HostPerfProfiler` is the
mode-preserving alternative: it observes this thread from the side and
never alters which loop runs.

Watcher semantics across a fast-forwarded span: plain watchers run once
at the landing cycle (state is frozen during the span, so change-based
tracers/VCD observe nothing, same as lock-step); strided observers that
must fire *inside* the span (health watchdogs, time-series samplers)
register a skip listener via :meth:`Simulator.add_skip_listener` and are
called with ``(start, end)`` before the landing-cycle watchers.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .component import Component, SnapshotError


def stride_points(start: int, end: int, stride: int) -> Iterator[int]:
    """Multiples of *stride* strictly inside ``(start, end)``.

    The canonical replay schedule for strided observers across a
    fast-forwarded idle span: every stride boundary the lock-step loop
    would have hit, excluding *end* (the landing cycle gets the regular
    watcher pass).
    """
    c = start - start % stride + stride if start % stride else start + stride
    while c < end:
        yield c
        c += stride


class SimulationTimeout(Exception):
    """Raised when :meth:`Simulator.run_until` exceeds its cycle budget.

    When a :class:`~repro.telemetry.health.HealthMonitor` is attached to
    the simulator, :attr:`diagnostics` carries its full diagnostic dump
    (wait-for graph, FIFO snapshots, last-movement cycle per router) so
    the failure localises itself instead of just naming a cycle count.
    """

    def __init__(self, message: str, diagnostics: Optional[dict] = None):
        super().__init__(message)
        self.diagnostics = diagnostics


class Simulator:
    """Clock driver for a set of components.

    Parameters
    ----------
    clock_hz:
        Nominal clock frequency; only used to convert cycle counts into
        wall-clock figures for reports (the paper's board runs at 25 MHz
        after the clkdll division of the 50 MHz oscillator).
    strict_lockstep:
        When True, keep the legacy evaluate-everything-every-cycle loop
        (recursive eval and commit, no idle skipping).  Architectural
        results are identical either way; the flag exists for A/B
        equivalence tests and as an escape hatch (CLI ``--no-idle-skip``).
    """

    def __init__(
        self, clock_hz: float = 25_000_000.0, strict_lockstep: bool = False
    ):
        self.clock_hz = clock_hz
        self.cycle = 0
        self.strict_lockstep = strict_lockstep
        self._components: List[Component] = []
        self._component_set: Set[Component] = set()
        self._watchers: List[Callable[[int], None]] = []
        self._watcher_set: set = set()
        #: listeners called as fn(start, end) when the kernel
        #: fast-forwards over an idle span (cycles start..end, where the
        #: landing cycle `end` additionally gets a normal watcher call).
        self._skip_listeners: List[Callable[[int, int], None]] = []
        #: fn -> (watcher, skip listener) pairs installed by
        #: add_stride_watcher, so one call detaches both halves.
        self._stride_watchers: Dict[
            Callable[[int], None], Tuple[Callable, Callable]
        ] = {}
        #: optional KernelProfiler (see repro.telemetry.profiler); when
        #: set, step() takes the instrumented lock-step path — the plain
        #: loop is untouched so disabled profiling costs one None-check.
        self.profiler = None
        #: optional HostPerfProfiler (see repro.telemetry.hostperf); set
        #: by HostPerfProfiler.attach().  Purely observational — a side
        #: thread samples this thread's stack, so the kernel never
        #: consults it and keeps whichever execution path it was on.
        self.hostperf = None
        #: optional HealthMonitor (see repro.telemetry.health); set by
        #: HealthMonitor.attach().  Only consulted on the cold timeout
        #: path, so an unmonitored run pays nothing per cycle.
        self.health = None
        #: optional LiveStream (see repro.telemetry.live); set by
        #: LiveStream.attach().  Frame production rides the stride
        #: watchers, so an unobserved run pays nothing per cycle.
        self.live = None
        #: optional CheckpointRing advertised by whoever owns one (the
        #: system debugger); the live plane reads it for frame marks.
        self.checkpoint_ring = None
        # -- quiescence machinery (built lazily by _elaborate) ------------
        self._units: List[Component] = []
        self._unit_set: Set[Component] = set()
        self._n_awake = 0
        self._wake_heap: list = []  # (cycle, seq, unit)
        self._wake_seq = 0
        self._driven: list = []  # wires driven since the last commit
        self._tracked_wires: list = []
        self._needs_elab = True

    # -- construction ----------------------------------------------------

    def add(self, component: Component) -> Component:
        """Register a top-level component and return it.

        Adding the same component twice is a no-op: double registration
        would evaluate it twice per cycle and corrupt its state.
        """
        if component not in self._component_set:
            self._component_set.add(component)
            self._components.append(component)
            self._needs_elab = True
        return component

    def add_watcher(self, fn: Callable[[int], None]) -> None:
        """Call *fn(cycle)* after every committed cycle (tracing hooks).

        Adding the same function twice is a no-op, like :meth:`add`:
        double registration would run the hook twice per cycle.

        Across a fast-forwarded idle span watchers fire once, at the
        landing cycle; observers needing the skipped stride points should
        also register a skip listener (:meth:`add_skip_listener`).
        """
        if fn not in self._watcher_set:
            self._watcher_set.add(fn)
            self._watchers.append(fn)

    def remove_watcher(self, fn: Callable[[int], None]) -> None:
        """Detach a watcher added with :meth:`add_watcher`.

        Removing a function that is not registered is a no-op, so
        monitors and exporters can detach unconditionally.
        """
        if fn in self._watcher_set:
            self._watcher_set.discard(fn)
            self._watchers.remove(fn)

    def add_skip_listener(self, fn: Callable[[int, int], None]) -> None:
        """Call *fn(start, end)* whenever the kernel fast-forwards.

        The span covers skipped cycles ``(start, end)`` exclusive of
        *end*: the landing cycle still gets the regular watcher pass, so
        a listener replaying strided work must stop short of *end*.
        """
        if fn not in self._skip_listeners:
            self._skip_listeners.append(fn)

    def remove_skip_listener(self, fn: Callable[[int, int], None]) -> None:
        try:
            self._skip_listeners.remove(fn)
        except ValueError:
            pass

    def add_stride_watcher(
        self, fn: Callable[[int], None], stride: int
    ) -> None:
        """Call *fn(cycle)* at every multiple of *stride* cycles.

        Unlike a plain watcher, the stride cadence survives idle
        fast-forward: the kernel replays every stride boundary inside a
        skipped span (state is frozen there, so the replayed call
        observes exactly what lock-step evaluation would have shown).
        Strided observers — samplers, live telemetry frames — should use
        this instead of hand-wiring a watcher plus a skip listener.
        Re-adding an already-registered function is a no-op.
        """
        if stride < 1:
            raise ValueError("stride must be at least 1 cycle")
        if fn in self._stride_watchers:
            return

        def on_cycle(cycle: int) -> None:
            if cycle % stride == 0:
                fn(cycle)

        def on_skip(start: int, end: int) -> None:
            for c in stride_points(start, end, stride):
                fn(c)

        self._stride_watchers[fn] = (on_cycle, on_skip)
        self.add_watcher(on_cycle)
        self.add_skip_listener(on_skip)

    def remove_stride_watcher(self, fn: Callable[[int], None]) -> None:
        """Detach both halves of an :meth:`add_stride_watcher` hook."""
        pair = self._stride_watchers.pop(fn, None)
        if pair is not None:
            self.remove_watcher(pair[0])
            self.remove_skip_listener(pair[1])

    def invalidate_elaboration(self) -> None:
        """Re-elaborate before the next step (wiring/topology changed)."""
        self._needs_elab = True

    # -- elaboration -----------------------------------------------------

    def _elaborate(self) -> None:
        """Flatten the tree into schedulable units and index the wires.

        A component whose class overrides ``eval`` is a unit (its whole
        subtree evaluates inside that call); default-eval composites are
        descended through, so the flattened unit order exactly matches
        the legacy recursive evaluation order.  Re-elaboration preserves
        units' sleep state (new units start awake).
        """
        self._needs_elab = False
        for w in self._tracked_wires:
            w._queue = None
            w._sinks = ()
        tracked: list = []
        tracked_set: set = set()
        units: List[Component] = []
        self._tracked_wires = tracked
        self._units = units
        if self.strict_lockstep:
            self._unit_set = set()
            self._n_awake = 0
            return
        pending = self._driven
        default_eval = Component.eval
        default_quiescent = Component.is_quiescent

        def walk(comp: Component, unit: Optional[Component]) -> None:
            if unit is None and type(comp).eval is not default_eval:
                unit = comp
                units.append(comp)
                comp._can_sleep = (
                    type(comp).is_quiescent is not default_quiescent
                )
            comp._kernel = self
            comp._sched = unit
            for w in comp._wires:
                if w not in tracked_set:
                    tracked_set.add(w)
                    tracked.append(w)
                    w._queue = pending
            for child in comp._children:
                walk(child, unit)

        for top in self._components:
            walk(top, None)
        self._unit_set = set(units)

        def wire_sinks(comp: Component) -> None:
            unit = comp._sched
            if unit is not None:
                for w in comp._inputs:
                    sinks = w._sinks
                    if sinks == ():
                        w._sinks = [unit]
                        if w not in tracked_set:
                            tracked_set.add(w)
                            tracked.append(w)
                    elif unit not in sinks:
                        sinks.append(unit)
            for child in comp._children:
                wire_sinks(child)

        for top in self._components:
            wire_sinks(top)
        self._n_awake = sum(1 for u in units if u._awake)

    # -- wake management -------------------------------------------------

    def wake_unit(self, unit: Component) -> None:
        """Mark a sleeping unit runnable (external mutation arrived)."""
        if not unit._awake and unit in self._unit_set:
            unit._awake = True
            self._n_awake += 1

    def schedule_wake(self, unit: Component, cycle: int) -> None:
        """Wake *unit* at *cycle* (processed before that cycle's evals)."""
        self._wake_seq += 1
        heappush(self._wake_heap, (cycle, self._wake_seq, unit))

    def _flush_sleep_credits(self) -> None:
        """Wake everything, crediting skipped idle evals (used when
        switching to the lock-step profiled path mid-run)."""
        for u in self._units:
            if not u._awake:
                u._awake = True
                self._n_awake += 1
            s = u._slept_since
            if s is not None:
                u._slept_since = None
                if self.cycle > s:
                    u.on_wake(self.cycle - s)

    # -- execution ---------------------------------------------------------

    def reset(self) -> None:
        """Assert the global reset: all wires/components to initial state."""
        self.cycle = 0
        for c in self._components:
            c.reset()
            for cc in c.iter_components():
                cc._last_wake_req = None
        for w in self._driven:
            w._queued = False
        self._driven.clear()
        self._wake_heap.clear()
        for u in self._units:
            u._awake = True
            u._slept_since = None
        self._n_awake = len(self._units)

    # -- checkpointing ---------------------------------------------------

    def _flat_units(self) -> List[Component]:
        """The schedulable-unit list in flattened evaluation order,
        computed without touching elaboration state (usable even in
        strict mode, where :meth:`_elaborate` builds no unit list)."""
        default_eval = Component.eval
        out: List[Component] = []

        def walk(comp: Component, inside: bool) -> None:
            if not inside and type(comp).eval is not default_eval:
                out.append(comp)
                inside = True
            for child in comp._children:
                walk(child, inside)

        for top in self._components:
            walk(top, False)
        return out

    def _flat_components(self) -> List[Component]:
        return [
            cc for c in self._components for cc in c.iter_components()
        ]

    def snapshot(self) -> dict:
        """Capture the full simulation state (components + scheduler).

        Only valid at a cycle boundary — inside a watcher or between
        :meth:`step` calls — when no drive is pending commit.  The
        returned dict is JSON-serialisable and kernel-mode portable:
        a snapshot taken under either scheduling mode restores into
        either mode with bit-identical continuation.
        """
        if not self.strict_lockstep and self._needs_elab:
            self._elaborate()
        doc: dict = {
            "cycle": self.cycle,
            "components": [c.snapshot() for c in self._components],
        }
        units = self._units if not self.strict_lockstep else []
        if units:
            index = {u: i for i, u in enumerate(units)}
            heap = sorted(
                [cyc, seq, index[u]]
                for (cyc, seq, u) in self._wake_heap
                if u in index
            )
            doc["scheduler"] = {
                "awake": [bool(u._awake) for u in units],
                "slept_since": [u._slept_since for u in units],
                "wake_heap": heap,
                "wake_seq": self._wake_seq,
                "wake_reqs": [
                    (
                        cc._last_wake_req[1]
                        if cc._last_wake_req is not None
                        else None
                    )
                    for cc in self._flat_components()
                ],
            }
        return doc

    def restore(self, doc: dict) -> None:
        """Restore a :meth:`snapshot`; continuation is bit-identical.

        The component tree must have the same topology as the one the
        snapshot was taken from (same construction order, wires and
        children) — a mismatch raises
        :class:`~repro.sim.component.SnapshotError`.
        """
        if not self.strict_lockstep and self._needs_elab:
            self._elaborate()
        components = doc.get("components", [])
        if len(components) != len(self._components):
            raise SnapshotError(
                f"snapshot has {len(components)} top-level components, "
                f"simulator has {len(self._components)}"
            )
        for comp, state in zip(self._components, components):
            comp.restore(state)
        for w in self._driven:
            w._queued = False
        self._driven.clear()
        self.cycle = doc["cycle"]
        self._restore_scheduler(doc.get("scheduler"))

    def _restore_scheduler(self, sched: Optional[dict]) -> None:
        if self.strict_lockstep:
            # Lock-step evaluates everything anyway; the only snapshot
            # state that matters is pending idle credit from a quiescent
            # source — materialise it so per-cycle counters stay exact.
            if sched is not None:
                units = self._flat_units()
                slept = sched.get("slept_since", [])
                if len(slept) == len(units):
                    for u, s in zip(units, slept):
                        if s is not None and self.cycle > s:
                            u.on_wake(self.cycle - s)
            for cc in self._flat_components():
                cc._last_wake_req = None
                cc._awake = True
                cc._slept_since = None
            return
        units = self._units
        comps = self._flat_components()
        usable = (
            sched is not None
            and len(sched.get("awake", [])) == len(units)
            and len(sched.get("slept_since", [])) == len(units)
        )
        if usable:
            for u, awake, slept in zip(
                units, sched["awake"], sched["slept_since"]
            ):
                u._awake = awake
                u._slept_since = slept
            self._n_awake = sum(1 for u in units if u._awake)
            self._wake_heap = [
                (cyc, seq, units[i])
                for cyc, seq, i in sched.get("wake_heap", [])
            ]
            heapify(self._wake_heap)
            self._wake_seq = sched.get("wake_seq", 0)
            reqs = sched.get("wake_reqs")
            if reqs is not None and len(reqs) == len(comps):
                for cc, req in zip(comps, reqs):
                    cc._last_wake_req = None if req is None else (self, req)
                return
        else:
            # Cross-mode (or legacy) snapshot: waking every unit is
            # always safe — a quiescent unit's eval is a no-op and it
            # goes straight back to sleep, re-booking its own wakes.
            self._wake_heap.clear()
            for u in units:
                u._awake = True
                u._slept_since = None
            self._n_awake = len(units)
        for cc in comps:
            cc._last_wake_req = None

    def step(self, cycles: int = 1) -> int:
        """Advance the simulation by *cycles* clock cycles."""
        if self.profiler is not None:
            return self._step_profiled(cycles)
        if self.strict_lockstep:
            return self._step_lockstep(cycles)
        if self._needs_elab:
            self._elaborate()
        units = self._units
        watchers = self._watchers
        heap = self._wake_heap
        driven = self._driven
        unit_set = self._unit_set
        target = self.cycle + cycles
        while self.cycle < target:
            cyc = self.cycle
            # hostperf: wake_heap
            while heap and heap[0][0] <= cyc:
                unit = heappop(heap)[2]
                if not unit._awake and unit in unit_set:
                    unit._awake = True
                    self._n_awake += 1
            if self._n_awake == 0 and units:
                land = heap[0][0] if heap else target
                if land > target:
                    land = target
                self._fast_forward(cyc, land)
                continue
            # hostperf: eval
            for u in units:
                if u._awake:
                    s = u._slept_since
                    if s is not None:
                        u._slept_since = None
                        if cyc > s:
                            u.on_wake(cyc - s)
                    u.eval(cyc)
                    if u._can_sleep and u.is_quiescent():
                        u._awake = False
                        u._slept_since = cyc + 1
                        self._n_awake -= 1
            # hostperf: commit
            if driven:
                n_awake = self._n_awake
                for w in driven:
                    w._queued = False
                    nxt = w._next
                    if w.value != nxt:
                        w.value = nxt
                        for su in w._sinks:
                            if not su._awake:
                                su._awake = True
                                n_awake += 1
                self._n_awake = n_awake
                driven.clear()
            self.cycle = cyc + 1
            # hostperf: watchers
            for fn in watchers:
                fn(self.cycle)
        return self.cycle

    def _step_lockstep(self, cycles: int) -> int:
        """The legacy loop: evaluate and commit everything, every cycle."""
        components = self._components
        watchers = self._watchers
        for _ in range(cycles):
            cyc = self.cycle
            # hostperf: eval
            for c in components:
                c.eval(cyc)
            # hostperf: commit
            for c in components:
                c.commit()
            self.cycle = cyc + 1
            # hostperf: watchers
            for fn in watchers:
                fn(self.cycle)
        return self.cycle

    def _fast_forward(self, from_cycle: int, to_cycle: int) -> None:
        """Jump over an idle span: every unit is asleep and no wake is
        scheduled before *to_cycle*, so no architectural state can change
        in between — advancing the cycle counter is exact."""
        self.cycle = to_cycle
        for fn in self._skip_listeners:
            fn(from_cycle, to_cycle)
        for fn in self._watchers:
            fn(to_cycle)

    def _step_profiled(self, cycles: int) -> int:
        """Instrumented twin of :meth:`step`: every component eval,
        commit and watcher call is timed by the attached profiler.

        Profiling runs lock-step (no idle skipping) so wall-clock cost is
        attributed per component per cycle; sleep credits are flushed
        first to keep counters cycle-exact when switching paths mid-run.
        """
        prof = self.profiler
        if not self.strict_lockstep:
            if self._needs_elab:
                self._elaborate()
            self._flush_sleep_credits()
        driven = self._driven
        for _ in range(cycles):
            cyc = self.cycle
            for c in self._components:
                prof.timed_eval(c, cyc)
            for c in self._components:
                prof.timed_commit(c)
            if driven:
                # recursive commit already latched these; just clear flags
                for w in driven:
                    w._queued = False
                driven.clear()
            self.cycle = cyc + 1
            for fn in self._watchers:
                prof.timed_watcher(fn, self.cycle)
            prof.cycles += 1
        return self.cycle

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 1_000_000,
        label: Optional[str] = None,
    ) -> int:
        """Step until *predicate()* is true; return cycles consumed.

        Raises :class:`SimulationTimeout` after *max_cycles* additional
        cycles so a deadlocked model fails loudly instead of spinning.

        On the quiescent path the predicate is evaluated at every cycle
        with activity plus the budget boundary; while every unit sleeps
        the state it could observe is frozen, so skipping the idle span
        between activity points is exact for state-based predicates.
        """
        start = self.cycle
        budget = start + max_cycles
        fast = self.profiler is None and not self.strict_lockstep
        while not predicate():
            if self.cycle >= budget:
                what = label or getattr(predicate, "__name__", "condition")
                message = (
                    f"{what} not reached within {max_cycles} cycles "
                    f"(at cycle {self.cycle})"
                )
                diagnostics = None
                if self.health is not None:
                    diagnostics = self.health.diagnostics()
                    message += "\n" + self.health.describe(diagnostics)
                raise SimulationTimeout(message, diagnostics=diagnostics)
            if fast:
                if self._needs_elab:
                    self._elaborate()
                heap = self._wake_heap
                if (
                    self._n_awake == 0
                    and self._units
                    and not (heap and heap[0][0] <= self.cycle)
                ):
                    land = heap[0][0] if heap else budget
                    if land > budget:
                        land = budget
                    if land > self.cycle:
                        self._fast_forward(self.cycle, land)
                        continue
            self.step()
        return self.cycle - start

    # -- reporting ---------------------------------------------------------

    def elapsed_seconds(self) -> float:
        """Simulated wall-clock time at the nominal clock frequency."""
        return self.cycle / self.clock_hz
