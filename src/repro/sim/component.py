"""Base class for clocked hardware components."""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from .wire import Wire


class SnapshotError(Exception):
    """A snapshot does not match the component tree it is restored into."""


class Component:
    """A synchronous block evaluated once per clock cycle.

    Subclasses implement :meth:`eval`, which may read ``wire.value`` (the
    state latched at the previous edge), update internal registers, and
    call ``wire.drive`` on their output wires.  Internal state may be
    mutated eagerly because no other component can observe it except
    through wires, which only change at the commit phase.

    Activity protocol
    -----------------
    The quiescence-aware kernel (see :class:`~repro.sim.kernel.Simulator`)
    treats every component whose class overrides :meth:`eval` as a
    *schedulable unit*.  A unit may opt into idle-skipping by:

    * overriding :meth:`is_quiescent` to report when its next ``eval``
      would be a no-op given unchanged inputs,
    * declaring the wires it reads with :meth:`watch_wires` so a
      committed change on any of them wakes it, and
    * calling :meth:`wake` from every externally callable method that
      mutates its state (queueing a packet, activating a core, ...), or
      :meth:`wake_at` for purely time-based work.

    Components that never override :meth:`is_quiescent` are evaluated
    every cycle, exactly like the original lock-step kernel.
    """

    def __init__(self, name: str):
        self.name = name
        self._wires: List[Wire] = []
        self._wire_set: Set[Wire] = set()
        self._inputs: List[Wire] = []
        self._children: List["Component"] = []
        # -- kernel elaboration state (managed by Simulator) --------------
        self._kernel = None  # Simulator that elaborated this component
        self._sched = None  # schedulable unit owning this component
        self._awake = True
        self._slept_since = None  # first cycle whose eval was skipped
        self._can_sleep = False  # cached: class overrides is_quiescent
        self._last_wake_req = None  # (kernel, cycle) of the last wake_at

    # -- construction helpers -------------------------------------------

    def wire(self, name: str, reset=0, width: int | None = None) -> Wire:
        """Create a wire owned (registered and reset) by this component."""
        w = Wire(f"{self.name}.{name}", reset=reset, width=width)
        self._wires.append(w)
        self._wire_set.add(w)
        return w

    def adopt_wires(self, wires: Iterable[Wire]) -> None:
        """Register externally created wires for commit/reset handling."""
        added = False
        for w in wires:
            if w not in self._wire_set:
                self._wire_set.add(w)
                self._wires.append(w)
                added = True
        if added:
            self._invalidate_kernel()

    def disown_wires(self, wires: Iterable[Wire]) -> None:
        """Stop committing/resetting previously adopted wires (used when
        re-wiring components, e.g. dynamic reconfiguration)."""
        doomed = {w for w in wires if w in self._wire_set}
        if not doomed:
            return
        self._wire_set -= doomed
        self._wires = [w for w in self._wires if w not in doomed]
        self._invalidate_kernel()

    def watch_wires(self, wires: Iterable[Wire]) -> None:
        """Declare *wires* as inputs: a committed change wakes this
        component's schedulable unit."""
        changed = False
        for w in wires:
            if w not in self._inputs:
                self._inputs.append(w)
                changed = True
        if changed:
            self._invalidate_kernel()

    def unwatch_wires(self, wires: Iterable[Wire]) -> None:
        """Stop watching previously declared input wires."""
        drop = set(wires)
        kept = [w for w in self._inputs if w not in drop]
        if len(kept) != len(self._inputs):
            self._inputs = kept
            self._invalidate_kernel()

    def add_child(self, child: "Component") -> "Component":
        self._children.append(child)
        self._invalidate_kernel()
        return child

    def remove_child(self, child: "Component") -> None:
        """Detach a child (dynamic reconfiguration); no-op if absent."""
        try:
            self._children.remove(child)
        except ValueError:
            return
        self._invalidate_kernel()

    def _invalidate_kernel(self) -> None:
        """Wiring changed after elaboration: make the kernel re-elaborate."""
        k = self._kernel
        if k is None and self._sched is not None:
            k = self._sched._kernel
        if k is not None:
            k.invalidate_elaboration()

    # -- activity protocol ----------------------------------------------

    def is_quiescent(self) -> bool:
        """True when the next ``eval`` is a no-op given unchanged inputs.

        The default (``False``) keeps legacy components evaluated every
        cycle.  Overriders must guarantee that a quiescent component's
        ``eval`` neither changes internal state nor drives new wire
        values until an input wire changes, :meth:`wake`/:meth:`wake_at`
        fires, or an external call mutates it.
        """
        return False

    def on_wake(self, skipped_cycles: int) -> None:
        """Called once before the first ``eval`` after a quiescent span.

        *skipped_cycles* is the number of evals the kernel skipped.
        Override to credit per-cycle accounting (e.g. stall counters)
        that lock-step evaluation would have accumulated.
        """

    def wake(self) -> None:
        """Mark this component's schedulable unit as active.

        Call from every externally visible mutation (queueing work,
        activating a core...).  Cheap no-op while already awake or before
        kernel elaboration.
        """
        unit = self._sched
        if unit is not None and not unit._awake:
            k = unit._kernel
            if k is not None:
                k.wake_unit(unit)

    def wake_at(self, cycle: int) -> None:
        """Schedule a wake-up for this component's unit at *cycle*.

        Quiescence predicates may call this every cycle while their unit
        is still awake (another sibling is busy); repeating the same
        future cycle is deduplicated so the wake heap stays small.
        """
        unit = self._sched
        if unit is None:
            return
        k = unit._kernel
        if k is not None:
            req = (k, cycle)
            if req != self._last_wake_req:
                self._last_wake_req = req
                k.schedule_wake(unit, cycle)

    # -- simulation protocol --------------------------------------------

    def eval(self, cycle: int) -> None:
        """Evaluate one clock cycle.  Default: evaluate children in order."""
        for child in self._children:
            child.eval(cycle)

    def commit(self) -> None:
        """Latch all owned wires; recurses into children."""
        for w in self._wires:
            w.commit()
        for child in self._children:
            child.commit()

    def reset(self) -> None:
        """Return owned wires and children to their reset state."""
        for w in self._wires:
            w.reset()
        for child in self._children:
            child.reset()

    # -- checkpoint protocol ---------------------------------------------

    def snapshot(self) -> dict:
        """Capture this subtree's full state as a JSON-serialisable dict.

        The generic walk records every owned wire (both phases) and
        recurses into children; component-local registers are contributed
        by :meth:`snapshot_state` overrides.  Valid only at a cycle
        boundary (between :meth:`commit` and the next :meth:`eval`), when
        ``value == _next`` for every undriven wire and no drive is
        pending — exactly where :class:`~repro.sim.kernel.Simulator`
        watchers run.
        """
        state: dict = {
            "wires": [[w.value, w._next] for w in self._wires],
            "children": [c.snapshot() for c in self._children],
        }
        local = self.snapshot_state()
        if local is not None:
            state["state"] = local
        return state

    def restore(self, state: dict) -> None:
        """Restore a subtree from a :meth:`snapshot` dict.

        Children are restored before this component's own
        :meth:`restore_state`, so a parent override can re-link shared
        objects (e.g. an in-flight bus transaction aliased between a CPU
        and its IP) after the child state exists.
        """
        wires = state.get("wires", [])
        if len(wires) != len(self._wires):
            raise SnapshotError(
                f"{self.name}: snapshot has {len(wires)} wires, "
                f"component owns {len(self._wires)} (topology mismatch)"
            )
        for w, (value, nxt) in zip(self._wires, wires):
            w.value = value
            w._next = nxt
            w._queued = False
        children = state.get("children", [])
        if len(children) != len(self._children):
            raise SnapshotError(
                f"{self.name}: snapshot has {len(children)} children, "
                f"component has {len(self._children)} (topology mismatch)"
            )
        for child, child_state in zip(self._children, children):
            child.restore(child_state)
        self.restore_state(state.get("state", {}))

    def snapshot_state(self) -> Optional[dict]:
        """Component-local registers as a JSON-serialisable dict.

        Return ``None`` (the default) when the component keeps no state
        beyond its wires and children.  Overrides must round-trip through
        :meth:`restore_state` bit-identically.
        """
        return None

    def restore_state(self, state: dict) -> None:
        """Restore what :meth:`snapshot_state` captured (default: nothing)."""

    def iter_components(self) -> Iterable["Component"]:
        """Yield this component and all descendants (pre-order)."""
        yield self
        for child in self._children:
            yield from child.iter_components()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
