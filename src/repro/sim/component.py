"""Base class for clocked hardware components."""

from __future__ import annotations

from typing import Iterable, List

from .wire import Wire


class Component:
    """A synchronous block evaluated once per clock cycle.

    Subclasses implement :meth:`eval`, which may read ``wire.value`` (the
    state latched at the previous edge), update internal registers, and
    call ``wire.drive`` on their output wires.  Internal state may be
    mutated eagerly because no other component can observe it except
    through wires, which only change at the commit phase.
    """

    def __init__(self, name: str):
        self.name = name
        self._wires: List[Wire] = []
        self._children: List["Component"] = []

    # -- construction helpers -------------------------------------------

    def wire(self, name: str, reset=0, width: int | None = None) -> Wire:
        """Create a wire owned (registered and reset) by this component."""
        w = Wire(f"{self.name}.{name}", reset=reset, width=width)
        self._wires.append(w)
        return w

    def adopt_wires(self, wires: Iterable[Wire]) -> None:
        """Register externally created wires for commit/reset handling."""
        self._wires.extend(wires)

    def disown_wires(self, wires: Iterable[Wire]) -> None:
        """Stop committing/resetting previously adopted wires (used when
        re-wiring components, e.g. dynamic reconfiguration)."""
        for w in wires:
            if w in self._wires:
                self._wires.remove(w)

    def add_child(self, child: "Component") -> "Component":
        self._children.append(child)
        return child

    # -- simulation protocol --------------------------------------------

    def eval(self, cycle: int) -> None:
        """Evaluate one clock cycle.  Default: evaluate children in order."""
        for child in self._children:
            child.eval(cycle)

    def commit(self) -> None:
        """Latch all owned wires; recurses into children."""
        for w in self._wires:
            w.commit()
        for child in self._children:
            child.commit()

    def reset(self) -> None:
        """Return owned wires and children to their reset state."""
        for w in self._wires:
            w.reset()
        for child in self._children:
            child.reset()

    def iter_components(self) -> Iterable["Component"]:
        """Yield this component and all descendants (pre-order)."""
        yield self
        for child in self._children:
            yield from child.iter_components()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
