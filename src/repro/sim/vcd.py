"""VCD (Value Change Dump) export for simulation traces.

Writes IEEE-1364-style VCD files from a set of wires so NoC handshakes
and UART lines can be inspected in GTKWave or any other waveform
viewer — the debugging workflow every RTL engineer expects from a
hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union

from .wire import Wire

#: Printable VCD identifier characters, per the spec.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Compact VCD identifier for the *index*-th signal."""
    out = []
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_CHARS))
        out.append(_ID_CHARS[digit])
    return "".join(out)


@dataclass
class VcdWriter:
    """Records wire values each cycle and serialises them as VCD.

    Usage::

        vcd = VcdWriter([ch.tx, ch.data, ch.ack], timescale="20ns")
        sim.add_watcher(vcd.sample)
        sim.step(500)
        vcd.write("trace.vcd")

    Wires are grouped into scopes by their dotted name prefix
    (``router00.east.tx`` lands in scope ``router00``).
    """

    wires: Sequence[Wire]
    timescale: str = "20ns"  # one clock cycle at the 50 MHz board clock
    _ids: Dict[str, str] = field(default_factory=dict)
    _widths: Dict[str, int] = field(default_factory=dict)
    _changes: List[tuple] = field(default_factory=list)
    _last: Dict[str, Optional[int]] = field(default_factory=dict)
    _cycles: int = 0

    def __post_init__(self) -> None:
        for i, wire in enumerate(self.wires):
            self._ids[wire.name] = _identifier(i)
            self._widths[wire.name] = wire.width or 16
            # baseline: the value at attach time goes into $dumpvars,
            # only subsequent changes into the timeline
            self._last[wire.name] = wire.value if isinstance(wire.value, int) else 0
            self._initial = getattr(self, "_initial", {})
            self._initial[wire.name] = self._last[wire.name]

    def sample(self, cycle: int) -> None:
        """Watcher hook: record changes at *cycle*."""
        self._cycles = max(self._cycles, cycle)
        for wire in self.wires:
            value = wire.value
            if not isinstance(value, int):
                continue  # VCD carries scalars/vectors only
            if self._last[wire.name] != value:
                self._last[wire.name] = value
                self._changes.append((cycle, wire.name, value))

    # -- serialisation -----------------------------------------------------

    def _header(self, out: TextIO) -> None:
        out.write("$date MultiNoC simulation $end\n")
        out.write("$version repro VcdWriter $end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        # group by first dotted component
        scopes: Dict[str, List[Wire]] = {}
        for wire in self.wires:
            scope, _, _ = wire.name.partition(".")
            scopes.setdefault(scope, []).append(wire)
        for scope in sorted(scopes):
            out.write(f"$scope module {scope} $end\n")
            for wire in scopes[scope]:
                width = self._widths[wire.name]
                short = wire.name.split(".", 1)[-1].replace(" ", "_")
                out.write(
                    f"$var wire {width} {self._ids[wire.name]} {short} $end\n"
                )
            out.write("$upscope $end\n")
        out.write("$enddefinitions $end\n")

    def _format_value(self, name: str, value: int) -> str:
        ident = self._ids[name]
        if self._widths[name] == 1:
            return f"{value & 1}{ident}"
        return f"b{value:b} {ident}"

    def dump(self) -> str:
        """The complete VCD text."""
        from io import StringIO

        out = StringIO()
        self._header(out)
        out.write("$dumpvars\n")
        for wire in self.wires:
            out.write(self._format_value(wire.name, self._initial[wire.name]) + "\n")
        out.write("$end\n")
        current_time: Optional[int] = None
        for cycle, name, value in self._changes:
            if cycle != current_time:
                out.write(f"#{cycle}\n")
                current_time = cycle
            out.write(self._format_value(name, value) + "\n")
        out.write(f"#{self._cycles + 1}\n")
        return out.getvalue()

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.dump())
        return path
