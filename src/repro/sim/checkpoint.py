"""Deterministic whole-system checkpoint/restore.

A checkpoint is a JSON document capturing everything the kernel and its
component tree need to resume bit-identically: every wire (both
phases), every component's registers (via the per-class
``snapshot_state`` overrides), and the scheduler's wake bookings.  The
same document restores under either kernel mode (strict lock-step or
idle fast-forward), which is what makes restore-and-replay a sound
implementation of reverse debugging: determinism turns "go back 150
cycles" into "restore the nearest earlier checkpoint and re-execute".

File format (schema ``multinoc-checkpoint/1``)::

    {
      "schema":   "multinoc-checkpoint/1",
      "cycle":    123456,
      "meta":     {...},         # caller-supplied context (config, note)
      "topology": {...},         # optional fabric descriptor (additive)
      "state":    {...}          # Simulator.snapshot() document
    }

The optional top-level ``topology`` key carries the fabric's
:meth:`~repro.noc.topology.Topology.descriptor`; a restore that passes
its own topology refuses a checkpoint taken on a different fabric
before any state is touched (a 4x4-torus checkpoint cannot silently
restore into a 2x2 mesh).  Checkpoints without the key (pre-topology
files) restore as before.

Everything is plain JSON — tuples become lists on the way out and are
rebuilt by each component's ``restore_state``, so a checkpoint written
by one process restores in a fresh one.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from .component import SnapshotError
from .kernel import Simulator

#: Version tag written into (and required from) every checkpoint file.
CHECKPOINT_SCHEMA = "multinoc-checkpoint/1"


class CheckpointError(Exception):
    """A checkpoint file is malformed or does not fit this system."""


def save_checkpoint(
    sim: Simulator,
    path: Union[str, Path],
    meta: Optional[dict] = None,
    topology=None,
) -> Path:
    """Serialise *sim*'s full state to *path*; returns the path.

    Must be called at a cycle boundary (between steps or inside a
    watcher).  *meta* is stored verbatim for the restoring side to
    sanity-check (e.g. the system configuration, a free-form note).
    Pass the system's :class:`~repro.noc.topology.Topology` (or its
    descriptor dict) as *topology* to stamp the fabric shape into the
    file for restore-time validation.
    """
    doc = {
        "schema": CHECKPOINT_SCHEMA,
        "cycle": sim.cycle,
        "meta": meta or {},
        "state": sim.snapshot(),
    }
    if topology is not None:
        doc["topology"] = _descriptor(topology)
    path = Path(path)
    path.write_text(json.dumps(doc))
    return path


def _descriptor(topology) -> dict:
    if isinstance(topology, dict):
        return dict(topology)
    return topology.descriptor()


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Read and validate a checkpoint document from *path*."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: not a {CHECKPOINT_SCHEMA} checkpoint "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    if "state" not in doc or "cycle" not in doc:
        raise CheckpointError(f"{path}: checkpoint missing state/cycle")
    if "topology" in doc and not isinstance(doc["topology"], dict):
        raise CheckpointError(f"{path}: malformed topology descriptor")
    return doc


def restore_checkpoint(
    sim: Simulator, doc: Union[dict, str, Path], topology=None
) -> int:
    """Restore *sim* from a checkpoint document or file path.

    Returns the restored cycle.  The simulator must hold a component
    tree with the same topology the checkpoint was taken from; pass the
    live system's topology (plugin or descriptor dict) to have that
    checked against the checkpoint's ``topology`` stamp before any
    state is touched.
    """
    if not isinstance(doc, dict):
        doc = load_checkpoint(doc)
    if topology is not None and "topology" in doc:
        want, have = _descriptor(topology), doc["topology"]
        if want != have:
            raise CheckpointError(
                f"checkpoint was taken on a different fabric: "
                f"checkpoint {have}, system {want}"
            )
    try:
        sim.restore(doc["state"])
    except SnapshotError as exc:
        raise CheckpointError(str(exc)) from exc
    return sim.cycle


@dataclass
class CheckpointEntry:
    """One in-memory ring slot: a cycle and its snapshot document."""

    cycle: int
    state: dict
    #: length of the telemetry sink's event list at snapshot time, so a
    #: restore can truncate the trace back to exactly this point before
    #: deterministic replay re-emits the tail (no duplicate events).
    events_len: Optional[int] = None


class CheckpointRing:
    """Periodic in-memory checkpoints, the substrate of reverse-step.

    Attached to a :class:`~repro.sim.kernel.Simulator` as a watcher, the
    ring records a snapshot every *interval* cycles (at the first cycle
    boundary at or past the due point — fast-forwarded spans simply land
    the checkpoint at the span's landing cycle).  ``capacity`` bounds
    memory: the oldest non-origin entry is evicted first, and the origin
    (the first checkpoint taken, normally at debugger attach) is pinned
    so ``goto`` can always reach any cycle at or after it, at worst by a
    long replay.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: int = 1000,
        capacity: int = 8,
        sink=None,
    ):
        if interval < 1:
            raise ValueError("checkpoint interval must be at least 1 cycle")
        if capacity < 2:
            raise ValueError("checkpoint ring needs capacity >= 2")
        self.sim = sim
        self.interval = interval
        self.capacity = capacity
        self.sink = sink
        self._entries: List[CheckpointEntry] = []  # sorted by cycle
        self._last_recorded: Optional[int] = None
        self._attached = False
        if sink is not None:
            sink.track("checkpoint", process="sim")

    # -- lifecycle -------------------------------------------------------

    def attach(self) -> "CheckpointRing":
        """Record the origin checkpoint now and start the periodic ring."""
        self.record()
        self.sim.add_watcher(self._on_cycle)
        self._attached = True
        return self

    def detach(self) -> None:
        self.sim.remove_watcher(self._on_cycle)
        self._attached = False

    def _on_cycle(self, cycle: int) -> None:
        if (
            self._last_recorded is None
            or cycle - self._last_recorded >= self.interval
        ):
            self.record()

    # -- recording -------------------------------------------------------

    def record(self) -> CheckpointEntry:
        """Snapshot the simulator now and insert it into the ring."""
        entry = CheckpointEntry(
            cycle=self.sim.cycle,
            state=self.sim.snapshot(),
            events_len=(
                len(self.sink.events) if self.sink is not None else None
            ),
        )
        self._last_recorded = entry.cycle
        cycles = [e.cycle for e in self._entries]
        pos = bisect_right(cycles, entry.cycle)
        if pos > 0 and self._entries[pos - 1].cycle == entry.cycle:
            self._entries[pos - 1] = entry  # replay re-recorded this slot
        else:
            self._entries.insert(pos, entry)
        while len(self._entries) > self.capacity:
            # evict the oldest non-origin entry (origin stays pinned)
            del self._entries[1]
        if self.sink is not None:
            self.sink.instant(
                "checkpoint", "checkpoint", entry.cycle, ring=len(self._entries)
            )
        return entry

    # -- lookup ----------------------------------------------------------

    @property
    def entries(self) -> List[CheckpointEntry]:
        return list(self._entries)

    def nearest(self, cycle: int) -> Optional[CheckpointEntry]:
        """The most recent entry at or before *cycle*, or None."""
        cycles = [e.cycle for e in self._entries]
        pos = bisect_right(cycles, cycle)
        return self._entries[pos - 1] if pos else None

    def restore_nearest(self, cycle: int) -> CheckpointEntry:
        """Restore the nearest entry at or before *cycle*; returns it."""
        entry = self.nearest(cycle)
        if entry is None:
            raise CheckpointError(
                f"no checkpoint at or before cycle {cycle} "
                f"(ring starts at "
                f"{self._entries[0].cycle if self._entries else 'never'})"
            )
        self.sim.restore(entry.state)
        return entry

    def describe(self) -> str:
        """One-line ring summary for the debugger's ``info`` command."""
        if not self._entries:
            return "checkpoint ring: empty"
        cycles = [e.cycle for e in self._entries]
        return (
            f"checkpoint ring: {len(cycles)}/{self.capacity} entries, "
            f"every {self.interval} cycles, covering "
            f"{cycles[0]}..{cycles[-1]}"
        )
