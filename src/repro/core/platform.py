"""The MultiNoC platform builder — the library's main entry point.

The paper frames MultiNoC as "an exercise of implementing and making
available a design platform on top of which applications can be
effectively and rapidly prototyped" (platform-based design, Section 5).
:class:`MultiNoCPlatform` is that platform: describe the instance you
want (the paper's 2x2 by default, or any mesh with any number of
processor and memory IPs), :meth:`launch` it, and drive it through the
host API.

    >>> from repro import MultiNoCPlatform
    >>> session = MultiNoCPlatform.standard().launch()
    >>> session.host.sync()
    >>> session.run(1, "  LDI R1, 7\\n  LDI R2, 0xFFFF\\n  CLR R0\\n"
    ...             "  ST R1, R2, R0\\n  HALT")
    >>> session.host.monitor(1).printf_values
    [7]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..host.serial_software import SerialSoftware
from ..sim import Simulator
from ..system.config import SystemConfig
from ..system.multinoc import MultiNoC
from .program import Program

Address = Tuple[int, int]


class MultiNoCPlatform:
    """Describes a MultiNoC instance before it is built."""

    def __init__(
        self,
        mesh: Tuple[int, int] = (2, 2),
        n_processors: int = 2,
        n_memories: int = 1,
        serial_at: Address = (0, 0),
        processors_at: Optional[Dict[int, Address]] = None,
        memories_at: Optional[List[Address]] = None,
        topology=None,
        **config_overrides,
    ):
        from ..noc.topology import parse_topology

        topo = parse_topology(topology if topology is not None else tuple(mesh))
        width, height = topo.width, topo.height
        if processors_at is None or memories_at is None:
            free = [node for node in topo.nodes() if node != tuple(serial_at)]
            needed = n_processors + n_memories
            if needed > len(free):
                raise ValueError(
                    f"{needed} IPs do not fit a {width}x{height} mesh "
                    f"(only {len(free)} nodes free)"
                    if topo.kind == "mesh"
                    else f"{needed} IPs do not fit {topo.spec} "
                    f"(only {len(free)} nodes free)"
                )
            processors_at = {
                pid: free[pid - 1] for pid in range(1, n_processors + 1)
            }
            memories_at = free[n_processors : n_processors + n_memories]
        self.config = SystemConfig(
            mesh=(width, height),
            topology=topo.spec if topology is not None else None,
            serial=serial_at,
            processors=processors_at,
            memories=memories_at,
            **config_overrides,
        )
        self.config.validate()

    @classmethod
    def standard(cls, **config_overrides) -> "MultiNoCPlatform":
        """The paper's prototype: 2x2 mesh, 2 processors, 1 memory."""
        platform = cls.__new__(cls)
        platform.config = SystemConfig(**config_overrides)
        platform.config.validate()
        return platform

    def build(self, telemetry=None) -> MultiNoC:
        """Instantiate the hardware model only."""
        return MultiNoC(self.config, telemetry=telemetry)

    def launch(
        self,
        baud_divisor: int = 4,
        telemetry=None,
        strict_lockstep: bool = False,
    ) -> "PlatformSession":
        """Build the system, a simulator and a connected host.

        Pass ``telemetry=True`` (or a configured
        :class:`~repro.telemetry.TelemetrySink`) to record structured
        events across the NoC, the R8 cores and the host link; the sink
        is available as ``session.telemetry`` afterwards.

        ``strict_lockstep=True`` disables the kernel's idle skipping
        (CLI ``--no-idle-skip``) — architecturally identical, slower.
        """
        if telemetry is True:
            from ..telemetry import TelemetrySink

            telemetry = TelemetrySink()
        system = self.build(telemetry=telemetry)
        sim = system.make_simulator(strict_lockstep=strict_lockstep)
        host = SerialSoftware(system, baud_divisor=baud_divisor).connect(sim)
        if telemetry is not None:
            host.attach_telemetry(telemetry)
        return PlatformSession(self, system, sim, host, telemetry=telemetry)


@dataclass
class PlatformSession:
    """A live MultiNoC: system model + simulator + host software."""

    platform: MultiNoCPlatform
    system: MultiNoC
    sim: Simulator
    host: SerialSoftware
    telemetry: Optional[object] = None
    health: Optional[object] = None
    live: Optional[object] = None
    alerts: Optional[object] = None
    hostperf: Optional[object] = None
    flight: Optional[object] = None

    def live_stream(self, **kwargs):
        """Attach a :class:`~repro.telemetry.live.LiveStream`.

        Keyword arguments are forwarded to the stream's constructor
        (``stride``, ``tracks``, ``max_links``, ...).  The stream is
        wired to the system, simulator and host, stored as
        ``session.live`` and returned; subscribe callbacks or pass it to
        :meth:`serve_telemetry` / :class:`~repro.telemetry.top.MeshTop`.
        """
        from ..telemetry.live import LiveStream

        stream = LiveStream(**kwargs)
        stream.attach(self.sim, self.system, host=self.host)
        self.live = stream
        return stream

    def serve_telemetry(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        run_registry=None,
        name: str = "default",
    ):
        """Serve this session's live stream over localhost HTTP.

        Attaches a default :meth:`live_stream` first if none exists;
        returns the started :class:`~repro.telemetry.server.TelemetryServer`
        (its ``.address`` carries the bound port when ``port=0``).
        Pass a :class:`~repro.telemetry.registry.RunRegistry` as
        *run_registry* to also serve the run history at ``/runs``.
        """
        from ..telemetry.server import TelemetryServer

        if self.live is None:
            self.live_stream()
        server = TelemetryServer(
            self.live,
            self.system.stats.registry,
            host=host,
            port=port,
            run_registry=run_registry,
            name=name,
        )
        if self.alerts is not None:
            server.attach_alerts(self.alerts, name)
        return server.start()

    def alert_engine(self, rules, **kwargs):
        """Attach an alerting/SLO engine to this session's live stream.

        *rules* is a :class:`~repro.telemetry.alerts.RuleSet`, rule-file
        text, or a path to one; keyword arguments are forwarded to
        :class:`~repro.telemetry.alerts.AlertEngine` (``log``,
        ``notify``, ``sink``, ``registry``).  A default
        :meth:`live_stream` is attached first if none exists; the
        engine subscribes to its frames, is stored as
        ``session.alerts`` and returned.  Evaluation only *reads*
        frames — an alerted run stays bit-identical to an unalerted
        one.
        """
        from ..telemetry.alerts import AlertEngine, RuleSet, load_rules, parse_rules

        if isinstance(rules, str) and "\n" not in rules and len(rules) < 4096:
            import os

            if os.path.exists(rules):
                rules = load_rules(rules)
        if isinstance(rules, str):
            rules = parse_rules(rules)
        if not isinstance(rules, RuleSet):
            raise TypeError(
                "rules must be a RuleSet, rule-file text, or a path"
            )
        if self.live is None:
            self.live_stream()
        engine = AlertEngine(rules, **kwargs)
        engine.attach(self.live)
        self.alerts = engine
        return engine

    def monitor_health(self, **kwargs):
        """Attach a :class:`~repro.telemetry.health.HealthMonitor`.

        Keyword arguments are forwarded to the monitor's constructor
        (thresholds, ``sample_interval``, ``invariants``, ...).  The
        monitor is wired to the system, simulator and host, stored as
        ``session.health`` and returned.
        """
        from ..telemetry.health import HealthMonitor

        monitor = HealthMonitor(**kwargs)
        self.system.attach_health(monitor, self.sim, host=self.host)
        self.health = monitor
        return monitor

    def profile_host(self, *, start: bool = True, **kwargs):
        """Attach a sampling host profiler (the mode-preserving one).

        Keyword arguments are forwarded to
        :class:`~repro.telemetry.hostperf.HostPerfProfiler`
        (``interval``, ``history``, ``trace_memory``, ...).  The
        profiler is attached to the simulator, bound to the system's
        metrics registry (so ``/metrics`` carries host gauges), started
        on the calling thread unless ``start=False``, stored as
        ``session.hostperf`` and returned.  Sampling never changes the
        kernel's execution path — a profiled run stays bit-identical
        and keeps the quiescent fast path.
        """
        from ..telemetry.hostperf import HostPerfProfiler

        profiler = HostPerfProfiler(**kwargs)
        profiler.attach(self.sim)
        profiler.bind_metrics(self.system.stats.registry)
        if start:
            profiler.start()
        self.hostperf = profiler
        return profiler

    def flight_recorder(self, root, **kwargs):
        """Attach a crash flight recorder writing bundles under *root*.

        Keyword arguments are forwarded to
        :class:`~repro.telemetry.hostperf.FlightRecorder`
        (``keep_frames``).  If a live stream is attached, the recorder
        mirrors its frames as the black-box ring.  Stored as
        ``session.flight`` and returned; wrap the run in
        ``flight.armed(...)`` or call ``flight.record(exc, ...)`` from
        an exception handler.
        """
        from ..telemetry.hostperf import FlightRecorder

        recorder = FlightRecorder(root, **kwargs)
        if self.live is not None:
            recorder.watch(self.live)
        self.flight = recorder
        return recorder

    def record_run(
        self,
        *,
        registry=None,
        status: str = "ok",
        exit_code: int = 0,
        metrics: Optional[Dict[str, float]] = None,
        artifacts: Optional[Dict[str, str]] = None,
        timestamp: Optional[float] = None,
        meta: Optional[Dict[str, object]] = None,
        kind: str = "session",
        git_rev=None,
    ):
        """Append this session's outcome to the cross-run registry.

        Builds a ``multinoc-run/1`` record — configuration digest,
        machine fingerprint, cycle count, packet/latency summary, plus
        any caller *metrics* and *artifacts* — and appends it to
        *registry* (a :class:`~repro.telemetry.registry.RunRegistry`, a
        path, or ``None`` for the default ``.multinoc/runs`` /
        ``MULTINOC_RUNS_DIR`` root).  Returns the written record; the
        run's history then feeds ``multinoc runs list|trend``.

        ``git_rev=None`` skips the ``git rev-parse`` subprocess (hot
        paths, benchmarks); pass ``registry_module.AUTO`` or a string to
        record one.
        """
        from ..telemetry.registry import RunRegistry

        if not isinstance(registry, RunRegistry):
            registry = RunRegistry(registry)
        stats = self.system.stats
        summary = stats.latency_summary()
        base_metrics: Dict[str, float] = {
            "cycles": float(self.sim.cycle),
            "packets_injected": float(stats.packets_injected),
            "packets_delivered": float(stats.packets_delivered),
        }
        if summary["count"]:
            base_metrics.update(
                latency_mean=round(summary["mean"], 4),
                latency_p50=float(summary["p50"]),
                latency_p99=float(summary["p99"]),
                latency_max=float(summary["max"]),
            )
        if self.hostperf is not None:
            base_metrics.update(self.hostperf.run_metrics())
        base_metrics.update(metrics or {})
        return registry.record(
            kind=kind,
            status=status,
            exit_code=exit_code,
            timestamp=timestamp,
            metrics=base_metrics,
            config=self.system.config,
            artifacts=artifacts,
            meta={
                "mesh": list(self.system.config.mesh),
                "topology": self.system.topology.spec,
                "processors": len(self.system.config.processors),
                **(meta or {}),
            },
            git_rev=git_rev,
        )

    def analyze(self):
        """Post-mortem analysis of this session's telemetry.

        Flushes deferred telemetry (CPU PC samples) and runs
        :func:`~repro.telemetry.analysis.analyze_trace` over the sink;
        raises if the session was launched without telemetry.
        """
        if self.telemetry is None:
            raise RuntimeError(
                "session has no telemetry sink; launch(telemetry=True) first"
            )
        from ..telemetry.analysis import analyze_trace

        self.system.flush_telemetry()
        return analyze_trace(self.telemetry)

    def processor_address(self, pid: int) -> Address:
        return self.system.config.processors[pid]

    def memory_address(self, index: int = 0) -> Address:
        return self.system.config.memories[index]

    def run(
        self,
        pid: int,
        program: Union[str, Program],
        max_cycles: int = 5_000_000,
    ) -> Program:
        """Assemble (if needed), load, activate and run to HALT on *pid*."""
        if isinstance(program, str):
            program = Program.from_source(program, name=f"proc{pid}")
        self.host.run_program(
            self.processor_address(pid), pid, program.obj, max_cycles=max_cycles
        )
        return program

    def start(self, pid: int, program: Union[str, Program]) -> Program:
        """Load and activate without waiting for HALT (for parallel runs)."""
        if isinstance(program, str):
            program = Program.from_source(program, name=f"proc{pid}")
        if not self.host.synced:
            self.host.sync()
        addr = self.processor_address(pid)
        self.host.load_program(addr, program.obj)
        self.host.activate(addr)
        return program

    def wait_all_halted(self, max_cycles: int = 10_000_000) -> int:
        """Run until every processor halts; returns cycles consumed."""
        return self.sim.run_until(
            lambda: self.system.all_halted, max_cycles=max_cycles,
            label="all processors halted",
        )

    def read(self, pid_or_mem, address: int, count: int) -> List[int]:
        """Read words from a processor's (int pid) or memory's ("memN")
        storage through the host, like Figure 9's debug reads."""
        return self.host.read_memory(self._addr(pid_or_mem), address, count)

    def write(self, pid_or_mem, address: int, words) -> None:
        self.host.write_memory(self._addr(pid_or_mem), address, list(words))

    def _addr(self, pid_or_mem) -> Address:
        if isinstance(pid_or_mem, int):
            return self.processor_address(pid_or_mem)
        if isinstance(pid_or_mem, str) and pid_or_mem.startswith("mem"):
            return self.memory_address(int(pid_or_mem[3:] or "0"))
        return pid_or_mem  # assume an explicit (x, y)
