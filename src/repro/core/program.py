"""User-facing program objects."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..r8.assembler import ObjectCode, assemble
from ..r8.simulator import R8Simulator


@dataclass
class Program:
    """An assembled R8 program with its source and symbol table."""

    source: str
    obj: ObjectCode
    name: str = "<program>"

    @classmethod
    def from_source(cls, source: str, name: str = "<program>") -> "Program":
        return cls(source=source, obj=assemble(source, filename=name), name=name)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Program":
        path = Path(path)
        return cls.from_source(path.read_text(), name=str(path))

    def symbol(self, name: str) -> int:
        """Address of a label/equ, for reading results back."""
        try:
            return self.obj.symbols[name]
        except KeyError as exc:
            raise KeyError(
                f"{self.name}: no symbol {name!r}; "
                f"known: {sorted(self.obj.symbols)}"
            ) from exc

    def simulate(
        self,
        max_instructions: int = 1_000_000,
        scanf_values: Optional[list] = None,
    ) -> R8Simulator:
        """Run on the stand-alone R8 Simulator (flow step 1, Figure 8)."""
        values = list(scanf_values or [])
        sim = R8Simulator(on_scanf=(lambda: values.pop(0)) if values else None)
        sim.load(self.obj)
        sim.activate()
        sim.run(max_instructions=max_instructions)
        return sim

    @property
    def size_words(self) -> int:
        return self.obj.size_words
