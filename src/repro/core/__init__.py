"""Public platform API: build, launch and drive MultiNoC instances."""

from .platform import MultiNoCPlatform, PlatformSession
from .program import Program

__all__ = ["MultiNoCPlatform", "PlatformSession", "Program"]
