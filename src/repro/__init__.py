"""MultiNoC: a multiprocessing system enabled by a network on chip.

A full-system reproduction of Mello, Möller, Calazans & Moraes
(DATE 2004): the Hermes wormhole NoC, the R8 soft processor with its
toolchain, the memory/serial/processor IP cores, the host-side serial
software, and the FPGA prototyping models behind the paper's Section 3
report.

Quick start::

    from repro import MultiNoCPlatform

    session = MultiNoCPlatform.standard().launch()
    session.host.sync()
    session.run(1, '''
            CLR  R0
            LDI  R1, 42
            LDI  R2, 0xFFFF
            ST   R1, R2, R0   ; printf(42)
            HALT
    ''')
    assert session.host.monitor(1).printf_values == [42]
"""

from .core import MultiNoCPlatform, PlatformSession, Program
from .debug import SystemDebugger
from .system import MultiNoC, SystemConfig
from .telemetry import (
    FlightRecorder,
    HealthMonitor,
    HealthViolation,
    HostPerfProfiler,
    KernelProfiler,
    MetricsRegistry,
    TelemetrySink,
)

__version__ = "1.0.0"

__all__ = [
    "FlightRecorder",
    "HealthMonitor",
    "HealthViolation",
    "HostPerfProfiler",
    "KernelProfiler",
    "MetricsRegistry",
    "MultiNoC",
    "MultiNoCPlatform",
    "PlatformSession",
    "Program",
    "SystemConfig",
    "SystemDebugger",
    "TelemetrySink",
    "__version__",
]
