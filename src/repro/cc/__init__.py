"""R8C: a small C compiler targeting the R8 (the paper's future work)."""

from .compiler import compile_source, compile_to_asm
from .lexer import CcError
from .parser import parse

__all__ = ["CcError", "compile_source", "compile_to_asm", "parse"]
