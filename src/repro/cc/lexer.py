"""Lexer for R8C, the C subset compiled to R8 assembly."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List


class CcError(Exception):
    """Any compile-time error, with source position."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


KEYWORDS = {
    "int",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "!", "~",
    "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'num', 'ident', 'kw', 'op', 'eof'
    text: str
    value: int = 0
    line: int = 0


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<num>\d+)
  | (?P<char>'(?:[^'\\]|\\.)')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        m = _TOKEN_RE.match(source, pos)
        if m:
            text = m.group()
            line += text.count("\n")
            pos = m.end()
            kind = m.lastgroup
            if kind in ("ws", "comment"):
                continue
            if kind == "hex":
                tokens.append(Token("num", text, int(text, 16), line))
            elif kind == "num":
                tokens.append(Token("num", text, int(text), line))
            elif kind == "char":
                body = text[1:-1]
                if body.startswith("\\"):
                    value = _ESCAPES.get(body[1], ord(body[1]))
                else:
                    value = ord(body)
                tokens.append(Token("num", text, value, line))
            elif kind == "ident":
                tokens.append(
                    Token("kw" if text in KEYWORDS else "ident", text, 0, line)
                )
            continue
        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token("op", op, 0, line))
                pos += len(op)
                break
        else:
            raise CcError(f"unexpected character {source[pos]!r}", line)
    tokens.append(Token("eof", "", 0, line))
    return tokens
