"""Compiler driver: R8C source -> assembly -> object code.

The paper lists "a C compiler to automatically generate R8 assembly
code, allowing faster software implementation" as future work
(Section 5); this is that compiler, for a practical C subset:

* 16-bit ``int`` everywhere (unsigned comparison semantics),
* global variables and arrays, function-local variables and parameters,
* ``if/else``, ``while``, ``for``, ``break``, ``continue``, ``return``,
* full expression syntax including ``* / %`` (software routines),
  shifts, bitwise and short-circuit logical operators,
* MultiNoC builtins: ``printf(v)``, ``scanf()``, ``wait(p)``,
  ``notify(p)``, ``peek(addr)``, ``poke(addr, v)``, ``halt()``.

Not supported (diagnosed as errors): pointers beyond the peek/poke
builtins, local arrays, recursion *is* supported, block-scoped
shadowing is not.
"""

from __future__ import annotations

from ..r8.assembler import ObjectCode, assemble
from .codegen import CodeGenerator
from .lexer import CcError
from .parser import parse


def compile_to_asm(
    source: str, stack_top: int = 0x03FF, peephole: bool = True
) -> str:
    """Compile R8C *source* to R8 assembly text."""
    unit = parse(source)
    return CodeGenerator(unit, stack_top=stack_top, peephole=peephole).generate()


def compile_source(
    source: str, stack_top: int = 0x03FF, peephole: bool = True
) -> ObjectCode:
    """Compile R8C *source* straight to object code."""
    return assemble(
        compile_to_asm(source, stack_top, peephole=peephole), filename="<r8c>"
    )
