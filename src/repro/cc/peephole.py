"""Peephole optimisation on generated R8 assembly.

The code generator is a straightforward stack machine; these local
rewrites remove its most common waste without any global analysis:

* **push/pop forwarding** — ``PUSH R1 ... POP R2`` with a short, safe
  window in between becomes ``MOV R2, R1 ...``, trading two memory
  operations (7 cycles) for a register move (2 cycles).
* **jump-to-next elimination** — an unconditional jump whose target is
  the immediately following label disappears (common at if/else ends).

Every rewrite is flag-safe: MOV/LDI/LDH/LDL do not touch the status
flags, so the condition codes observed by later branches are unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

_INSTR_RE = re.compile(r"^\s+([A-Z0-9]+)\s*(.*?)\s*(;.*)?$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*$")

#: Instructions allowed inside a push/pop forwarding window, provided
#: their destination register is not the POP target.  Stack and control
#: flow operations are excluded by omission.
_SAFE_WINDOW_OPS = {
    "LDI", "LDH", "LDL", "MOV", "LD",
    "ADD", "ADDC", "SUB", "SUBC", "AND", "OR", "XOR", "NOT",
    "SL0", "SL1", "SR0", "SR1",
}

#: Longest window (in instructions) bridged by push/pop forwarding.
MAX_WINDOW = 8


def _parse(line: str) -> Tuple[Optional[str], Optional[str], List[str]]:
    """(label, mnemonic, operands) of one line (either may be None)."""
    m = _LABEL_RE.match(line)
    if m:
        return m.group(1), None, []
    m = _INSTR_RE.match(line)
    if m:
        ops = [o.strip() for o in m.group(2).split(",")] if m.group(2) else []
        return None, m.group(1), ops
    return None, None, []


def _dest_register(mnemonic: str, operands: List[str]) -> Optional[str]:
    """The register an instruction writes, if any (window ops only)."""
    if mnemonic in ("ST",):
        return None
    if operands and operands[0].startswith("R"):
        return operands[0]
    return None


@dataclass
class PeepholeStats:
    """What the optimiser did."""

    push_pop_forwarded: int = 0
    jumps_removed: int = 0

    @property
    def total(self) -> int:
        return self.push_pop_forwarded + self.jumps_removed


def optimize(lines: List[str]) -> Tuple[List[str], PeepholeStats]:
    """Apply all peephole rewrites until a fixed point."""
    stats = PeepholeStats()
    changed = True
    while changed:
        lines, a = _forward_push_pop(lines)
        lines, b = _drop_jump_to_next(lines)
        stats.push_pop_forwarded += a
        stats.jumps_removed += b
        changed = bool(a or b)
    return lines, stats


def _forward_push_pop(lines: List[str]) -> Tuple[List[str], int]:
    out: List[str] = []
    hits = 0
    i = 0
    while i < len(lines):
        label, mnemonic, operands = _parse(lines[i])
        if mnemonic == "PUSH" and operands:
            source = operands[0]
            window: List[str] = []
            j = i + 1
            matched = False
            while j < len(lines) and len(window) <= MAX_WINDOW:
                w_label, w_mn, w_ops = _parse(lines[j])
                if w_label is not None or w_mn is None:
                    break  # labels / unparsable lines end the window
                if w_mn == "POP" and w_ops:
                    target = w_ops[0]
                    # the window may clobber the *source* freely (the MOV
                    # captures it first) but must not touch the target at
                    # all — neither write nor read its pre-POP value.
                    safe = all(
                        _parse(w)[1] in _SAFE_WINDOW_OPS
                        and target not in _parse(w)[2]
                        for w in window
                    )
                    if safe and target != source:
                        out.append(f"        MOV  {target}, {source}")
                        out.extend(window)
                        hits += 1
                        matched = True
                        i = j + 1
                    break
                if w_mn not in _SAFE_WINDOW_OPS:
                    break
                window.append(lines[j])
                j += 1
            if matched:
                continue
        out.append(lines[i])
        i += 1
    return out, hits


def _drop_jump_to_next(lines: List[str]) -> Tuple[List[str], int]:
    out: List[str] = []
    hits = 0
    i = 0
    while i < len(lines):
        # pattern: LDI R15, <label> / JMPR R15 / <label>:
        if i + 2 < len(lines):
            _, mn0, ops0 = _parse(lines[i])
            _, mn1, ops1 = _parse(lines[i + 1])
            label2, _, _ = _parse(lines[i + 2])
            if (
                mn0 == "LDI"
                and len(ops0) == 2
                and ops0[0] == "R15"
                and mn1 == "JMPR"
                and ops1 == ["R15"]
                and label2 is not None
                and ops0[1] == label2
            ):
                out.append(lines[i + 2])
                hits += 1
                i += 3
                continue
        # pattern: JMPD <label> / <label>:
        if i + 1 < len(lines):
            _, mn0, ops0 = _parse(lines[i])
            label1, _, _ = _parse(lines[i + 1])
            if (
                mn0 == "JMPD"
                and len(ops0) == 1
                and label1 is not None
                and ops0[0] == label1
            ):
                out.append(lines[i + 1])
                hits += 1
                i += 2
                continue
        out.append(lines[i])
        i += 1
    return out, hits
