"""Abstract syntax tree for R8C."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# -- expressions -----------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """Array element ``name[index]``."""

    name: str = ""
    index: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Assign(Expr):
    """``target = value`` where target is Var or Index; op for += etc."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None
    op: str = "="


# -- statements --------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class LocalDecl(Stmt):
    name: str = ""
    init: Optional[Expr] = None


# -- top level ----------------------------------------------------------------------


@dataclass
class GlobalVar:
    name: str
    size: int = 1  # >1 for arrays
    init: List[int] = field(default_factory=list)
    line: int = 0


@dataclass
class Function:
    name: str
    params: List[str]
    body: Block
    returns_value: bool = True
    line: int = 0


@dataclass
class TranslationUnit:
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[Function] = field(default_factory=list)
