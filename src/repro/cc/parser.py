"""Recursive-descent parser for R8C."""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .lexer import CcError, Token, tokenize

#: binary operator precedence (higher binds tighter)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            got = self.peek()
            want = text if text is not None else kind
            raise CcError(f"expected {want!r}, got {got.text!r}", got.line)
        return tok

    # -- top level -------------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while self.peek().kind != "eof":
            self._parse_top_level(unit)
        return unit

    def _parse_top_level(self, unit: ast.TranslationUnit) -> None:
        tok = self.peek()
        if tok.kind != "kw" or tok.text not in ("int", "void"):
            raise CcError(
                f"expected declaration, got {tok.text!r}", tok.line
            )
        returns_value = tok.text == "int"
        self.next()
        name = self.expect("ident")
        if self.accept("op", "("):
            params = []
            if not self.accept("op", ")"):
                while True:
                    self.expect("kw", "int")
                    params.append(self.expect("ident").text)
                    if self.accept("op", ")"):
                        break
                    self.expect("op", ",")
            body = self._parse_block()
            unit.functions.append(
                ast.Function(name.text, params, body, returns_value, name.line)
            )
            return
        if not returns_value:
            raise CcError("void is only valid for functions", name.line)
        # global variable or array
        size = 1
        init: List[int] = []
        if self.accept("op", "["):
            size_tok = self.expect("num")
            size = size_tok.value
            if size < 1:
                raise CcError("array size must be positive", size_tok.line)
            self.expect("op", "]")
        if self.accept("op", "="):
            if self.accept("op", "{"):
                while True:
                    init.append(self._parse_const())
                    if self.accept("op", "}"):
                        break
                    self.expect("op", ",")
            else:
                init.append(self._parse_const())
        if len(init) > size:
            raise CcError(
                f"{len(init)} initialisers for {size}-element object", name.line
            )
        self.expect("op", ";")
        unit.globals.append(ast.GlobalVar(name.text, size, init, name.line))

    def _parse_const(self) -> int:
        negative = bool(self.accept("op", "-"))
        tok = self.expect("num")
        return (-tok.value if negative else tok.value) & 0xFFFF

    # -- statements ----------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        brace = self.expect("op", "{")
        block = ast.Block(line=brace.line)
        while not self.accept("op", "}"):
            block.body.append(self._parse_statement())
        return block

    def _parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.kind == "op" and tok.text == ";":
            self.next()
            return ast.Block(line=tok.line)  # empty statement
        if tok.kind == "op" and tok.text == "{":
            return self._parse_block()
        if tok.kind == "kw":
            if tok.text == "int":
                self.next()
                name = self.expect("ident")
                init = None
                if self.accept("op", "="):
                    init = self._parse_expression()
                self.expect("op", ";")
                return ast.LocalDecl(name=name.text, init=init, line=name.line)
            if tok.text == "if":
                self.next()
                self.expect("op", "(")
                cond = self._parse_expression()
                self.expect("op", ")")
                then = self._parse_statement()
                otherwise = None
                if self.accept("kw", "else"):
                    otherwise = self._parse_statement()
                return ast.If(cond=cond, then=then, otherwise=otherwise, line=tok.line)
            if tok.text == "while":
                self.next()
                self.expect("op", "(")
                cond = self._parse_expression()
                self.expect("op", ")")
                return ast.While(cond=cond, body=self._parse_statement(), line=tok.line)
            if tok.text == "for":
                self.next()
                self.expect("op", "(")
                init = None if self.peek().text == ";" else self._parse_expression()
                self.expect("op", ";")
                cond = None if self.peek().text == ";" else self._parse_expression()
                self.expect("op", ";")
                step = None if self.peek().text == ")" else self._parse_expression()
                self.expect("op", ")")
                return ast.For(
                    init=init, cond=cond, step=step,
                    body=self._parse_statement(), line=tok.line,
                )
            if tok.text == "return":
                self.next()
                value = None
                if self.peek().text != ";":
                    value = self._parse_expression()
                self.expect("op", ";")
                return ast.Return(value=value, line=tok.line)
            if tok.text == "break":
                self.next()
                self.expect("op", ";")
                return ast.Break(line=tok.line)
            if tok.text == "continue":
                self.next()
                self.expect("op", ";")
                return ast.Continue(line=tok.line)
        expr = self._parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr=expr, line=tok.line)

    # -- expressions -----------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_binary(1)
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            if not isinstance(left, (ast.Var, ast.Index)):
                raise CcError("assignment target must be a variable", tok.line)
            self.next()
            value = self._parse_assignment()
            return ast.Assign(target=left, value=value, op=tok.text, line=tok.line)
        return left

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self.peek()
            prec = _PRECEDENCE.get(tok.text) if tok.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(op=tok.text, left=left, right=right, line=tok.line)

    def _parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~", "+"):
            self.next()
            operand = self._parse_unary()
            if tok.text == "+":
                return operand
            return ast.Unary(op=tok.text, operand=operand, line=tok.line)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.next()
            target = self._parse_unary()
            if not isinstance(target, (ast.Var, ast.Index)):
                raise CcError("++/-- needs a variable", tok.line)
            return ast.Assign(
                target=target,
                value=ast.Num(value=1, line=tok.line),
                op="+=" if tok.text == "++" else "-=",
                line=tok.line,
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        tok = self.next()
        if tok.kind == "num":
            return ast.Num(value=tok.value & 0xFFFF, line=tok.line)
        if tok.kind == "op" and tok.text == "(":
            inner = self._parse_expression()
            self.expect("op", ")")
            return inner
        if tok.kind == "ident":
            if self.accept("op", "("):
                args: List[ast.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self._parse_expression())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                return ast.Call(name=tok.text, args=args, line=tok.line)
            if self.accept("op", "["):
                index = self._parse_expression()
                self.expect("op", "]")
                return ast.Index(name=tok.text, index=index, line=tok.line)
            return ast.Var(name=tok.text, line=tok.line)
        raise CcError(f"unexpected {tok.text!r} in expression", tok.line)


def parse(source: str) -> ast.TranslationUnit:
    """Parse R8C source into its AST."""
    return Parser(source).parse()
