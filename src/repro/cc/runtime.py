"""Runtime support routines emitted on demand by the code generator.

All routines take their left operand in R2 and right operand in R1,
return in R1 (remainder in R2 for ``__divmod``), and may clobber R3-R6.
They never touch R0 (zero) or R14 (frame pointer).
"""

from __future__ import annotations

STARTUP_TEMPLATE = """
; startup stub: zero register, stack, call main, halt
        CLR  R0
        LDI  R15, {stack_top}
        LDSP R15
        LDI  R15, main
        JSRR R15
        HALT
"""

RUNTIME_ROUTINES = {
    "__mul": """
__mul:  ; R1 = R2 * R1 (mod 2^16), shift-and-add
        CLR  R3
__mul_loop:
        OR   R4, R1, R1
        JMPZD __mul_done
        LDI  R4, 1
        AND  R4, R1, R4
        JMPZD __mul_skip
        ADD  R3, R3, R2
__mul_skip:
        SL0  R2, R2
        SR0  R1, R1
        JMP  __mul_loop
__mul_done:
        MOV  R1, R3
        RTS
""",
    "__divmod": """
__divmod: ; R1 = R2 / R1, R2 = R2 % R1 (unsigned restoring division)
        OR   R3, R1, R1
        JMPZD __div_zero
        CLR  R3            ; remainder
        CLR  R4            ; quotient
        LDI  R5, 16
__div_loop:
        SL0  R3, R3        ; rem <<= 1
        SL0  R2, R2        ; a <<= 1, C = old msb(a)
        JMPCD __div_c1
        JMPD  __div_nc
__div_c1:
        LDI  R6, 1
        OR   R3, R3, R6    ; rem |= msb
__div_nc:
        SL0  R4, R4        ; quot <<= 1
        SUB  R6, R3, R1
        JMPCD __div_skip   ; rem < divisor
        MOV  R3, R6
        LDI  R6, 1
        OR   R4, R4, R6
__div_skip:
        LDI  R6, 1
        SUB  R5, R5, R6
        JMPZD __div_done
        JMP  __div_loop
__div_done:
        MOV  R1, R4
        MOV  R2, R3
        RTS
__div_zero:               ; divide by zero: quotient FFFF, remainder a
        LDI  R1, 0xFFFF
        RTS
""",
    "__div": """
__div:  ; quotient only
        LDI  R3, __divmod
        JSRR R3
        RTS
""",
    "__mod": """
__mod:  ; remainder only
        LDI  R3, __divmod
        JSRR R3
        MOV  R1, R2
        RTS
""",
    "__shl": """
__shl:  ; R1 = R2 << R1
        OR   R3, R1, R1
        JMPZD __shl_done
__shl_loop:
        SL0  R2, R2
        LDI  R3, 1
        SUB  R1, R1, R3
        JMPZD __shl_done
        JMP  __shl_loop
__shl_done:
        MOV  R1, R2
        RTS
""",
    "__shr": """
__shr:  ; R1 = R2 >> R1 (logical)
        OR   R3, R1, R1
        JMPZD __shr_done
__shr_loop:
        SR0  R2, R2
        LDI  R3, 1
        SUB  R1, R1, R3
        JMPZD __shr_done
        JMP  __shr_loop
__shr_done:
        MOV  R1, R2
        RTS
""",
}
