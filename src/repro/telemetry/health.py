"""Online health monitoring: watchdogs, invariants, time-series sampling.

The passive telemetry layer (events, metrics, exporters) records what the
platform did; this module watches it *while it runs* and localises
pathologies instead of letting them surface as a bare timeout.  A single
:class:`HealthMonitor` rides the simulator's watcher hook
(:meth:`~repro.sim.kernel.Simulator.add_watcher`) and has three pillars:

**Watchdogs** — always on while attached, evaluated every
``check_interval`` cycles:

* *deadlock*: no flit handshake anywhere in the mesh while packets are
  in flight (or routers hold state) for ``deadlock_cycles`` — builds the
  port wait-for graph and names the blocking cycle or root blocker;
* *starvation*: the oldest in-flight packet exceeds ``max_packet_age``;
* *cpu stall*: an active R8 core whose ``(pc, retired)`` progress tuple
  is frozen for ``cpu_stall_cycles``;
* *host timeout*: a host serial transaction open longer than
  ``host_transaction_cycles``.

**Invariant checks** — opt-in (``invariants=True``), per-cycle with
``check_interval=1`` or strided otherwise:

* packet conservation: ``injected == delivered - unmatched + in_flight
  + pruned``;
* flit conservation per router: FIFO occupancy equals flits received
  minus flits sent (assumes no mid-run ``reset()``);
* FIFO occupancy bounds: ``0 <= len <= capacity``;
* XY-routing legality of every open connection (no illegal turns);
* single-producer discipline: each output port owned by at most one
  input, consistently in both direction tables.

**Time-series sampler** — when ``sample_interval`` is set, gauges and
derived probes (per-router link utilisation, FIFO occupancy, per-core
IPC, in-flight packets) are snapshotted every K cycles into fixed
windows, exportable as CSV/JSON and renderable as ASCII sparklines.

Every failure is a structured :class:`HealthViolation` naming component,
cycle and a state snapshot; ``on_violation="record"`` collects instead
of raising.  A detached simulation is bit-identical to an unmonitored
one: the monitor only observes, never drives, and the simulator pays a
single ``None``-check on the cold timeout path when no monitor is
attached.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..noc.routing import OPPOSITE, PORT_DELTA, Port, xy_route
from ..noc.topology import port_label
from ..sim.kernel import stride_points

Address = Tuple[int, int]

#: Legal XY turns: with X corrected before Y, a connection entering from
#: a Y port may only continue in Y or deliver locally, and no connection
#: may u-turn back out of its own direction.
_XY_LEGAL: Dict[Port, frozenset] = {
    Port.LOCAL: frozenset(
        {Port.EAST, Port.WEST, Port.NORTH, Port.SOUTH, Port.LOCAL}
    ),
    Port.EAST: frozenset({Port.WEST, Port.NORTH, Port.SOUTH, Port.LOCAL}),
    Port.WEST: frozenset({Port.EAST, Port.NORTH, Port.SOUTH, Port.LOCAL}),
    Port.NORTH: frozenset({Port.SOUTH, Port.LOCAL}),
    Port.SOUTH: frozenset({Port.NORTH, Port.LOCAL}),
}


class HealthViolation(Exception):
    """A watchdog or invariant failure, with a structured payload.

    Attributes
    ----------
    kind:
        ``"deadlock"``, ``"starvation"``, ``"cpu_stall"``,
        ``"host_timeout"`` or ``"invariant.<name>"``.
    component:
        Name of the failing component (router, core, NI, "noc", "host").
    cycle:
        Simulation cycle at which the violation was detected.
    details:
        JSON-friendly state snapshot; for deadlocks this carries the
        wait-for graph, FIFO snapshots and last-movement cycles.
    """

    def __init__(
        self,
        kind: str,
        component: str,
        cycle: int,
        message: str,
        details: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(f"[{kind}] {component} @cycle {cycle}: {message}")
        self.kind = kind
        self.component = component
        self.cycle = cycle
        self.message = message
        self.details: Dict[str, Any] = details if details is not None else {}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "component": self.component,
            "cycle": self.cycle,
            "message": self.message,
            "details": self.details,
        }


# ---------------------------------------------------------------------------
# time-series sampler
# ---------------------------------------------------------------------------

#: pure-ASCII intensity ramp — safe for CI logs, pipes and diffs
RAMP_ASCII = " .:-=+*#%@"
#: unicode block ramp — crisper on a real terminal
RAMP_BLOCKS = " ▁▂▃▄▅▆▇█"
_RAMP = RAMP_ASCII  # backwards-compatible alias


def terminal_is_rich(stream=None) -> bool:
    """True when *stream* (default stdout) is an interactive terminal
    and the user has not opted out via the ``NO_COLOR`` convention.

    Renderers use this to pick between unicode/ANSI output and the
    pure-ASCII fallback, so piped output and CI logs stay readable.
    """
    if os.environ.get("NO_COLOR"):
        return False
    stream = stream if stream is not None else sys.stdout
    isatty = getattr(stream, "isatty", None)
    try:
        return bool(isatty and isatty())
    except (ValueError, OSError):  # closed/replaced stream
        return False


def glyph_ramp(ascii_only: Optional[bool] = None) -> str:
    """The intensity ramp to render with; ``None`` auto-detects the TTY."""
    if ascii_only is None:
        ascii_only = not terminal_is_rich()
    return RAMP_ASCII if ascii_only else RAMP_BLOCKS


class TimeSeriesSampler:
    """Strided snapshots of zero-arg probes into fixed-size windows.

    Each probe is sampled every ``interval`` cycles; the newest ``window``
    samples per series are kept (older ones roll off), bounding memory on
    unbounded runs exactly like the telemetry sink's ring buffer.
    """

    def __init__(self, interval: int, window: int = 512):
        if interval < 1:
            raise ValueError("sample interval must be at least 1 cycle")
        if window < 1:
            raise ValueError("sample window must hold at least 1 sample")
        self.interval = interval
        self.window = window
        self._probes: Dict[str, Callable[[], float]] = {}
        self.series: Dict[str, Deque[Tuple[int, float]]] = {}

    def add_probe(self, name: str, fn: Callable[[], float]) -> None:
        """Register a gauge probe; *fn()* is read at every sample point."""
        self._probes[name] = fn
        self.series[name] = deque(maxlen=self.window)

    def add_rate_probe(
        self, name: str, fn: Callable[[], float], scale: float = 1.0
    ) -> None:
        """Register a per-cycle rate over a monotone counter.

        Records ``(fn() - previous) * scale / interval`` — e.g. with
        ``scale=2`` a flit counter becomes link utilisation in [0, 1]
        (the 2-cycle handshake bound).  The first sample is 0.
        """
        state: List[Optional[float]] = [None]
        interval = self.interval

        def probe() -> float:
            current = fn()
            previous, state[0] = state[0], current
            if previous is None:
                return 0.0
            return (current - previous) * scale / interval

        self.add_probe(name, probe)

    def sample(self, cycle: int) -> None:
        for name, fn in self._probes.items():
            self.series[name].append((cycle, float(fn())))

    def append(self, name: str, cycle: int, value: float) -> None:
        """Record an externally produced sample point.

        Creates the series on first use.  This is how consumers of
        remote live frames (``multinoc top`` attached over HTTP) reuse
        the sampler's windowing and sparkline rendering without having
        local probes to call.
        """
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = deque(maxlen=self.window)
        series.append((cycle, float(value)))

    # -- export -----------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump: per-series parallel cycle/value arrays."""
        return {
            "interval": self.interval,
            "window": self.window,
            "series": {
                name: {
                    "cycles": [c for c, _ in points],
                    "values": [v for _, v in points],
                }
                for name, points in self.series.items()
            },
        }

    def to_csv(self) -> str:
        """``cycle,series,value`` rows, cycle-major."""
        rows = [
            (cycle, name, value)
            for name, points in self.series.items()
            for cycle, value in points
        ]
        rows.sort()
        lines = ["cycle,series,value"]
        lines += [f"{c},{name},{v:g}" for c, name, v in rows]
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_csv())
        return path

    # -- rendering --------------------------------------------------------

    def sparkline(
        self, name: str, width: int = 64, ascii: Optional[bool] = None
    ) -> str:
        """One series as an intensity strip (newest on the right).

        ``ascii=None`` auto-detects: unicode blocks on an interactive
        terminal, the pure-ASCII ramp when output is piped/captured or
        ``NO_COLOR`` is set, so CI logs stay readable.
        """
        points = self.series.get(name)
        if not points:
            return ""
        ramp = glyph_ramp(ascii)
        values = [v for _, v in points]
        if len(values) > width:
            # bucket-average down to `width` columns
            step = len(values) / width
            values = [
                sum(values[int(i * step) : max(int((i + 1) * step), int(i * step) + 1)])
                / max(int((i + 1) * step) - int(i * step), 1)
                for i in range(width)
            ]
        lo = min(0.0, min(values))
        hi = max(values)
        span = (hi - lo) or 1.0
        return "".join(
            ramp[int((v - lo) / span * (len(ramp) - 1))] for v in values
        )

    def timeline(
        self,
        names: Optional[Iterable[str]] = None,
        width: int = 64,
        ascii: Optional[bool] = None,
    ) -> str:
        """All (or selected) series as aligned sparkline rows."""
        names = list(names) if names is not None else sorted(self.series)
        populated = [n for n in names if self.series.get(n)]
        if not populated:
            return "(no samples)"
        first = min(self.series[n][0][0] for n in populated)
        last = max(self.series[n][-1][0] for n in populated)
        label_w = max(len(n) for n in populated)
        ranges = {}
        for name in populated:
            values = [v for _, v in self.series[name]]
            ranges[name] = f"[{min(values):g}..{max(values):g}]"
        range_w = max(len(r) for r in ranges.values())
        lines = [
            f"cycles {first}..{last}, one sample per {self.interval} cycles"
        ]
        for name in populated:
            lines.append(
                f"{name:<{label_w}} {ranges[name]:>{range_w}} "
                f"|{self.sparkline(name, width, ascii=ascii)}|"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the monitor
# ---------------------------------------------------------------------------


class HealthMonitor:
    """Runtime health monitor for a simulated MultiNoC (or bare mesh).

    Parameters
    ----------
    check_interval:
        Watchdogs and invariants run every this many cycles (1 =
        per-cycle).
    sample_interval:
        Time-series sampling stride; 0 disables the sampler.
    deadlock_cycles / max_packet_age / cpu_stall_cycles /
    host_transaction_cycles:
        Watchdog thresholds in cycles; ``None`` disables that watchdog.
    invariants:
        Enable the online invariant checks (opt-in: they walk every
        router per check).
    on_violation:
        ``"raise"`` (default) raises the :class:`HealthViolation`;
        ``"record"`` collects it in :attr:`violations` (deduplicated by
        (kind, component)) and keeps running.
    """

    def __init__(
        self,
        *,
        check_interval: int = 64,
        sample_interval: int = 0,
        sample_window: int = 512,
        deadlock_cycles: Optional[int] = 2_000,
        max_packet_age: Optional[int] = 50_000,
        cpu_stall_cycles: Optional[int] = 200_000,
        host_transaction_cycles: Optional[int] = 1_000_000,
        invariants: bool = False,
        on_violation: str = "raise",
    ):
        if check_interval < 1:
            raise ValueError("check_interval must be at least 1 cycle")
        if on_violation not in ("raise", "record"):
            raise ValueError("on_violation must be 'raise' or 'record'")
        self.check_interval = check_interval
        self.sample_interval = sample_interval
        self.sample_window = sample_window
        self.deadlock_cycles = deadlock_cycles
        self.max_packet_age = max_packet_age
        self.cpu_stall_cycles = cpu_stall_cycles
        self.host_transaction_cycles = host_transaction_cycles
        self.invariants = invariants
        self.on_violation = on_violation

        self.sim = None
        self.mesh = None
        self.topology = None
        self.stats = None
        self.nis: List[Any] = []
        self.processors: List[Any] = []
        self.host = None
        self.sampler: Optional[TimeSeriesSampler] = None
        self.violations: List[HealthViolation] = []
        self._recorded_keys: set = set()
        self.checks_run = 0

        self._router_totals: Dict[Address, int] = {}
        self._last_router_movement: Dict[Address, int] = {}
        self._last_global_movement = 0
        self._cpu_progress: Dict[str, Tuple[Optional[tuple], int]] = {}
        self._reported_starvation: Optional[tuple] = None
        self._reported_host_txn: Optional[tuple] = None

    # -- wiring ------------------------------------------------------------

    def attach(
        self,
        sim,
        system=None,
        *,
        mesh=None,
        stats=None,
        nis: Iterable[Any] = (),
        processors: Iterable[Any] = (),
        host=None,
    ) -> "HealthMonitor":
        """Hook into *sim* via its watcher list; returns self.

        Pass a :class:`~repro.system.multinoc.MultiNoC` as *system* to
        wire everything (mesh, stats, NIs, processors) automatically, or
        give the pieces explicitly for bare-mesh testbenches.
        """
        if system is not None:
            mesh = system.mesh
            stats = system.stats
            nis = system.network_interfaces()
            processors = list(system.processors.values())
        self.sim = sim
        self.mesh = mesh
        self.topology = getattr(mesh, "topology", None)
        self.stats = stats
        self.nis = list(nis)
        self.processors = list(processors)
        self.host = host

        cycle = sim.cycle
        self._last_global_movement = cycle
        if stats is not None:
            self._router_totals = stats.per_router_movement()
        if mesh is not None:
            for addr in mesh.routers:
                self._last_router_movement[addr] = cycle
        for proc in self.processors:
            self._cpu_progress[proc.name] = (None, cycle)

        if self.sample_interval:
            self.sampler = TimeSeriesSampler(
                self.sample_interval, self.sample_window
            )
            self._install_default_probes()

        sim.add_watcher(self.on_cycle)
        if hasattr(sim, "add_skip_listener"):
            sim.add_skip_listener(self.on_fast_forward)
        sim.health = self
        return self

    def detach(self) -> None:
        """Unhook from the simulator; the run continues unmonitored."""
        if self.sim is not None:
            self.sim.remove_watcher(self.on_cycle)
            if hasattr(self.sim, "remove_skip_listener"):
                self.sim.remove_skip_listener(self.on_fast_forward)
            if self.sim.health is self:
                self.sim.health = None

    def _install_default_probes(self) -> None:
        sampler = self.sampler
        assert sampler is not None
        stats = self.stats
        if stats is not None:
            sampler.add_probe(
                "noc.in_flight", lambda s=stats: s.in_flight_count
            )
        if self.mesh is not None and stats is not None:
            for addr, router in sorted(self.mesh.routers.items()):
                sampler.add_rate_probe(
                    f"util.{router.name}",
                    lambda s=stats, a=addr: s.router_flits_sent(a),
                    scale=2.0,
                )
                sampler.add_probe(
                    f"fifo.{router.name}",
                    lambda r=router: sum(len(f) for f in r.fifos),
                )
        for proc in self.processors:
            sampler.add_rate_probe(
                f"ipc.{proc.name}",
                lambda c=proc.cpu: c.instructions_retired,
            )

    # -- the per-cycle hook -------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Simulator watcher: sample on its stride, check on its own."""
        if self.sampler is not None and cycle % self.sample_interval == 0:
            self.sampler.sample(cycle)
        if cycle % self.check_interval:
            return
        self._run_checks(cycle)

    def on_fast_forward(self, start: int, end: int) -> None:
        """Simulator skip listener: keep strided samples and watchdog
        checks firing *inside* a fast-forwarded idle span.

        The kernel only fast-forwards while every component sleeps, so
        all probed state is frozen at its ``start`` value — replaying the
        stride points with that state is exactly what lock-step would
        have observed.  The landing cycle ``end`` is excluded here; it
        gets the regular :meth:`on_cycle` watcher call.
        """
        if self.sampler is not None:
            for c in stride_points(start, end, self.sample_interval):
                self.sampler.sample(c)
        for c in stride_points(start, end, self.check_interval):
            self._run_checks(c)

    def _run_checks(self, cycle: int) -> None:
        self.checks_run += 1
        if self.stats is not None:
            self._update_movement(cycle)
            if self.deadlock_cycles is not None and self.mesh is not None:
                self._check_deadlock(cycle)
            if self.max_packet_age is not None:
                self._check_starvation(cycle)
        if self.cpu_stall_cycles is not None:
            self._check_cpu_stall(cycle)
        if self.host_transaction_cycles is not None and self.host is not None:
            self._check_host_transaction(cycle)
        if self.invariants:
            self.check_invariants(cycle)

    def _violate(
        self,
        kind: str,
        component: str,
        cycle: int,
        message: str,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        violation = HealthViolation(kind, component, cycle, message, details)
        if self.on_violation == "raise":
            raise violation
        key = (kind, component)
        if key not in self._recorded_keys:
            self._recorded_keys.add(key)
            self.violations.append(violation)

    # -- watchdogs ----------------------------------------------------------

    def _update_movement(self, cycle: int) -> None:
        totals = self.stats.per_router_movement()
        moved = False
        for addr, count in totals.items():
            if count != self._router_totals.get(addr):
                self._last_router_movement[addr] = cycle
                moved = True
        self._router_totals = totals
        if moved:
            self._last_global_movement = cycle

    def _check_deadlock(self, cycle: int) -> None:
        if cycle - self._last_global_movement < self.deadlock_cycles:
            return
        active = self.stats.in_flight_count > 0 or any(
            r.busy for r in self.mesh.routers.values()
        )
        if not active:
            # quiet network, nothing pending: re-arm silently
            self._last_global_movement = cycle
            return
        graph = self.wait_graph()
        stalled = cycle - self._last_global_movement
        if graph["cycle_nodes"]:
            where = " -> ".join(graph["cycle_nodes"])
            blocked_at = f"wait-for cycle {where}"
        elif graph["roots"]:
            blocked_at = "root blocker " + ", ".join(graph["roots"])
        else:
            blocked_at = "no blocked edge found (control logic wedged?)"
        component = (
            graph["cycle_nodes"][0]
            if graph["cycle_nodes"]
            else (graph["roots"][0] if graph["roots"] else "noc")
        )
        self._last_global_movement = cycle  # re-arm for record mode
        self._violate(
            "deadlock",
            component,
            cycle,
            f"no flit movement for {stalled} cycles with "
            f"{self.stats.in_flight_count} packet(s) in flight; {blocked_at}",
            details={
                "stalled_cycles": stalled,
                "in_flight": self.stats.in_flight_count,
                "wait_for": graph,
                "fifo_snapshots": self.fifo_snapshots(),
                "last_movement": {
                    r.name: self._last_router_movement.get(addr)
                    for addr, r in self.mesh.routers.items()
                },
            },
        )

    def _check_starvation(self, cycle: int) -> None:
        oldest = self.stats.oldest_in_flight()
        if oldest is None:
            self._reported_starvation = None
            return
        stamp, key = oldest
        age = cycle - stamp
        if age < self.max_packet_age or oldest == self._reported_starvation:
            return
        self._reported_starvation = oldest
        target, payload = key
        self._violate(
            "starvation",
            f"packet->{target[0]},{target[1]}",
            cycle,
            f"oldest in-flight packet (target {target}, "
            f"{len(payload)} payload flits) injected at cycle {stamp} "
            f"is {age} cycles old",
            details={
                "target": list(target),
                "payload_flits": len(payload),
                "injected_cycle": stamp,
                "age": age,
                "in_flight": self.stats.in_flight_count,
            },
        )

    def _check_cpu_stall(self, cycle: int) -> None:
        for proc in self.processors:
            cpu = proc.cpu
            name = proc.name
            if cpu.halted:
                self._cpu_progress[name] = (None, cycle)
                continue
            progress = cpu.progress
            last_progress, last_cycle = self._cpu_progress.get(
                name, (None, cycle)
            )
            if progress != last_progress:
                self._cpu_progress[name] = (progress, cycle)
                continue
            stalled = cycle - last_cycle
            if stalled < self.cpu_stall_cycles:
                continue
            self._cpu_progress[name] = (progress, cycle)  # re-arm
            self._violate(
                "cpu_stall",
                name,
                cycle,
                f"active core at pc {progress[0]:#06x} made no progress "
                f"for {stalled} cycles (state {cpu.fsm_state})",
                details={"stalled_cycles": stalled, **proc.probe_state()},
            )

    def _check_host_transaction(self, cycle: int) -> None:
        txn = getattr(self.host, "current_transaction", None)
        if txn is None:
            self._reported_host_txn = None
            return
        label, start = txn
        open_for = cycle - start
        if open_for < self.host_transaction_cycles or txn == self._reported_host_txn:
            return
        self._reported_host_txn = txn
        self._violate(
            "host_timeout",
            self.host.name,
            cycle,
            f"serial transaction '{label}' started at cycle {start} "
            f"still open after {open_for} cycles",
            details={"transaction": label, "started": start, "open_for": open_for},
        )

    # -- invariants ----------------------------------------------------------

    def check_invariants(self, cycle: Optional[int] = None) -> None:
        """Run every invariant once (also callable directly from tests)."""
        cycle = cycle if cycle is not None else (
            self.sim.cycle if self.sim is not None else 0
        )
        if self.stats is not None:
            self._check_packet_conservation(cycle)
        if self.mesh is None:
            return
        received: Dict[Address, int] = {}
        sent: Dict[Address, int] = {}
        if self.stats is not None:
            for (addr, _), n in self.stats.flits_received.items():
                received[addr] = received.get(addr, 0) + n
            for (addr, _), n in self.stats.flits_sent.items():
                sent[addr] = sent.get(addr, 0) + n
        for addr, router in self.mesh.routers.items():
            self._check_router_invariants(
                cycle, router, received.get(addr, 0), sent.get(addr, 0)
            )

    def _check_packet_conservation(self, cycle: int) -> None:
        s = self.stats
        expected = (
            s.packets_injected
            - (s.packets_delivered - s.unmatched_deliveries)
            - s.packets_dropped
        )
        if expected != s.in_flight_count:
            self._violate(
                "invariant.packet_conservation",
                "noc",
                cycle,
                f"injected - delivered + unmatched - pruned = {expected} "
                f"but in-flight count is {s.in_flight_count}",
                details={
                    "injected": s.packets_injected,
                    "delivered": s.packets_delivered,
                    "unmatched": s.unmatched_deliveries,
                    "pruned": s.packets_dropped,
                    "in_flight": s.in_flight_count,
                },
            )

    def _check_router_invariants(
        self, cycle: int, router, received: int, sent: int
    ) -> None:
        occupancy = 0
        for port, fifo in enumerate(router.fifos):
            n = len(fifo)
            occupancy += n
            if not 0 <= n <= fifo.capacity:
                self._violate(
                    "invariant.fifo_bounds",
                    router.name,
                    cycle,
                    f"port {port_label(port)} FIFO holds {n} flits "
                    f"(capacity {fifo.capacity})",
                    details={"port": port_label(port), "occupancy": n,
                             "capacity": fifo.capacity},
                )
        if self.stats is not None and occupancy != received - sent:
            self._violate(
                "invariant.flit_conservation",
                router.name,
                cycle,
                f"FIFOs hold {occupancy} flits but counters say "
                f"{received} received - {sent} sent = {received - sent}",
                details={"occupancy": occupancy, "received": received,
                         "sent": sent,
                         "fifos": [f.snapshot() for f in router.fifos]},
            )
        topo = self.topology
        for in_port, out_port in enumerate(router.in_conn):
            if out_port is None:
                continue
            if topo is not None:
                legal = topo.legal_turn(in_port, out_port)
            else:
                legal = Port(out_port) in _XY_LEGAL[Port(in_port)]
            if not legal:
                mesh_like = topo is None or topo.kind == "mesh"
                self._violate(
                    "invariant.xy_routing"
                    if mesh_like
                    else "invariant.route_legality",
                    router.name,
                    cycle,
                    f"connection {port_label(in_port)} -> "
                    f"{port_label(out_port)} is an illegal "
                    + ("XY turn" if mesh_like
                       else f"turn for {topo.spec} routing"),
                    details={"in_port": port_label(in_port),
                             "out_port": port_label(out_port),
                             "state": router.probe_state()},
                )
        for out_port in range(router.N_PORTS):
            owners = [
                p
                for p in range(router.N_PORTS)
                if router.in_conn[p] == out_port
            ]
            owner = router.out_owner[out_port]
            consistent = (
                (not owners and owner is None)
                or (len(owners) == 1 and owners[0] == owner)
            )
            if not consistent:
                self._violate(
                    "invariant.single_producer",
                    router.name,
                    cycle,
                    f"output {port_label(out_port)} claimed by inputs "
                    f"{[port_label(p) for p in owners]} but owner table "
                    f"says {port_label(owner) if owner is not None else None}",
                    details={"out_port": port_label(out_port),
                             "claimants": [port_label(p) for p in owners],
                             "owner": (port_label(owner)
                                       if owner is not None else None),
                             "state": router.probe_state()},
                )

    # -- diagnostics ----------------------------------------------------------

    def wait_graph(self) -> Dict[str, Any]:
        """The port wait-for graph of the mesh, with blocked edges marked.

        Nodes are ``"component.PORT"`` strings; an edge A -> B means A
        cannot make progress until B does.  ``cycle_nodes`` is the first
        cycle found over blocked edges (a true cyclic deadlock — XY
        routing excludes these, so one indicates a routing bug);
        ``roots`` are blocked sinks: nodes others wait on that wait on
        nothing themselves (a wedged consumer, a dead NI).
        """
        edges: List[Dict[str, Any]] = []
        ni_at = {ni.address: ni for ni in self.nis}
        for addr, router in self.mesh.routers.items():
            for port in range(router.N_PORTS):
                node = f"{router.name}.{port_label(port)}"
                conn = router.in_conn[port]
                if conn is not None:
                    dst, blocked, reason = self._downstream(
                        router, conn, ni_at
                    )
                    edges.append(
                        {"src": node, "dst": dst, "reason": reason,
                         "blocked": blocked}
                    )
                    continue
                target = router.pending_header_target(port)
                if target is None:
                    continue
                if self.topology is not None:
                    out = self.topology.route(addr, target)
                else:
                    out = xy_route(addr, target)
                owner = router.out_owner[out]
                if owner is not None:
                    edges.append(
                        {
                            "src": node,
                            "dst": f"{router.name}.{port_label(owner)}",
                            "reason": f"output {port_label(out)} held by "
                            f"input {port_label(owner)}",
                            "blocked": True,
                        }
                    )
                else:
                    edges.append(
                        {
                            "src": node,
                            "dst": f"{router.name}.CTRL",
                            "reason": f"awaiting route to "
                            f"{target[0]},{target[1]}",
                            "blocked": False,
                        }
                    )
        nodes = sorted(
            {e["src"] for e in edges} | {e["dst"] for e in edges}
        )
        blocked_edges = [e for e in edges if e["blocked"]]
        cycle_nodes = _find_cycle(blocked_edges)
        sources = {e["src"] for e in blocked_edges}
        roots = sorted(
            {e["dst"] for e in blocked_edges if e["dst"] not in sources}
        )
        return {
            "nodes": nodes,
            "edges": edges,
            "cycle_nodes": cycle_nodes,
            "roots": roots,
        }

    def _downstream(
        self, router, out_port: int, ni_at: Dict[Address, Any]
    ) -> Tuple[str, bool, str]:
        """(node, blocked, reason) for an established connection's sink."""
        topo = self.topology
        if out_port >= Port.LOCAL:
            node = router.address
            if topo is not None:
                node = topo.port_node(router.address, out_port)
            ni = ni_at.get(node)
            name = ni.name if ni is not None else f"{router.name}.local-ip"
            ch = router.out_ch[out_port]
            blocked = bool(ch.tx.value) and not bool(ch.ack.value)
            return f"{name}.rx", blocked, "delivering to local IP"
        if topo is not None:
            nb_addr = topo.neighbour(router.address, out_port)
        else:
            x, y = router.address
            dx, dy = PORT_DELTA[Port(out_port)]
            nb_addr = (x + dx, y + dy)
        neighbour = self.mesh.routers[nb_addr]
        in_port = OPPOSITE[Port(out_port)]
        blocked = neighbour.fifos[in_port].is_full
        return (
            f"{neighbour.name}.{in_port.name}",
            blocked,
            f"streaming out {port_label(out_port)}",
        )

    def fifo_snapshots(self) -> Dict[str, Dict[str, List[int]]]:
        """Per-router, per-port FIFO contents (oldest flit first)."""
        if self.mesh is None:
            return {}
        return {
            router.name: {
                port_label(p): router.fifos[p].snapshot()
                for p in range(router.N_PORTS)
                if not router.fifos[p].is_empty
            }
            for router in self.mesh.routers.values()
        }

    def diagnostics(self) -> Dict[str, Any]:
        """The full diagnostic dump attached to diagnosed failures."""
        cycle = self.sim.cycle if self.sim is not None else 0
        out: Dict[str, Any] = {"cycle": cycle}
        if self.stats is not None:
            s = self.stats
            oldest = s.oldest_in_flight()
            out["packets"] = {
                "injected": s.packets_injected,
                "delivered": s.packets_delivered,
                "in_flight": s.in_flight_count,
                "unmatched": s.unmatched_deliveries,
                "pruned": s.packets_dropped,
            }
            if oldest is not None:
                stamp, (target, payload) = oldest
                out["oldest_in_flight"] = {
                    "target": list(target),
                    "payload_flits": len(payload),
                    "injected_cycle": stamp,
                    "age": cycle - stamp,
                }
        if self.mesh is not None:
            out["wait_for"] = self.wait_graph()
            out["fifo_snapshots"] = self.fifo_snapshots()
            out["last_movement"] = {
                router.name: self._last_router_movement.get(addr)
                for addr, router in self.mesh.routers.items()
            }
            out["routers"] = {
                router.name: router.probe_state()
                for router in self.mesh.routers.values()
            }
        if self.nis:
            out["network_interfaces"] = {
                ni.name: ni.probe_state() for ni in self.nis
            }
        if self.processors:
            out["processors"] = {
                proc.name: proc.probe_state() for proc in self.processors
            }
        if self.host is not None:
            out["host_transaction"] = getattr(
                self.host, "current_transaction", None
            )
        out["violations"] = [v.as_dict() for v in self.violations]
        return out

    def describe(self, diagnostics: Optional[Dict[str, Any]] = None) -> str:
        """Human-readable summary of a diagnostic dump."""
        diag = diagnostics if diagnostics is not None else self.diagnostics()
        lines = [f"health diagnostics @cycle {diag['cycle']}:"]
        packets = diag.get("packets")
        if packets:
            lines.append(
                f"  packets: {packets['injected']} injected / "
                f"{packets['delivered']} delivered / "
                f"{packets['in_flight']} in flight"
            )
        oldest = diag.get("oldest_in_flight")
        if oldest:
            lines.append(
                f"  oldest in flight: -> {oldest['target'][0]},"
                f"{oldest['target'][1]}, injected @{oldest['injected_cycle']}"
                f" ({oldest['age']} cycles ago)"
            )
        graph = diag.get("wait_for")
        if graph:
            blocked = [e for e in graph["edges"] if e["blocked"]]
            if graph["cycle_nodes"]:
                lines.append(
                    "  wait-for cycle: " + " -> ".join(graph["cycle_nodes"])
                )
            for edge in blocked:
                lines.append(
                    f"  blocked: {edge['src']} waits on {edge['dst']} "
                    f"({edge['reason']})"
                )
            for root in graph["roots"]:
                lines.append(f"  root blocker: {root}")
        snapshots = diag.get("fifo_snapshots")
        if snapshots:
            for router, ports in sorted(snapshots.items()):
                for port, flits in sorted(ports.items()):
                    lines.append(
                        f"  {router}.{port} holds "
                        f"{[f'{f:#04x}' for f in flits]}"
                    )
        last = diag.get("last_movement")
        if last:
            stalled = {
                name: at
                for name, at in last.items()
                if at is not None and diag["cycle"] - at > self.check_interval
            }
            for name, at in sorted(stalled.items()):
                lines.append(
                    f"  {name}: last flit movement @cycle {at} "
                    f"({diag['cycle'] - at} cycles ago)"
                )
        host_txn = diag.get("host_transaction")
        if host_txn:
            lines.append(
                f"  host transaction '{host_txn[0]}' open since "
                f"cycle {host_txn[1]}"
            )
        if diag.get("violations"):
            lines.append(f"  recorded violations: {len(diag['violations'])}")
        return "\n".join(lines)

    def report(self) -> Dict[str, Any]:
        """JSON-friendly health report (the CLI's ``--health-report``)."""
        return {
            "schema": "multinoc-health/1",
            "cycle": self.sim.cycle if self.sim is not None else 0,
            "config": {
                "check_interval": self.check_interval,
                "sample_interval": self.sample_interval,
                "deadlock_cycles": self.deadlock_cycles,
                "max_packet_age": self.max_packet_age,
                "cpu_stall_cycles": self.cpu_stall_cycles,
                "host_transaction_cycles": self.host_transaction_cycles,
                "invariants": self.invariants,
                "on_violation": self.on_violation,
            },
            "checks_run": self.checks_run,
            "violations": [v.as_dict() for v in self.violations],
            "sampler": (
                self.sampler.as_dict() if self.sampler is not None else None
            ),
            "diagnostics": self.diagnostics(),
        }


def _find_cycle(edges: List[Dict[str, Any]]) -> List[str]:
    """First cycle in the directed graph given by *edges*, or []."""
    adjacency: Dict[str, List[str]] = {}
    for edge in edges:
        adjacency.setdefault(edge["src"], []).append(edge["dst"])
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[str, int] = {}
    for start in adjacency:
        if colour.get(start, WHITE) != WHITE:
            continue
        stack: List[Tuple[str, int]] = [(start, 0)]
        path: List[str] = []
        colour[start] = GREY
        path.append(start)
        while stack:
            node, index = stack[-1]
            successors = adjacency.get(node, [])
            if index >= len(successors):
                stack.pop()
                path.pop()
                colour[node] = BLACK
                continue
            stack[-1] = (node, index + 1)
            nxt = successors[index]
            state = colour.get(nxt, WHITE)
            if state == GREY:
                at = path.index(nxt)
                return path[at:] + [nxt]
            if state == WHITE:
                colour[nxt] = GREY
                path.append(nxt)
                stack.append((nxt, 0))
    return []
