"""Metrics registry: counters, gauges and histograms.

The registry is the numeric half of the telemetry layer (events are the
temporal half).  :class:`~repro.noc.stats.NetworkStats` is built on top
of it, so the NoC's flit/latency aggregates and any metric a component
registers ad hoc share one namespace and one export path.

Hot-path note: counters expose their per-label storage as a plain
``defaultdict`` (:attr:`Counter.samples`), so a component may alias it
and do ``samples[key] += 1`` directly — the exact cost of the seed's
hand-rolled dicts, with no method-call overhead per flit.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Hashable, List, Optional


class MetricError(Exception):
    """Name registered twice with different kinds, or bad arguments."""


class Metric:
    """Common naming/help plumbing for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help


class Counter(Metric):
    """Monotonically increasing count, optionally split by label."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._value = 0
        #: per-label counts; alias this for zero-overhead hot paths
        self.samples: Dict[Hashable, int] = defaultdict(int)

    def inc(self, amount: int = 1, label: Optional[Hashable] = None) -> None:
        if label is None:
            self._value += amount
        else:
            self.samples[label] += amount

    @property
    def value(self) -> int:
        """Total across the unlabelled count and every label."""
        return self._value + sum(self.samples.values())


class Gauge(Metric):
    """A value that can go up and down (queue depth, in-flight count)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self.value: float = 0
        self._callback = None

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def set_function(self, fn) -> None:
        """Compute the gauge on read (export time) instead of on write."""
        self._callback = fn

    def read(self) -> float:
        return self._callback() if self._callback is not None else self.value


class Histogram(Metric):
    """Distribution with exact percentile summaries.

    Stores raw samples (the seed's latency list did the same); use
    :meth:`percentile` / :meth:`summary` for the aggregate view.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        #: raw samples; NetworkStats aliases this as its latency list
        self.values: List[float] = []

    def record(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile with linear interpolation, ``0 <= p <= 100``.

        Raises :class:`MetricError` on an empty histogram — a percentile
        of nothing is undefined, and silently returning 0.0 has hidden
        real "no samples recorded" bugs.
        """
        if not 0 <= p <= 100:
            raise MetricError(f"percentile {p} outside [0, 100]")
        if not self.values:
            raise MetricError(
                f"histogram {self.name!r} is empty: percentile undefined"
            )
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (len(ordered) - 1) * p / 100.0
        lo = int(rank)
        frac = rank - lo
        if lo + 1 >= len(ordered):
            return float(ordered[-1])
        return ordered[lo] * (1 - frac) + ordered[lo + 1] * frac

    def summary(self) -> Dict[str, float]:
        """Aggregate view; an empty histogram yields just ``{"count": 0}``
        so callers can't mistake "no samples" for "all zeros"."""
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Namespace of metrics; registration is idempotent by (name, kind)."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)

    def __iter__(self):
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly dump of every metric's current state."""
        out: Dict[str, Any] = {}
        for m in self:
            if isinstance(m, Counter):
                out[m.name] = {
                    "kind": m.kind,
                    "value": m.value,
                    "labels": {_label_str(k): v for k, v in m.samples.items()},
                }
            elif isinstance(m, Gauge):
                out[m.name] = {"kind": m.kind, "value": m.read()}
            elif isinstance(m, Histogram):
                out[m.name] = {"kind": m.kind, **m.summary()}
        return out

    def prometheus_text(self) -> str:
        """Prometheus exposition-format dump of every metric.

        Format compliance: ``# HELP`` text and label values are escaped
        per the exposition format (backslash, newline, and — for label
        values — double quote), and counters follow the ``_total``
        suffix convention (appended when the registered name lacks it).
        """
        lines: List[str] = []
        for m in self:
            name = m.name
            if isinstance(m, Counter) and not name.endswith("_total"):
                name += "_total"
            if m.help:
                lines.append(f"# HELP {name} {_escape_help(m.help)}")
            lines.append(f"# TYPE {name} {m.kind}")
            if isinstance(m, Counter):
                lines.append(f"{name} {m.value}")
                for label, value in sorted(
                    m.samples.items(), key=lambda kv: _label_str(kv[0])
                ):
                    escaped = _escape_label_value(_label_str(label))
                    lines.append(f'{name}{{label="{escaped}"}} {value}')
            elif isinstance(m, Gauge):
                lines.append(f"{name} {m.read()}")
            elif isinstance(m, Histogram):
                if m.count:
                    for q in (50, 90, 99):
                        lines.append(
                            f'{name}{{quantile="0.{q}"}} {m.percentile(q)}'
                        )
                lines.append(f"{name}_sum {m.total}")
                lines.append(f"{name}_count {m.count}")
        return "\n".join(lines) + "\n"


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text per the exposition format."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        text.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _label_str(label: Hashable) -> str:
    """Stable text form of an arbitrary hashable label."""
    if isinstance(label, tuple):
        return "/".join(_label_str(part) for part in label)
    return str(label)
