"""Alerting & SLO engine: declarative rules over live telemetry.

The live plane (:mod:`repro.telemetry.live`) makes a running mesh
*watchable*; this module makes it *actionable*.  An
:class:`AlertEngine` evaluates a declarative :class:`RuleSet` against
every ``multinoc-live/1`` frame and drives each rule instance through
the Prometheus-style lifecycle::

    inactive -> pending -> firing -> resolved -> inactive
               (condition   (held for   (condition
                true)        `for`       cleared)
                             cycles)

``for``-durations are measured in **simulated cycles** (frame ``cycle``
deltas), so verdicts are a function of the frame stream alone — the
same rules replayed over a stored trace of the same run produce the
same verdicts (``multinoc alerts check``), and alerting a run changes
none of its simulation bits (the engine only reads frames).

Rule files are plain text: a header line opens a block, indented
``key: value`` lines configure it, ``#`` starts a comment::

    alert link_hot
        expr: link_util{link=~"router0.*"} > 0.9
        for: 500
        severity: page
        annotation: link {{link}} utilisation {{value}}

    slo delivery_latency
        expr: latency_p99 <= 120
        target: 0.99
        window: 50000
        burn: 2.0

Expressions are single comparisons ``field[{label=~"regex"}] OP value``
(OP one of ``> >= < <= == !=``; the value a number or a string).
**Vector fields** (``link_util``, ``router_occupancy``, ``cpu_ipc``,
...) carry one instance per label value and may be narrowed with a
label matcher (``=`` exact, ``=~`` anchored regex); **scalar fields**
(``latency_p99``, ``in_flight``, ``health``, ...) have exactly one
instance.  See :data:`FIELD_HELP` for the full field reference.

An ``slo`` block layers an objective on top of the same expression
language: ``expr`` defines the *good* condition, ``target`` the
required fraction of good cycles over a trailing ``window`` of
simulated cycles.  The engine tracks the error budget
(``1 - target``), how much of it is burnt, and the **burn rate**
(bad fraction / budget; 1.0 exactly exhausts the budget over the
window).  A burn rate above ``burn`` drives a synthetic
``slo:<name>`` alert through the normal lifecycle.

Alert state fans out to every configured sink: an append-only JSONL
alert log (one ``multinoc-alert/1`` line per transition), stderr
notices, structured telemetry events (track ``alerts``), an ``ALERTS``
gauge plus transition counter in the metrics registry, the
``/alerts`` endpoint of :class:`~repro.telemetry.server.
TelemetryServer`, and the banner in ``multinoc top``.

Post-hoc, the same rules replay over stored artifacts:

* :func:`frames_from_trace` extracts the live frames a run mirrored
  into its JSONL event trace (``multinoc system --alerts/--serve
  --trace-jsonl``) so ``multinoc alerts check RULES --trace`` can
  re-evaluate them offline — one rule syntax across live and
  post-mortem, and CI can gate on the verdicts;
* :func:`check_records` evaluates rules over
  :class:`~repro.telemetry.registry.RunRegistry` records (fields are
  the record's flat metrics plus ``status``; one record advances the
  clock by one, so ``for: N`` means N consecutive records).
"""

from __future__ import annotations

import json
import re
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

ALERT_SCHEMA = "multinoc-alert/1"
ALERTS_DOC_SCHEMA = "multinoc-alerts/1"

#: track (and process) alert telemetry events are emitted on
ALERT_TRACK = "alerts"

#: track/name the live stream mirrors frames into the telemetry sink on
FRAME_TRACK = "live"
FRAME_EVENT = "frame"

#: comparison operators, longest first so ``>=`` wins over ``>``
_OPS: Tuple[Tuple[str, Callable[[Any, Any], bool]], ...] = (
    (">=", lambda a, b: a >= b),
    ("<=", lambda a, b: a <= b),
    ("==", lambda a, b: a == b),
    ("!=", lambda a, b: a != b),
    (">", lambda a, b: a > b),
    ("<", lambda a, b: a < b),
)

#: vector fields -> (label dimension, how to read instances off a frame)
_VECTOR_FIELDS: Dict[str, Tuple[str, Callable[[Dict[str, Any]], Dict[str, Any]]]] = {
    "link_util": ("link", lambda f: f.get("links") or {}),
    "router_occupancy": (
        "router",
        lambda f: {
            k: v.get("occupancy", 0) for k, v in (f.get("routers") or {}).items()
        },
    ),
    "router_watermark": (
        "router",
        lambda f: {
            k: v.get("watermark", 0) for k, v in (f.get("routers") or {}).items()
        },
    ),
    "router_rate": (
        "router",
        lambda f: {
            k: v.get("rate", 0.0) for k, v in (f.get("routers") or {}).items()
        },
    ),
    "cpu_ipc": (
        "cpu",
        lambda f: {k: v.get("ipc", 0.0) for k, v in (f.get("cpus") or {}).items()},
    ),
    "cpu_retired": (
        "cpu",
        lambda f: {
            k: v.get("retired", 0) for k, v in (f.get("cpus") or {}).items()
        },
    ),
    "cpu_state": (
        "cpu",
        lambda f: {
            k: v.get("state", "?") for k, v in (f.get("cpus") or {}).items()
        },
    ),
}


def _health_field(frame: Dict[str, Any]) -> str:
    health = frame.get("health")
    if not health or not health.get("attached"):
        return "detached"
    return "violating" if health.get("violations") else "ok"


#: scalar fields -> how to read the single value off a frame (None = no data)
_SCALAR_FIELDS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "cycle": lambda f: f.get("cycle"),
    "sim_rate_hz": lambda f: f.get("sim_rate_hz"),
    "in_flight": lambda f: (f.get("packets") or {}).get("in_flight"),
    "injected": lambda f: (f.get("packets") or {}).get("injected"),
    "delivered": lambda f: (f.get("packets") or {}).get("delivered"),
    "delta_injected": lambda f: (f.get("packets") or {}).get("delta_injected"),
    "delta_delivered": lambda f: (f.get("packets") or {}).get("delta_delivered"),
    "throughput": lambda f: (f.get("packets") or {}).get(
        "throughput_flits_per_cycle"
    ),
    "latency_count": lambda f: (f.get("latency") or {}).get("count"),
    "latency_mean": lambda f: (f.get("latency") or {}).get("mean"),
    "latency_p50": lambda f: (f.get("latency") or {}).get("p50"),
    "latency_p90": lambda f: (f.get("latency") or {}).get("p90"),
    "latency_p99": lambda f: (f.get("latency") or {}).get("p99"),
    "latency_max": lambda f: (f.get("latency") or {}).get("max"),
    "health": _health_field,
    "health_violations": lambda f: (f.get("health") or {}).get("violations", 0),
    "links_elided": lambda f: f.get("links_elided"),
}

#: one-line reference per field, surfaced by ``multinoc alerts lint -v``
FIELD_HELP: Dict[str, str] = {
    "link_util": "per-link utilisation in [0,1] (label: link)",
    "router_occupancy": "FIFO flits queued per router (label: router)",
    "router_watermark": "FIFO high-water mark per router (label: router)",
    "router_rate": "output flit rate per router (label: router)",
    "cpu_ipc": "windowed instructions/cycle per CPU (label: cpu)",
    "cpu_retired": "instructions retired per CPU (label: cpu)",
    "cpu_state": "CPU FSM state string per CPU (label: cpu)",
    "cycle": "frame cycle",
    "sim_rate_hz": "simulated cycles per wall second",
    "in_flight": "packets currently in the mesh",
    "injected": "packets injected since launch",
    "delivered": "packets delivered since launch",
    "delta_injected": "packets injected this window",
    "delta_delivered": "packets delivered this window",
    "throughput": "delivered flits per cycle this window",
    "latency_count": "packets delivered this window",
    "latency_mean": "mean latency of this window's packets (cycles)",
    "latency_p50": "p50 latency of this window's packets (cycles)",
    "latency_p90": "p90 latency of this window's packets (cycles)",
    "latency_p99": "p99 latency of this window's packets (cycles)",
    "latency_max": "max latency of this window's packets (cycles)",
    "health": 'monitor status: "ok", "violating" or "detached"',
    "health_violations": "health violations so far",
    "links_elided": "active links dropped by the frame's top-N bound",
}


class RuleError(Exception):
    """A rule file (or expression) could not be parsed or validated."""


# -- expressions -------------------------------------------------------------

_EXPR_RE = re.compile(
    r"""^\s*
    (?P<field>[A-Za-z_][\w.]*)                      # field name (dots: registry metrics)
    (?:\{\s*(?P<label>[A-Za-z_]\w*)\s*(?P<match>=~|=)\s*
       "(?P<pattern>[^"]*)"\s*\})?                  # optional label matcher
    \s*(?P<op>>=|<=|==|!=|>|<)\s*
    (?P<value>"[^"]*"|\S+)
    \s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class Condition:
    """One parsed comparison: ``field{label=~"re"} OP value``."""

    field: str
    op: str
    value: Union[float, str]
    label: Optional[str] = None
    exact: Optional[str] = None
    pattern: Optional[str] = None

    @property
    def source(self) -> str:
        matcher = ""
        if self.exact is not None:
            matcher = f'{{{self.label}="{self.exact}"}}'
        elif self.pattern is not None:
            matcher = f'{{{self.label}=~"{self.pattern}"}}'
        value = (
            f'"{self.value}"' if isinstance(self.value, str) else f"{self.value:g}"
        )
        return f"{self.field}{matcher} {self.op} {value}"

    def _selects(self, label_value: str) -> bool:
        if self.exact is not None:
            return label_value == self.exact
        if self.pattern is not None:
            return re.fullmatch(self.pattern, label_value) is not None
        return True

    def instances(
        self, fields: Dict[str, Any]
    ) -> List[Tuple[Dict[str, str], Any]]:
        """``(labels, value)`` pairs this condition ranges over.

        *fields* is a sample produced by :func:`frame_fields` or
        :func:`record_fields`.  Vector fields yield one instance per
        selected label value; a scalar yields one unlabelled instance
        (or none when the sample has no data for it).
        """
        value = fields.get(self.field)
        if isinstance(value, dict):
            dimension = value.get("__label__", "instance")
            return [
                ({dimension: k}, v)
                for k, v in sorted(value.items())
                if k != "__label__" and self._selects(str(k))
            ]
        if value is None:
            return []
        return [({}, value)]

    def holds(self, value: Any) -> bool:
        """Apply the comparison; mismatched types never hold."""
        expect_str = isinstance(self.value, str)
        if expect_str != isinstance(value, str):
            return False
        for op, fn in _OPS:
            if op == self.op:
                try:
                    return bool(fn(value, self.value))
                except TypeError:
                    return False
        raise AssertionError(f"unknown operator {self.op!r}")


def parse_condition(text: str) -> Condition:
    """Parse ``field{label=~"regex"} OP value`` into a :class:`Condition`."""
    m = _EXPR_RE.match(text)
    if m is None:
        raise RuleError(
            f"cannot parse expression {text!r} "
            '(expected: field{label=~"regex"} OP value)'
        )
    raw = m.group("value")
    value: Union[float, str]
    if raw.startswith('"') and raw.endswith('"'):
        value = raw[1:-1]
    else:
        try:
            value = float(raw)
        except ValueError:
            value = raw  # bare word: a string comparison (health != ok)
    pattern = exact = None
    if m.group("label") is not None:
        if m.group("match") == "=~":
            pattern = m.group("pattern")
            try:
                re.compile(pattern)
            except re.error as exc:
                raise RuleError(f"bad label regex {pattern!r}: {exc}") from exc
        else:
            exact = m.group("pattern")
        if m.group("field") in _SCALAR_FIELDS:
            raise RuleError(
                f"field {m.group('field')!r} is scalar; label matchers "
                "only apply to vector fields"
            )
    return Condition(
        field=m.group("field"),
        op=m.group("op"),
        value=value,
        label=m.group("label"),
        exact=exact,
        pattern=pattern,
    )


# -- rules and objectives ----------------------------------------------------


@dataclass
class AlertRule:
    """One threshold/ratio rule with a ``for``-duration and labels."""

    name: str
    condition: Condition
    for_cycles: int = 0
    severity: str = "warning"
    annotation: Optional[str] = None
    labels: Dict[str, str] = field(default_factory=dict)

    def render_annotation(
        self, labels: Dict[str, str], value: Any, cycle: int
    ) -> Optional[str]:
        if self.annotation is None:
            return None
        context = {
            "name": self.name,
            "value": value if isinstance(value, str) else f"{value:g}",
            "cycle": str(cycle),
            "field": self.condition.field,
            **self.labels,
            **labels,
        }
        return re.sub(
            r"\{\{\s*(\w+)\s*\}\}",
            lambda m: str(context.get(m.group(1), m.group(0))),
            self.annotation,
        )


@dataclass
class SloObjective:
    """A service-level objective: target fraction of good cycles.

    ``condition`` defines *good*; a window with no data for the
    condition's field counts as good (no packets delivered means no
    latency violation).  The derived burn-rate alert fires as
    ``slo:<name>`` when ``burn_rate > burn`` holds for ``for_cycles``.
    """

    name: str
    condition: Condition
    target: float
    window: int
    burn: float = 1.0
    for_cycles: int = 0
    severity: str = "page"

    def __post_init__(self):
        if not 0.0 < self.target < 1.0:
            raise RuleError(
                f"slo {self.name!r}: target must be in (0, 1), "
                f"got {self.target}"
            )
        if self.window < 1:
            raise RuleError(f"slo {self.name!r}: window must be >= 1 cycle")
        if self.burn <= 0:
            raise RuleError(f"slo {self.name!r}: burn must be > 0")

    @property
    def budget(self) -> float:
        """The error budget: the allowed fraction of bad cycles."""
        return 1.0 - self.target


@dataclass
class RuleSet:
    """Parsed rules + objectives, with the source they came from."""

    alerts: List[AlertRule] = field(default_factory=list)
    slos: List[SloObjective] = field(default_factory=list)
    source: Optional[str] = None

    def __len__(self) -> int:
        return len(self.alerts) + len(self.slos)

    def names(self) -> List[str]:
        return [r.name for r in self.alerts] + [
            f"slo:{s.name}" for s in self.slos
        ]


_HEADER_RE = re.compile(r"^(alert|slo)\s+([A-Za-z_][\w.-]*)\s*$")
_CLAUSE_RE = re.compile(r"^(\w+)\s*:\s*(.*\S)\s*$")

_ALERT_KEYS = {"expr", "for", "severity", "annotation", "labels"}
_SLO_KEYS = {"expr", "target", "window", "burn", "for", "severity"}


def parse_rules(text: str, *, source: Optional[str] = None) -> RuleSet:
    """Parse a rule file (see module docstring for the format)."""
    rules = RuleSet(source=source)
    block_kind: Optional[str] = None
    block_name: Optional[str] = None
    clauses: Dict[str, str] = {}
    line_of: Dict[str, int] = {}

    def close_block(line_no: int) -> None:
        nonlocal block_kind, block_name, clauses
        if block_kind is None:
            return
        where = f"{source or '<rules>'}:{line_of.get('_header', line_no)}"
        if "expr" not in clauses:
            raise RuleError(f"{where}: {block_kind} {block_name!r} has no expr")
        condition = parse_condition(clauses["expr"])
        try:
            for_cycles = int(clauses.get("for", "0"))
        except ValueError as exc:
            raise RuleError(
                f"{where}: for must be an integer cycle count"
            ) from exc
        if for_cycles < 0:
            raise RuleError(f"{where}: for must be >= 0 cycles")
        if block_kind == "alert":
            labels: Dict[str, str] = {}
            for part in filter(None, clauses.get("labels", "").split(",")):
                if "=" not in part:
                    raise RuleError(
                        f"{where}: labels must be comma-separated k=v pairs"
                    )
                k, _, v = part.partition("=")
                labels[k.strip()] = v.strip()
            rules.alerts.append(
                AlertRule(
                    name=block_name,
                    condition=condition,
                    for_cycles=for_cycles,
                    severity=clauses.get("severity", "warning"),
                    annotation=clauses.get("annotation"),
                    labels=labels,
                )
            )
        else:
            try:
                rules.slos.append(
                    SloObjective(
                        name=block_name,
                        condition=condition,
                        target=float(clauses["target"]),
                        window=int(clauses["window"]),
                        burn=float(clauses.get("burn", "1.0")),
                        for_cycles=for_cycles,
                        severity=clauses.get("severity", "page"),
                    )
                )
            except KeyError as exc:
                raise RuleError(
                    f"{where}: slo {block_name!r} needs a {exc.args[0]} clause"
                ) from exc
            except ValueError as exc:
                raise RuleError(f"{where}: {exc}") from exc
        block_kind = block_name = None
        clauses = {}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        indented = line[0] in " \t"
        line = line.strip()
        if not indented:
            close_block(line_no)
            header = _HEADER_RE.match(line)
            if header is None:
                raise RuleError(
                    f"{source or '<rules>'}:{line_no}: expected "
                    f"'alert NAME' or 'slo NAME', got {line!r}"
                )
            block_kind, block_name = header.group(1), header.group(2)
            line_of["_header"] = line_no
            continue
        if block_kind is None:
            raise RuleError(
                f"{source or '<rules>'}:{line_no}: clause outside a block"
            )
        clause = _CLAUSE_RE.match(line)
        if clause is None:
            raise RuleError(
                f"{source or '<rules>'}:{line_no}: expected 'key: value', "
                f"got {line!r}"
            )
        key = clause.group(1)
        allowed = _ALERT_KEYS if block_kind == "alert" else _SLO_KEYS
        if key not in allowed:
            raise RuleError(
                f"{source or '<rules>'}:{line_no}: unknown {block_kind} "
                f"clause {key!r} (choose from {sorted(allowed)})"
            )
        if key in clauses:
            raise RuleError(
                f"{source or '<rules>'}:{line_no}: duplicate clause {key!r}"
            )
        clauses[key] = clause.group(2)
    close_block(len(text.splitlines()) + 1)

    seen = set()
    for name in rules.names():
        if name in seen:
            raise RuleError(f"duplicate rule name {name!r}")
        seen.add(name)
    return rules


def load_rules(path) -> RuleSet:
    """Parse a rule file from disk."""
    from pathlib import Path

    p = Path(path)
    return parse_rules(p.read_text(), source=str(p))


# -- samples -----------------------------------------------------------------


def frame_fields(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten one ``multinoc-live/1`` frame into a rule sample.

    Vector fields become dicts tagged with their label dimension under
    the ``__label__`` key; scalars with no data in this frame are
    omitted (their conditions neither hold nor resolve instances).
    """
    fields: Dict[str, Any] = {}
    for name, reader in _SCALAR_FIELDS.items():
        value = reader(frame)
        if value is not None:
            fields[name] = value
    for name, (dimension, reader) in _VECTOR_FIELDS.items():
        instances = reader(frame)
        if instances:
            fields[name] = {"__label__": dimension, **instances}
    return fields


def record_fields(record: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten one ``multinoc-run/1`` record into a rule sample."""
    fields: Dict[str, Any] = dict(record.get("metrics") or {})
    fields["status"] = record.get("status") or "?"
    fields["exit_code"] = record.get("exit_code", 0)
    return fields


# -- the engine --------------------------------------------------------------


@dataclass
class _Instance:
    """Lifecycle state of one (rule, label-set) series."""

    state: str = "inactive"  # inactive | pending | firing
    since: int = 0  # cycle the condition started holding
    fired_at: Optional[int] = None
    value: Any = None
    peak: Any = None


def _series_key(rule_name: str, labels: Dict[str, str]) -> str:
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{rule_name}{{{inner}}}" if inner else rule_name


class AlertEngine:
    """Evaluate a :class:`RuleSet` over a frame/sample stream.

    Parameters
    ----------
    rules:
        A :class:`RuleSet` (or anything with ``alerts``/``slos``).
    log:
        Path of a JSONL alert log; every transition appends one
        ``multinoc-alert/1`` line.
    notify:
        Stream for human-readable notices (``sys.stderr`` for the CLI)
        or a callable receiving each transition dict.
    sink:
        A :class:`~repro.telemetry.events.TelemetrySink`; transitions
        are emitted as instant events on the ``alerts`` track.
    registry:
        A :class:`~repro.telemetry.metrics.MetricsRegistry`; the engine
        registers the ``ALERTS`` gauge (currently-firing count), an
        ``alerts_pending`` gauge and an ``alerts_transitions`` counter
        labelled ``(rule, state)``.
    max_transitions:
        Ring bound on the kept transition history (the JSONL log is
        never truncated).
    """

    def __init__(
        self,
        rules: RuleSet,
        *,
        log=None,
        notify=None,
        sink=None,
        registry=None,
        max_transitions: int = 1024,
    ):
        self.rules = rules
        self.sink = sink
        self.notify = notify
        self._log_path = None
        self._log_fh = None
        if log is not None:
            from pathlib import Path

            self._log_path = Path(log)
            self._log_path.parent.mkdir(parents=True, exist_ok=True)
            self._log_fh = open(self._log_path, "a")
        self.transitions: deque = deque(maxlen=max_transitions)
        self.transitions_total = 0
        self.frames_seen = 0
        self.last_cycle = 0
        self._instances: Dict[str, Dict[str, _Instance]] = {
            rule.name: {} for rule in rules.alerts
        }
        self._slo_state: Dict[str, deque] = {
            slo.name: deque() for slo in rules.slos
        }
        self._slo_instances: Dict[str, _Instance] = {
            slo.name: _Instance() for slo in rules.slos
        }
        self._live = None
        self._metric_counter = None
        if registry is not None:
            self.register_metrics(registry)

    # -- wiring --------------------------------------------------------------

    def attach(self, live) -> "AlertEngine":
        """Subscribe to a :class:`~repro.telemetry.live.LiveStream`."""
        self._live = live
        live.subscribe(self.observe_frame)
        return self

    def detach(self) -> None:
        if self._live is not None:
            self._live.unsubscribe(self.observe_frame)
            self._live = None

    def register_metrics(self, registry) -> None:
        """Expose alert state in a metrics registry (Prometheus scrape)."""
        registry.gauge(
            "ALERTS", "alert rule instances currently firing"
        ).set_function(lambda: len(self.firing()))
        registry.gauge(
            "alerts_pending", "alert rule instances currently pending"
        ).set_function(lambda: len(self.pending()))
        self._metric_counter = registry.counter(
            "alerts_transitions", "alert lifecycle transitions by (rule, state)"
        )

    def close(self) -> None:
        """Close the JSONL alert log (transitions stay queryable)."""
        if self._log_fh is not None:
            self._log_fh.close()
            self._log_fh = None

    # -- evaluation ----------------------------------------------------------

    def observe_frame(self, frame: Dict[str, Any]) -> None:
        """LiveStream subscriber: evaluate one ``multinoc-live/1`` frame."""
        self.observe_sample(
            frame_fields(frame),
            cycle=frame.get("cycle", 0),
            window=max(frame.get("window", 1), 1),
        )

    def observe_sample(
        self, fields: Dict[str, Any], *, cycle: int, window: int = 1
    ) -> List[Dict[str, Any]]:
        """Evaluate one flat sample; returns the emitted transitions."""
        self.frames_seen += 1
        self.last_cycle = cycle
        emitted: List[Dict[str, Any]] = []
        for rule in self.rules.alerts:
            emitted.extend(self._eval_rule(rule, fields, cycle))
        for slo in self.rules.slos:
            emitted.extend(self._eval_slo(slo, fields, cycle, window))
        return emitted

    def _eval_rule(
        self, rule: AlertRule, fields: Dict[str, Any], cycle: int
    ) -> List[Dict[str, Any]]:
        instances = self._instances[rule.name]
        emitted: List[Dict[str, Any]] = []
        active_keys = set()
        for labels, value in rule.condition.instances(fields):
            key = _series_key(rule.name, labels)
            holds = rule.condition.holds(value)
            if holds:
                active_keys.add(key)
            inst = instances.get(key)
            if inst is None:
                if not holds:
                    continue
                inst = instances[key] = _Instance()
            emitted.extend(
                self._step(rule, inst, labels, value, holds, cycle)
            )
        # series that vanished from the sample (an idle link drops out of
        # the frame entirely) resolve exactly like an explicit false
        for key, inst in list(instances.items()):
            if key in active_keys or inst.state == "inactive":
                continue
            if not any(
                _series_key(rule.name, labels) == key
                for labels, _ in rule.condition.instances(fields)
            ):
                emitted.extend(
                    self._step(rule, inst, _labels_of(key), None, False, cycle)
                )
        return emitted

    def _step(
        self,
        rule,
        inst: _Instance,
        labels: Dict[str, str],
        value: Any,
        holds: bool,
        cycle: int,
        *,
        rule_name: Optional[str] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> List[Dict[str, Any]]:
        """Advance one instance's lifecycle; returns emitted transitions."""
        name = rule_name if rule_name is not None else rule.name
        out: List[Dict[str, Any]] = []
        if holds:
            inst.value = value
            if inst.peak is None or (
                isinstance(value, (int, float))
                and isinstance(inst.peak, (int, float))
                and value > inst.peak
            ):
                inst.peak = value
            if inst.state == "inactive":
                inst.since = cycle
                inst.fired_at = None
                inst.peak = value
                if rule.for_cycles == 0:
                    inst.state = "firing"
                    inst.fired_at = cycle
                    out.append(
                        self._transition(rule, name, inst, labels, "firing", cycle, extra)
                    )
                else:
                    inst.state = "pending"
                    out.append(
                        self._transition(rule, name, inst, labels, "pending", cycle, extra)
                    )
            elif (
                inst.state == "pending"
                and cycle - inst.since >= rule.for_cycles
            ):
                inst.state = "firing"
                inst.fired_at = cycle
                out.append(
                    self._transition(rule, name, inst, labels, "firing", cycle, extra)
                )
        else:
            if inst.state == "firing":
                out.append(
                    self._transition(rule, name, inst, labels, "resolved", cycle, extra)
                )
            inst.state = "inactive"
            inst.value = value
        return out

    def _eval_slo(
        self, slo: SloObjective, fields: Dict[str, Any], cycle: int, window: int
    ) -> List[Dict[str, Any]]:
        instances = slo.condition.instances(fields)
        # no data for the window counts as good: nothing violated
        good = all(slo.condition.holds(v) for _, v in instances)
        history = self._slo_state[slo.name]
        history.append((window, good))
        total = sum(w for w, _ in history)
        while history and total - history[0][0] >= slo.window:
            total -= history.popleft()[0]
        bad = sum(w for w, g in history if not g)
        bad_fraction = bad / total if total else 0.0
        burn_rate = bad_fraction / slo.budget
        inst = self._slo_instances[slo.name]
        extra = {
            "slo": slo.name,
            "burn_rate": round(burn_rate, 4),
            "budget_used": round(min(burn_rate, 10.0), 4),
            "compliance": round(1.0 - bad_fraction, 6),
        }
        return self._step(
            slo,
            inst,
            {},
            round(burn_rate, 4),
            burn_rate > slo.burn,
            cycle,
            rule_name=f"slo:{slo.name}",
            extra=extra,
        )

    # -- fan-out -------------------------------------------------------------

    def _transition(
        self,
        rule,
        name: str,
        inst: _Instance,
        labels: Dict[str, str],
        state: str,
        cycle: int,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        static = getattr(rule, "labels", None) or {}
        transition: Dict[str, Any] = {
            "schema": ALERT_SCHEMA,
            "rule": name,
            "labels": {**static, **labels},
            "state": state,
            "severity": rule.severity,
            "cycle": cycle,
            "since_cycle": inst.since,
            "value": inst.value,
            "expr": rule.condition.source,
        }
        if inst.fired_at is not None:
            transition["fired_cycle"] = inst.fired_at
        annotation = None
        if hasattr(rule, "render_annotation"):
            annotation = rule.render_annotation(
                labels, inst.value if inst.value is not None else "", cycle
            )
        if annotation:
            transition["annotation"] = annotation
        if extra:
            transition.update(extra)
        self.transitions.append(transition)
        self.transitions_total += 1
        if self._log_fh is not None:
            self._log_fh.write(
                json.dumps(transition, separators=(",", ":")) + "\n"
            )
            self._log_fh.flush()
        if self._metric_counter is not None:
            self._metric_counter.inc(label=(name, state))
        if self.sink is not None:
            self.sink.track(ALERT_TRACK, process="sim")
            self.sink.instant(
                ALERT_TRACK,
                f"alert_{state}",
                cycle,
                rule=name,
                labels=transition["labels"],
                value=inst.value,
                severity=rule.severity,
            )
        if self.notify is not None:
            if callable(self.notify):
                self.notify(transition)
            else:
                print(self.render_notice(transition), file=self.notify)
        return transition

    @staticmethod
    def render_notice(transition: Dict[str, Any]) -> str:
        """One human-readable line for a transition (stderr notices)."""
        series = _series_key(transition["rule"], transition.get("labels") or {})
        value = transition.get("value")
        value_text = (
            f" value={value:g}"
            if isinstance(value, (int, float))
            else (f" value={value}" if value is not None else "")
        )
        text = (
            f"ALERT {transition['state'].upper():<8} {series} "
            f"@cycle {transition['cycle']}{value_text} "
            f"[{transition.get('severity', '?')}]"
        )
        annotation = transition.get("annotation")
        return f"{text}  {annotation}" if annotation else text

    # -- state queries -------------------------------------------------------

    def _alerts_in(self, state: str) -> List[Dict[str, Any]]:
        out = []
        for rule in self.rules.alerts:
            for key, inst in sorted(self._instances[rule.name].items()):
                if inst.state == state:
                    out.append(
                        {
                            "rule": rule.name,
                            "series": key,
                            "state": inst.state,
                            "severity": rule.severity,
                            "since_cycle": inst.since,
                            "fired_cycle": inst.fired_at,
                            "value": inst.value,
                        }
                    )
        for slo in self.rules.slos:
            inst = self._slo_instances[slo.name]
            if inst.state == state:
                out.append(
                    {
                        "rule": f"slo:{slo.name}",
                        "series": f"slo:{slo.name}",
                        "state": inst.state,
                        "severity": slo.severity,
                        "since_cycle": inst.since,
                        "fired_cycle": inst.fired_at,
                        "value": inst.value,
                    }
                )
        return out

    def firing(self) -> List[Dict[str, Any]]:
        return self._alerts_in("firing")

    def pending(self) -> List[Dict[str, Any]]:
        return self._alerts_in("pending")

    def fired_ever(self) -> List[str]:
        """Series that reached firing at any point (the check verdict)."""
        seen: List[str] = []
        for t in self.transitions:
            if t["state"] == "firing":
                key = _series_key(t["rule"], t.get("labels") or {})
                if key not in seen:
                    seen.append(key)
        return seen

    def slo_status(self) -> List[Dict[str, Any]]:
        """Per-objective budget accounting for the trailing window."""
        out = []
        for slo in self.rules.slos:
            history = self._slo_state[slo.name]
            total = sum(w for w, _ in history)
            bad = sum(w for w, g in history if not g)
            bad_fraction = bad / total if total else 0.0
            burn_rate = bad_fraction / slo.budget
            out.append(
                {
                    "slo": slo.name,
                    "expr": slo.condition.source,
                    "target": slo.target,
                    "window": slo.window,
                    "window_cycles_seen": total,
                    "compliance": round(1.0 - bad_fraction, 6),
                    "error_budget": slo.budget,
                    "budget_used": round(burn_rate, 4),
                    "burn_rate": round(burn_rate, 4),
                    "burn_threshold": slo.burn,
                    "healthy": burn_rate <= slo.burn,
                }
            )
        return out

    def document(self) -> Dict[str, Any]:
        """The ``/alerts`` endpoint document (``multinoc-alerts/1``)."""
        return {
            "schema": ALERTS_DOC_SCHEMA,
            "rules": self.rules.names(),
            "frames_seen": self.frames_seen,
            "last_cycle": self.last_cycle,
            "firing": self.firing(),
            "pending": self.pending(),
            "slos": self.slo_status(),
            "transitions": list(self.transitions),
            "transitions_total": self.transitions_total,
        }

    def summary(self) -> Dict[str, Any]:
        """Compact per-session roll-up for the fleet document."""
        out = {
            "rules": len(self.rules),
            "firing": len(self.firing()),
            "pending": len(self.pending()),
            "transitions": self.transitions_total,
        }
        slos = self.slo_status()
        if slos:
            out["slo_worst_burn"] = max(s["burn_rate"] for s in slos)
            out["slo_unhealthy"] = sum(1 for s in slos if not s["healthy"])
        return out

    def report(self) -> str:
        """Multi-line verdict report (``multinoc alerts check``)."""
        lines = [
            f"{len(self.rules)} rule(s) over {self.frames_seen} sample(s), "
            f"last cycle {self.last_cycle}"
        ]
        fired = self.fired_ever()
        lifecycles: Dict[str, List[str]] = {}
        for t in self.transitions:
            key = _series_key(t["rule"], t.get("labels") or {})
            lifecycles.setdefault(key, []).append(
                f"{t['state']}@{t['cycle']}"
            )
        for rule_name in self.rules.names():
            series = {
                k: v for k, v in lifecycles.items()
                if k == rule_name or k.startswith(rule_name + "{")
            }
            if not series:
                lines.append(f"  ok      {rule_name} (never pending)")
                continue
            for key, steps in sorted(series.items()):
                verdict = "FIRED" if key in fired else "pending"
                lines.append(f"  {verdict:<7} {key}: {' -> '.join(steps)}")
        for status in self.slo_status():
            state = "ok" if status["healthy"] else "BURNING"
            lines.append(
                f"  slo {status['slo']}: compliance "
                f"{status['compliance'] * 100:.2f}% "
                f"(target {status['target'] * 100:g}%), "
                f"burn rate {status['burn_rate']:g} "
                f"(threshold {status['burn_threshold']:g}) — {state}"
            )
        return "\n".join(lines)


def _labels_of(series_key: str) -> Dict[str, str]:
    """Recover the label dict from a series key (``name{k=v,...}``)."""
    if "{" not in series_key:
        return {}
    inner = series_key[series_key.index("{") + 1 : -1]
    out = {}
    for part in filter(None, inner.split(",")):
        k, _, v = part.partition("=")
        out[k] = v
    return out


# -- post-hoc replay ---------------------------------------------------------


def frames_from_trace(sink) -> List[Dict[str, Any]]:
    """Extract mirrored live frames from a telemetry sink/event iterable.

    Runs served or alerted through the CLI mirror every live frame into
    the event stream (track ``live``, name ``frame``); replaying those
    frames through an :class:`AlertEngine` reproduces the live verdicts
    exactly.  Returns frames in emission order.
    """
    events = getattr(sink, "events", sink)
    frames = []
    for event in events:
        if event.track == FRAME_TRACK and event.name == FRAME_EVENT:
            frame = (event.args or {}).get("frame")
            if isinstance(frame, dict):
                frames.append(frame)
    return frames


def check_frames(
    rules: RuleSet, frames: Iterable[Dict[str, Any]], **engine_kwargs
) -> AlertEngine:
    """Replay *frames* through a fresh engine; returns it for verdicts."""
    engine = AlertEngine(rules, **engine_kwargs)
    for frame in frames:
        engine.observe_frame(frame)
    return engine


def check_records(
    rules: RuleSet, records: Iterable[Dict[str, Any]], **engine_kwargs
) -> AlertEngine:
    """Evaluate rules over registry records (one record = one step).

    The sample for each record is its flat ``metrics`` dict plus
    ``status``/``exit_code``; the clock advances by one per record, so
    a ``for: N`` clause means "N consecutive records".
    """
    engine = AlertEngine(rules, **engine_kwargs)
    for i, record in enumerate(records):
        engine.observe_sample(record_fields(record), cycle=i, window=1)
    return engine
