"""Host performance observatory: sampling self-profiler + flight recorder.

The lock-step :class:`~repro.telemetry.profiler.KernelProfiler` answers
"which component is slow?" with exact per-call timings, but it answers
by *changing the execution mode*: an attached profiler forces the
kernel out of its quiescence fast path, so the very thing that makes
large fabrics simulable (~3.5x idle skipping) disappears from the
measurement.  This module is the complementary instrument: a
**sampling** profiler that observes the simulator from a side thread
while it runs at full speed, on whichever kernel path it would have
taken anyway.

Three pieces:

* :class:`HostPerfProfiler` — a daemon thread samples the simulation
  thread's Python stack every ``interval`` seconds
  (:func:`sys._current_frames`) and attributes the wall-clock time
  since the previous sample to a *(kernel region, subsystem)* bucket.
  Kernel regions (wake-heap drain, eval, wire commit, watchers, idle
  fast-forward) are recovered from ``# hostperf:`` marker comments in
  :mod:`repro.sim.kernel` via line numbers — zero runtime cost in the
  kernel itself — and subsystems (Router, NI, ProcessorIP, Uart,
  Memory, ...) from the innermost sampled frame's module.  Every sample
  is tagged with the simulated cycle, so the headline metric is
  **host-seconds per simulated kilocycle per subsystem**.  Cheap
  counters ride the kernel's skip-listener hook to count fast-forward
  spans exactly.  Because every tick's elapsed time lands in *some*
  bucket (``host``/``other`` catch everything unrecognised), the
  attributed total approximates measured wall time — the coverage
  contract ``multinoc profile`` reports and CI gates.

* memory telemetry — RSS (``/proc/self/status``, with a
  :mod:`resource` fallback), GC pause counts/durations via
  :data:`gc.callbacks`, and optional :mod:`tracemalloc` attribution of
  allocations by subsystem (off by default: tracing allocations is
  itself expensive).

* :class:`FlightRecorder` — keeps the last N live frames in a ring and,
  when the run dies (:class:`~repro.sim.kernel.SimulationTimeout`,
  :class:`~repro.telemetry.health.HealthViolation`, any unhandled
  exception), writes a schema'd crash bundle directory
  (``multinoc-crash/1``): manifest, traceback, the frame ring, the
  hostperf snapshot and the health diagnostics.

The profiler only *reads* simulator state: a profiled run is
architecturally bit-identical to an unprofiled one, in both kernel
modes (guarded by ``tests/test_hostperf.py`` exactly like the live
plane's equivalence test).
"""

from __future__ import annotations

import gc
import json
import os
import sys
import threading
import time
import traceback
from bisect import bisect_right
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

HOSTPERF_SCHEMA = "multinoc-hostperf/1"
CRASH_SCHEMA = "multinoc-crash/1"

#: kernel regions a sample can land in (plus the ``host`` catch-all)
REGIONS = (
    "wake_heap",
    "eval",
    "commit",
    "watchers",
    "fast_forward",
    "run_until",
    "kernel",
    "host",
)

#: module-path fragment -> subsystem, most specific first (first match
#: wins, so ``noc/router`` must precede ``noc/``)
_SUBSYSTEM_RULES: Tuple[Tuple[str, str], ...] = (
    ("noc/router", "Router"),
    ("noc/ni", "NI"),
    ("noc/", "NoC"),
    ("system/processor_ip", "ProcessorIP"),
    ("r8/assembler", "Toolchain"),
    ("r8/debugger", "Toolchain"),
    ("r8/disassembler", "Toolchain"),
    ("r8/", "ProcessorIP"),
    ("serial/", "Uart"),
    ("memory/", "Memory"),
    ("system/", "System"),
    ("telemetry/", "Telemetry"),
    ("host/", "Host"),
    ("apps/", "Host"),
    ("cc/", "Toolchain"),
    ("core/", "Host"),
    ("sim/", "Kernel"),
)

#: component-ish subsystems: the innermost frame in one of these wins
#: the sample even when outer frames sit in telemetry or host code
_COMPONENT_SUBSYSTEMS = frozenset(
    {"Router", "NI", "NoC", "ProcessorIP", "Uart", "Memory", "System"}
)


def _subsystem_for_filename(filename: str) -> Optional[str]:
    """Map a source path to a subsystem, or None outside ``repro``."""
    normalized = filename.replace("\\", "/")
    marker = "repro/"
    idx = normalized.rfind(marker)
    if idx < 0:
        return None
    tail = normalized[idx + len(marker):]
    for fragment, subsystem in _SUBSYSTEM_RULES:
        if tail.startswith(fragment):
            return subsystem
    return "Host"


def _kernel_region_table() -> Dict[str, Tuple[List[int], List[str]]]:
    """Per-function ``(line numbers, regions)`` parsed from the
    ``# hostperf:`` marker comments in :mod:`repro.sim.kernel`.

    A marker at line L names the region for every line from L until the
    next marker; lines before the first marker fall back to ``kernel``.
    Parsing happens once per process (:func:`inspect.getsourcelines`),
    so the kernel's hot loop carries only comments.
    """
    import inspect

    from ..sim.kernel import Simulator

    table: Dict[str, Tuple[List[int], List[str]]] = {}
    for fn in (Simulator.step, Simulator._step_lockstep):
        lines, start = inspect.getsourcelines(fn)
        marks: List[Tuple[int, str]] = []
        for offset, line in enumerate(lines):
            text = line.strip()
            pos = text.find("# hostperf:")
            if pos >= 0:
                region = text[pos + len("# hostperf:"):].strip()
                marks.append((start + offset, region))
        linenos = [m[0] for m in marks]
        regions = [m[1] for m in marks]
        table[fn.__name__] = (linenos, regions)
    return table


_REGION_TABLE: Optional[Dict[str, Tuple[List[int], List[str]]]] = None


def _region_for_kernel_frame(co_name: str, lineno) -> str:
    """Region of a sampled frame inside ``Simulator`` by line number."""
    global _REGION_TABLE
    if _REGION_TABLE is None:
        _REGION_TABLE = _kernel_region_table()
    if co_name == "_fast_forward":
        return "fast_forward"
    if co_name == "run_until":
        return "run_until"
    entry = _REGION_TABLE.get(co_name)
    # f_lineno can be None when the sampled thread sits mid-bytecode
    if entry is None or lineno is None:
        return "kernel"
    linenos, regions = entry
    idx = bisect_right(linenos, lineno) - 1
    return regions[idx] if idx >= 0 else "kernel"


def _frame_label(frame) -> str:
    """Compact ``package.module:function`` label for folded stacks."""
    filename = frame.f_code.co_filename.replace("\\", "/")
    parts = filename.rsplit("/", 2)
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    prefix = parts[-2] + "." if len(parts) > 1 else ""
    return f"{prefix}{stem}:{frame.f_code.co_name}"


def read_rss_bytes() -> int:
    """Resident set size of this process, in bytes (0 if unknowable)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # linux reports KiB, macOS bytes
        return usage * 1024 if sys.platform != "darwin" else usage
    except Exception:
        return 0


class HostPerfProfiler:
    """Low-overhead sampling profiler for the simulation host process.

    Parameters
    ----------
    interval:
        Seconds between stack samples (default 5 ms; ~200 samples/s).
    history:
        Recent samples kept for the flight recorder's black box, each a
        ``(wall, cycle, region, subsystem)`` tuple.
    trace_memory:
        Start :mod:`tracemalloc` and attribute allocations by subsystem
        in the snapshot.  Off by default — allocation tracing costs far
        more than the ``<=5%`` sampling budget.
    max_stack_depth:
        Frames kept per folded stack for the flamegraph output.

    Unlike :class:`~repro.telemetry.profiler.KernelProfiler`, attaching
    this profiler does **not** change the kernel's execution mode: the
    quiescent fast path, idle fast-forward and watcher cadence all run
    exactly as in an unobserved simulation.
    """

    def __init__(
        self,
        *,
        interval: float = 0.005,
        history: int = 512,
        trace_memory: bool = False,
        max_stack_depth: int = 40,
    ):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.trace_memory = trace_memory
        self.max_stack_depth = max_stack_depth

        #: (region, subsystem) -> attributed host seconds
        self.seconds: Dict[Tuple[str, str], float] = {}
        #: folded stack -> sample count (flamegraph input)
        self.stack_counts: Dict[str, int] = {}
        #: black box: recent (wall, cycle, region, subsystem) samples
        self.recent: deque = deque(maxlen=history)
        self.samples = 0

        self.sim = None
        self._ident: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

        self._start_wall: Optional[float] = None
        self._start_cycle = 0
        self._wall_s = 0.0
        self._end_cycle = 0

        # fast-forward counters (exact, via the kernel's skip listener)
        self.ff_spans = 0
        self.ff_cycles = 0

        # memory telemetry
        self.rss_bytes = 0
        self.rss_peak_bytes = 0
        self.gc_pauses = 0
        self.gc_pause_s = 0.0
        self._gc_t0: Optional[float] = None
        self._gc_hooked = False
        self._tracemalloc_started = False

    # -- wiring ------------------------------------------------------------

    def attach(self, sim) -> "HostPerfProfiler":
        """Advertise on *sim* and hook the fast-forward counters.

        Attachment is observational only: ``sim.profiler`` is left
        untouched, so the kernel stays on whichever path it was on.
        """
        self.sim = sim
        sim.hostperf = self
        sim.add_skip_listener(self._on_skip)
        return self

    def detach(self) -> None:
        """Stop sampling and unhook from the simulator."""
        self.stop()
        if self.sim is not None:
            self.sim.remove_skip_listener(self._on_skip)
            if getattr(self.sim, "hostperf", None) is self:
                self.sim.hostperf = None

    def _on_skip(self, start: int, end: int) -> None:
        self.ff_spans += 1
        self.ff_cycles += end - start

    # -- sampling ----------------------------------------------------------

    def start(self) -> "HostPerfProfiler":
        """Begin sampling the *calling* thread (the one driving the sim)."""
        if self._thread is not None:
            return self
        self._ident = threading.get_ident()
        self._start_wall = perf_counter()
        self._start_cycle = self.sim.cycle if self.sim is not None else 0
        self._stop.clear()
        if not self._gc_hooked:
            gc.callbacks.append(self._on_gc)
            self._gc_hooked = True
        if self.trace_memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started = True
        self.rss_bytes = read_rss_bytes()
        self.rss_peak_bytes = max(self.rss_peak_bytes, self.rss_bytes)
        self._thread = threading.Thread(
            target=self._run, name="hostperf-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "HostPerfProfiler":
        """Stop the sampler thread; safe to call more than once."""
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        if self._start_wall is not None:
            self._wall_s += perf_counter() - self._start_wall
            self._start_wall = None
        self._end_cycle = self.sim.cycle if self.sim is not None else 0
        if self._gc_hooked:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:
                pass
            self._gc_hooked = False
        self.rss_bytes = read_rss_bytes()
        self.rss_peak_bytes = max(self.rss_peak_bytes, self.rss_bytes)
        return self

    def _run(self) -> None:
        last = perf_counter()
        ticks = 0
        while not self._stop.wait(self.interval):
            now = perf_counter()
            self._tick(now - last, now)
            last = now
            ticks += 1
            if ticks % 16 == 0:
                rss = read_rss_bytes()
                self.rss_bytes = rss
                if rss > self.rss_peak_bytes:
                    self.rss_peak_bytes = rss
        # attribute the final partial interval so the per-bucket total
        # tracks measured wall time (the >=90% coverage contract)
        now = perf_counter()
        if now > last:
            self._tick(now - last, now)

    def _tick(self, dt: float, now: float) -> None:
        frames = sys._current_frames().get(self._ident)
        if frames is None:
            return
        region, subsystem, folded = self._classify(frames)
        cycle = self.sim.cycle if self.sim is not None else 0
        with self._lock:
            key = (region, subsystem)
            self.seconds[key] = self.seconds.get(key, 0.0) + dt
            self.stack_counts[folded] = self.stack_counts.get(folded, 0) + 1
            self.samples += 1
            self.recent.append((now, cycle, region, subsystem))

    def _classify(self, frame) -> Tuple[str, str, str]:
        """One sampled stack -> (region, subsystem, folded stack)."""
        region: Optional[str] = None
        subsystem: Optional[str] = None
        fallback: Optional[str] = None
        chain = []
        f = frame
        while f is not None:
            chain.append(f)
            f = f.f_back
        # innermost first: the leaf component wins the subsystem, the
        # innermost Simulator frame wins the region
        for f in chain:
            filename = f.f_code.co_filename
            mapped = _subsystem_for_filename(filename)
            if mapped is None:
                continue
            if mapped == "Kernel":
                if region is None and filename.replace("\\", "/").endswith(
                    "sim/kernel.py"
                ):
                    region = _region_for_kernel_frame(
                        f.f_code.co_name, f.f_lineno
                    )
                if fallback is None:
                    fallback = "Kernel"
            elif subsystem is None and mapped in _COMPONENT_SUBSYSTEMS:
                subsystem = mapped
            elif fallback is None:
                fallback = mapped
            if region is not None and subsystem is not None:
                break
        if region is None:
            region = "host"
        if subsystem is None:
            subsystem = fallback or "other"
        folded = ";".join(
            _frame_label(f)
            for f in reversed(chain[: self.max_stack_depth])
        )
        return region, subsystem, folded

    def _on_gc(self, phase: str, info: Dict[str, Any]) -> None:
        if phase == "start":
            self._gc_t0 = perf_counter()
        elif phase == "stop":
            if self._gc_t0 is not None:
                self.gc_pause_s += perf_counter() - self._gc_t0
                self._gc_t0 = None
            self.gc_pauses += 1

    # -- reporting ---------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Wall time under observation (running total while sampling)."""
        live = (
            perf_counter() - self._start_wall
            if self._start_wall is not None
            else 0.0
        )
        return self._wall_s + live

    @property
    def attributed_seconds(self) -> float:
        with self._lock:
            return sum(self.seconds.values())

    @property
    def sim_cycles(self) -> int:
        end = (
            self.sim.cycle
            if self._start_wall is not None and self.sim is not None
            else self._end_cycle
        )
        return max(end - self._start_cycle, 0)

    def by_subsystem(self) -> Dict[str, float]:
        """Host seconds per subsystem, descending."""
        with self._lock:
            totals: Dict[str, float] = {}
            for (_, subsystem), s in self.seconds.items():
                totals[subsystem] = totals.get(subsystem, 0.0) + s
        return dict(
            sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
        )

    def by_region(self) -> Dict[str, float]:
        """Host seconds per kernel region, descending."""
        with self._lock:
            totals: Dict[str, float] = {}
            for (region, _), s in self.seconds.items():
                totals[region] = totals.get(region, 0.0) + s
        return dict(
            sorted(totals.items(), key=lambda kv: kv[1], reverse=True)
        )

    def snapshot(self) -> Dict[str, Any]:
        """The full observation as a ``multinoc-hostperf/1`` document."""
        wall = self.wall_seconds
        cycles = self.sim_cycles
        kcycles = cycles / 1000.0
        subsystems = {
            name: {
                "seconds": round(s, 6),
                "share": round(s / wall, 4) if wall > 0 else 0.0,
                "host_s_per_kcycle": (
                    round(s / kcycles, 6) if kcycles > 0 else None
                ),
            }
            for name, s in self.by_subsystem().items()
        }
        doc: Dict[str, Any] = {
            "schema": HOSTPERF_SCHEMA,
            "interval_s": self.interval,
            "samples": self.samples,
            "wall_s": round(wall, 6),
            "attributed_s": round(self.attributed_seconds, 6),
            "cycles": cycles,
            "sim_rate_hz": round(cycles / wall, 1) if wall > 0 else 0.0,
            "host_s_per_kcycle": (
                round(wall / kcycles, 6) if kcycles > 0 else None
            ),
            "regions": {
                name: round(s, 6) for name, s in self.by_region().items()
            },
            "subsystems": subsystems,
            "fast_forward": {
                "spans": self.ff_spans,
                "cycles": self.ff_cycles,
            },
            "memory": {
                "rss_bytes": self.rss_bytes,
                "rss_peak_bytes": self.rss_peak_bytes,
                "gc_pauses": self.gc_pauses,
                "gc_pause_s": round(self.gc_pause_s, 6),
            },
        }
        allocs = self._tracemalloc_by_subsystem()
        if allocs is not None:
            doc["memory"]["tracemalloc_kb"] = allocs
        return doc

    def _tracemalloc_by_subsystem(self) -> Optional[Dict[str, float]]:
        if not self.trace_memory:
            return None
        import tracemalloc

        if not tracemalloc.is_tracing():
            return None
        totals: Dict[str, float] = {}
        for stat in tracemalloc.take_snapshot().statistics("filename"):
            subsystem = (
                _subsystem_for_filename(stat.traceback[0].filename)
                or "other"
            )
            totals[subsystem] = totals.get(subsystem, 0.0) + stat.size
        return {
            name: round(size / 1024, 1)
            for name, size in sorted(
                totals.items(), key=lambda kv: kv[1], reverse=True
            )
        }

    def report(self, top: int = 12) -> str:
        """Formatted host-profile table (the CLI's stdout report)."""
        wall = self.wall_seconds
        cycles = self.sim_cycles
        kcycles = cycles / 1000.0
        if not self.samples:
            return "host profile (no samples collected)"
        rate = cycles / wall if wall > 0 else 0.0
        lines = [
            f"host profile: {self.samples} samples over {wall:.2f} s, "
            f"{cycles:,} cycles ({rate:,.0f} cycles/s)",
            f"{'subsystem':<14} {'time':>10} {'share':>7} "
            f"{'host-s/kcyc':>12}",
        ]
        for name, s in list(self.by_subsystem().items())[:top]:
            per_kcyc = (
                f"{s / kcycles:>12.6f}" if kcycles > 0 else f"{'-':>12}"
            )
            lines.append(
                f"{name:<14} {s * 1e3:>8.1f}ms "
                f"{s / wall if wall > 0 else 0:>6.1%} {per_kcyc}"
            )
        region_text = "  ".join(
            f"{name} {s / wall if wall > 0 else 0:.0%}"
            for name, s in list(self.by_region().items())[:6]
        )
        lines.append(f"regions: {region_text}")
        if self.ff_spans:
            lines.append(
                f"fast-forward: {self.ff_spans} spans, "
                f"{self.ff_cycles:,} cycles skipped"
            )
        lines.append(
            f"memory: rss {self.rss_bytes / 1e6:.1f} MB "
            f"(peak {self.rss_peak_bytes / 1e6:.1f}), "
            f"gc {self.gc_pauses} pause(s) / {self.gc_pause_s * 1e3:.1f} ms"
        )
        return "\n".join(lines)

    def folded_stacks(self) -> List[str]:
        """``frame;frame;leaf count`` lines for flamegraph.pl/speedscope
        (the same folded format ``multinoc analyze --flamegraph`` emits).
        """
        with self._lock:
            items = sorted(
                self.stack_counts.items(), key=lambda kv: kv[1], reverse=True
            )
        return [f"{stack} {count}" for stack, count in items if stack]

    # -- surfacing ---------------------------------------------------------

    def frame_fields(self) -> Dict[str, Any]:
        """Compact host panel for ``multinoc-live/1`` frames."""
        wall = self.wall_seconds
        regions = {
            name: round(s / wall, 4) if wall > 0 else 0.0
            for name, s in list(self.by_region().items())[:6]
        }
        kcycles = self.sim_cycles / 1000.0
        return {
            "attached": True,
            "samples": self.samples,
            "rss_mb": round(self.rss_bytes / 1e6, 1),
            "gc_pauses": self.gc_pauses,
            "gc_pause_ms": round(self.gc_pause_s * 1e3, 2),
            "regions": regions,
            "host_s_per_kcycle": (
                round(wall / kcycles, 6) if kcycles > 0 else 0.0
            ),
        }

    def bind_metrics(self, registry) -> None:
        """Expose the observatory through a metrics registry (and thus
        ``/metrics``): RSS, sample count, GC pauses, attributed wall."""
        registry.gauge(
            "host_rss_bytes", "resident set size of the simulator process"
        ).set_function(lambda: self.rss_bytes)
        registry.gauge(
            "host_profile_samples", "stack samples collected by hostperf"
        ).set_function(lambda: self.samples)
        registry.gauge(
            "host_gc_pauses", "garbage-collector pauses observed"
        ).set_function(lambda: self.gc_pauses)
        registry.gauge(
            "host_attributed_seconds",
            "wall seconds attributed to (region, subsystem) buckets",
        ).set_function(lambda: self.attributed_seconds)

    def run_metrics(self) -> Dict[str, float]:
        """Flat numeric summary for the cross-run registry, so
        ``multinoc runs trend`` can gate host-performance regressions."""
        wall = self.wall_seconds
        kcycles = self.sim_cycles / 1000.0
        metrics: Dict[str, float] = {
            "host_wall_s": round(wall, 4),
            "host_rss_peak_mb": round(self.rss_peak_bytes / 1e6, 1),
            "host_gc_pause_ms": round(self.gc_pause_s * 1e3, 2),
        }
        if kcycles > 0:
            metrics["host_s_per_kcycle"] = round(wall / kcycles, 6)
        if wall > 0:
            metrics["host_sample_coverage"] = round(
                self.attributed_seconds / wall, 4
            )
        return metrics


class FlightRecorder:
    """Crash black box: last N live frames + state bundles on failure.

    Subscribe to a :class:`~repro.telemetry.live.LiveStream` with
    :meth:`watch` (purely observational — frames are copied into a
    bounded ring), then either wrap the run in :meth:`armed` or call
    :meth:`record` from an exception handler.  Each crash writes one
    ``multinoc-crash/1`` bundle directory under *root*::

        crash-<utc stamp>-<pid>/
            manifest.json    # schema, exception, cycle, file map
            traceback.txt    # formatted exception + stack
            frames.jsonl     # the last N multinoc-live/1 frames
            hostperf.json    # sampling-profiler snapshot (when attached)
            health.json      # health diagnostics (monitor or timeout)
    """

    def __init__(self, root, *, keep_frames: int = 32):
        if keep_frames < 1:
            raise ValueError("keep_frames must keep at least 1 frame")
        self.root = Path(root)
        self.frames: deque = deque(maxlen=keep_frames)
        self._live = None

    # -- observation -------------------------------------------------------

    def watch(self, live) -> "FlightRecorder":
        """Mirror *live*'s frames into the ring; returns self."""
        self._live = live
        live.subscribe(self._on_frame)
        return self

    def unwatch(self) -> None:
        if self._live is not None:
            self._live.unsubscribe(self._on_frame)
            self._live = None

    def _on_frame(self, frame: Dict[str, Any]) -> None:
        self.frames.append(frame)

    # -- recording ---------------------------------------------------------

    @contextmanager
    def armed(self, *, sim=None, hostperf=None, health=None):
        """Run a block under the recorder: any exception writes a bundle
        (path stored as :attr:`last_bundle`) and is re-raised."""
        try:
            yield self
        except Exception as exc:
            self.record(exc, sim=sim, hostperf=hostperf, health=health)
            raise

    def record(
        self,
        exc: BaseException,
        *,
        sim=None,
        hostperf=None,
        health=None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write one crash bundle for *exc*; returns the bundle path."""
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        base = self.root / f"crash-{stamp}-{os.getpid()}"
        bundle = base
        attempt = 1
        while bundle.exists():
            attempt += 1
            bundle = Path(f"{base}-{attempt}")
        bundle.mkdir(parents=True)

        files: Dict[str, str] = {"traceback": "traceback.txt"}
        (bundle / "traceback.txt").write_text(
            "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
        )

        files["frames"] = "frames.jsonl"
        (bundle / "frames.jsonl").write_text(
            "".join(json.dumps(frame) + "\n" for frame in self.frames)
        )

        if hostperf is not None:
            files["hostperf"] = "hostperf.json"
            (bundle / "hostperf.json").write_text(
                json.dumps(hostperf.snapshot(), indent=2)
            )

        diagnostics = self._health_document(exc, health)
        if diagnostics is not None:
            files["health"] = "health.json"
            (bundle / "health.json").write_text(
                json.dumps(diagnostics, indent=2)
            )

        manifest = {
            "schema": CRASH_SCHEMA,
            "created_unix": time.time(),
            "exception": {
                "type": type(exc).__name__,
                "message": str(exc),
            },
            "cycle": sim.cycle if sim is not None else None,
            "frames": len(self.frames),
            "files": files,
            "meta": dict(meta or {}),
        }
        (bundle / "manifest.json").write_text(json.dumps(manifest, indent=2))
        self.last_bundle = bundle
        return bundle

    #: path of the most recent bundle written by :meth:`record`
    last_bundle: Optional[Path] = None

    def _health_document(
        self, exc: BaseException, health
    ) -> Optional[Dict[str, Any]]:
        """Best diagnostics available: the monitor's full report, a
        timeout's embedded dump, or a violation's own details."""
        if health is not None:
            try:
                return health.report()
            except Exception:
                pass
        diagnostics = getattr(exc, "diagnostics", None)
        if diagnostics is not None:
            return {"diagnostics": diagnostics}
        as_dict = getattr(exc, "as_dict", None)
        if callable(as_dict):
            return {"violation": as_dict()}
        return None
