"""Exporters: JSONL event log, Chrome trace-event / Perfetto JSON,
Prometheus text.

The Chrome trace-event format (the JSON flavour Perfetto and
``chrome://tracing`` both load) maps telemetry concepts directly:

* each registered *process* ("noc", "cpu", "host", "serial") becomes a
  ``pid`` with a ``process_name`` metadata record,
* each *track* (one router, one CPU, the host) becomes a ``tid`` with a
  ``thread_name`` metadata record,
* span/instant/counter events pass through with their phase letter.

Timestamps: the trace-event ``ts`` field is in microseconds.  With a
``clock_hz`` the cycle stamps are converted to real simulated time;
without one, one cycle is rendered as one microsecond (relative timing
is what matters in a viewer).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .events import TelemetrySink

PathLike = Union[str, Path]


def chrome_trace(
    sink: TelemetrySink, clock_hz: Optional[float] = None
) -> Dict[str, Any]:
    """Build the trace-event JSON document as a dict."""
    scale = 1e6 / clock_hz if clock_hz else 1.0
    pids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []

    def pid_of(process: str) -> int:
        if process not in pids:
            pids[process] = len(pids) + 1
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pids[process],
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        return pids[process]

    track_ids: Dict[str, tuple] = {}
    for track, (process, tid) in sink.tracks.items():
        pid = pid_of(process)
        track_ids[track] = (pid, tid)
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )

    for event in sink.events:
        pid, tid = track_ids[event.track]
        record: Dict[str, Any] = {
            "name": event.name,
            "ph": event.ph,
            "ts": event.ts * scale,
            "pid": pid,
            "tid": tid,
        }
        if event.ph == "X":
            record["dur"] = (event.dur or 0) * scale
        if event.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = event.args
        trace_events.append(record)

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    sink: TelemetrySink, path: PathLike, clock_hz: Optional[float] = None
) -> Path:
    """Write a ``.json`` file that loads in Perfetto / chrome://tracing."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(sink, clock_hz=clock_hz)))
    return path


def write_jsonl(sink: TelemetrySink, path: PathLike) -> Path:
    """Write one JSON object per event — greppable, streamable."""
    path = Path(path)
    with path.open("w") as fh:
        for event in sink.events:
            fh.write(json.dumps(event.as_dict()))
            fh.write("\n")
    return path


def write_prometheus(sink: TelemetrySink, path: PathLike) -> Path:
    """Write the metrics registry in Prometheus exposition format."""
    path = Path(path)
    path.write_text(sink.metrics.prometheus_text())
    return path
