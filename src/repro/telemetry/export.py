"""Exporters: JSONL event log, Chrome trace-event / Perfetto JSON,
Prometheus text.

The Chrome trace-event format (the JSON flavour Perfetto and
``chrome://tracing`` both load) maps telemetry concepts directly:

* each registered *process* ("noc", "cpu", "host", "serial") becomes a
  ``pid`` with a ``process_name`` metadata record,
* each *track* (one router, one CPU, the host) becomes a ``tid`` with a
  ``thread_name`` metadata record,
* span/instant/counter events pass through with their phase letter.

Timestamps: the trace-event ``ts`` field is in microseconds.  With a
``clock_hz`` the cycle stamps are converted to real simulated time;
without one, one cycle is rendered as one microsecond (relative timing
is what matters in a viewer).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .events import Event, TelemetrySink

PathLike = Union[str, Path]


def _packet_flows(sink: TelemetrySink) -> List[tuple]:
    """Pair each NI ``inject`` span with its destination ``packet`` span.

    Both spans start at the packet's injection cycle and the delivering
    NI stamps its own address (``at``) while the injector stamps the
    ``target``, so pairing on ``(address, injection ts)`` — FIFO on ties
    — reproduces the network's own delivery matching.  Returns
    ``(inject_event, packet_event)`` pairs.
    """
    pending: Dict[tuple, List[Event]] = {}
    pairs: List[tuple] = []
    for event in sink.events:
        if event.ph != "X" or not event.args:
            continue
        if event.name == "inject" and "target" in event.args:
            key = (event.args["target"], event.ts)
            pending.setdefault(key, []).append(event)
        elif event.name == "packet" and "at" in event.args:
            queue = pending.get((event.args["at"], event.ts))
            if queue:
                pairs.append((queue.pop(0), event))
    return pairs


def chrome_trace(
    sink: TelemetrySink, clock_hz: Optional[float] = None
) -> Dict[str, Any]:
    """Build the trace-event JSON document as a dict."""
    scale = 1e6 / clock_hz if clock_hz else 1.0
    pids: Dict[str, int] = {}
    trace_events: List[Dict[str, Any]] = []

    def pid_of(process: str) -> int:
        if process not in pids:
            pids[process] = len(pids) + 1
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pids[process],
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        return pids[process]

    track_ids: Dict[str, tuple] = {}
    for track, (process, tid) in sink.tracks.items():
        pid = pid_of(process)
        track_ids[track] = (pid, tid)
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )

    for event in sink.events:
        pid, tid = track_ids[event.track]
        record: Dict[str, Any] = {
            "name": event.name,
            "ph": event.ph,
            "ts": event.ts * scale,
            "pid": pid,
            "tid": tid,
        }
        if event.ph == "X":
            record["dur"] = (event.dur or 0) * scale
        if event.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = event.args
        trace_events.append(record)

    # Flow events: draw the injection -> delivery arrow across tracks.
    for flow_id, (inject, packet) in enumerate(_packet_flows(sink), start=1):
        src_pid, src_tid = track_ids[inject.track]
        dst_pid, dst_tid = track_ids[packet.track]
        common = {"name": "packet_flow", "cat": "packet", "id": flow_id}
        trace_events.append(
            {
                **common,
                "ph": "s",
                "ts": (inject.ts + (inject.dur or 0)) * scale,
                "pid": src_pid,
                "tid": src_tid,
            }
        )
        trace_events.append(
            {
                **common,
                "ph": "f",
                "bp": "e",  # bind to the enclosing `packet` slice
                "ts": (packet.ts + (packet.dur or 0)) * scale,
                "pid": dst_pid,
                "tid": dst_tid,
            }
        )

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    sink: TelemetrySink, path: PathLike, clock_hz: Optional[float] = None
) -> Path:
    """Write a ``.json`` file that loads in Perfetto / chrome://tracing."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(sink, clock_hz=clock_hz)))
    return path


def write_jsonl(sink: TelemetrySink, path: PathLike) -> Path:
    """Write one JSON object per event — greppable, streamable.

    The first line is a ``meta`` record carrying the track registry, so
    :func:`load_jsonl` can rebuild an equivalent sink (process grouping
    included) and post-mortem analysis of the file matches analysis of
    the live sink exactly.
    """
    path = Path(path)
    with path.open("w") as fh:
        fh.write(
            json.dumps(
                {
                    "meta": "tracks",
                    "tracks": {
                        name: [process, tid]
                        for name, (process, tid) in sink.tracks.items()
                    },
                }
            )
        )
        fh.write("\n")
        for event in sink.events:
            fh.write(json.dumps(event.as_dict()))
            fh.write("\n")
    return path


def load_jsonl(path: PathLike) -> TelemetrySink:
    """Rebuild a :class:`TelemetrySink` from a :func:`write_jsonl` file.

    Tolerates files without the leading ``meta`` line (tracks are then
    re-registered in event order under the default process).
    """
    sink = TelemetrySink()
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("meta") == "tracks":
                for name, (process, _tid) in record["tracks"].items():
                    sink.track(name, process=process)
                continue
            sink.emit(
                Event(
                    record["ph"],
                    record["name"],
                    record["track"],
                    record["ts"],
                    record.get("dur"),
                    record.get("args"),
                )
            )
    return sink


def write_prometheus(sink: TelemetrySink, path: PathLike) -> Path:
    """Write the metrics registry in Prometheus exposition format."""
    path = Path(path)
    path.write_text(sink.metrics.prometheus_text())
    return path
