"""Post-mortem trace analytics: critical paths, congestion, profiles, diffs.

This module turns a recorded :class:`~repro.telemetry.events.TelemetrySink`
(live, or reloaded from a ``--trace-jsonl`` file) into the answers the
paper's evaluation section asks of a run:

**Per-packet critical paths.**  Every delivered packet's
injection→hop→delivery chain is reconstructed offline and its latency is
decomposed, per hop, into four components measured between consecutive
timestamp boundaries::

    s ......... hop start (injection stamp at hop 0; the header flit's
                FIFO-entry ``hdr`` instant downstream)
    a = f-(R-1) the cycle the control logic started serving the request
    f ......... first routing decision (``route`` or first ``route_blocked``)
    o ......... connection opened (the successful ``route``)
    end ....... next hop's start, or the delivery cycle on the last hop

    queueing      = a - s     (buffer + arbitration wait)
    routing       = f - a     (the R-1 cycle routing service, paper's Ri)
    blocked       = o - f     (output port held by another wormhole)
    serialization = end - o   (handshake transfer to the next stage; the
                               last hop absorbs the pipelined payload drain)

Because the components are differences of *consecutive* boundaries on one
timeline, their sum telescopes to ``delivered - injected`` exactly — the
decomposition is cycle-exact by construction, never approximated.

**Reconstruction without packet ids on the wire.**  Hermes flits carry no
identity, so the analyzer exploits three invariants of the model instead:
XY routing is deterministic (the hop sequence follows from source and
target alone), each input port serves packets strictly FIFO, and a link
is owned by one wormhole at a time (packets cross it in connection-open
order).  Seeding each router's LOCAL queue with its NI's injection order
and replaying ``hop`` spans in ascending open order therefore assigns
every span to the right packet positionally.

**Congestion attribution.**  A hop's blocked window ``[f, o)`` is matched
against the ``hop`` spans that occupied the contested output link during
that window; the overlap is charged to the occupying flow, yielding a
victim×blocker contention matrix and a ranked hotspot report.

**R8 profiles.**  ``pcsample`` events (per-``(call stack, pc)`` cycle
counts flushed by :meth:`~repro.r8.cpu.R8Cpu.flush_pc_samples`) are
resolved against the program's symbol table (``symbols`` events stashed
by the host loader) into function reports, folded stacks for
``flamegraph.pl``/Speedscope, and annotated disassembly listings.

**Diffing.**  :func:`diff_traces` aligns two analyses flow-by-flow,
link-by-link and function-by-function and reports regressions beyond a
relative + absolute threshold.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..noc.routing import OPPOSITE, PORT_DELTA, Port
from ..noc.topology import from_descriptor, port_index
from .events import TelemetrySink

#: schema tag carried by every exported analysis document
SCHEMA = "multinoc-analysis/1"

_COMPONENTS = ("queueing", "routing", "blocked", "serialization")


def _parse_addr(text: str) -> Tuple[int, int]:
    x, y = text.split(",")
    return int(x), int(y)


@dataclass
class HopBreakdown:
    """One router traversal of one packet, with its latency split."""

    router: str
    address: Tuple[int, int]
    in_port: str
    out_port: str
    start: int
    decision: int
    opened: int
    end: Optional[int] = None
    routing_cycles: int = 1
    #: (blocker flow, cycles) pairs covering this hop's blocked window
    blocked_by: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def arb_start(self) -> int:
        return self.decision - (self.routing_cycles - 1)

    @property
    def queueing(self) -> int:
        return self.arb_start - self.start

    @property
    def routing(self) -> int:
        return self.decision - self.arb_start

    @property
    def blocked(self) -> int:
        return self.opened - self.decision

    @property
    def serialization(self) -> Optional[int]:
        return None if self.end is None else self.end - self.opened

    def components(self) -> Dict[str, int]:
        return {
            "queueing": self.queueing,
            "routing": self.routing,
            "blocked": self.blocked,
            "serialization": self.serialization or 0,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "router": self.router,
            "in": self.in_port,
            "out": self.out_port,
            "start": self.start,
            "end": self.end,
            **self.components(),
            "blocked_by": [list(b) for b in self.blocked_by],
        }


@dataclass
class PacketTrace:
    """A reconstructed packet lifetime: the critical path."""

    flow: str
    seq: int
    source: Tuple[int, int]
    target: Tuple[int, int]
    injected: int
    flits: int
    queued: Optional[int] = None
    delivered: Optional[int] = None
    hops: List[HopBreakdown] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.delivered is not None

    @property
    def latency(self) -> Optional[int]:
        if self.delivered is None:
            return None
        return self.delivered - self.injected

    @property
    def packet_id(self) -> str:
        return f"{self.flow}#{self.seq}"

    def decomposition(self) -> Dict[str, int]:
        """Component totals across all hops; sums to :attr:`latency`."""
        totals = dict.fromkeys(_COMPONENTS, 0)
        for hop in self.hops:
            for name, value in hop.components().items():
                totals[name] += value
        return totals

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.packet_id,
            "flow": self.flow,
            "seq": self.seq,
            "injected": self.injected,
            "delivered": self.delivered,
            "latency": self.latency,
            "flits": self.flits,
            "decomposition": self.decomposition(),
            "hops": [hop.as_dict() for hop in self.hops],
        }


@dataclass
class LinkStats:
    """Occupancy/contention aggregate of one router output port."""

    router: str
    port: str
    busy_cycles: int = 0
    packets: int = 0
    blocked_cycles: int = 0

    @property
    def name(self) -> str:
        return f"{self.router}>{self.port}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "link": self.name,
            "busy_cycles": self.busy_cycles,
            "packets": self.packets,
            "blocked_cycles": self.blocked_cycles,
        }


class SymbolTable:
    """Address-sorted symbol lookup (``name -> address`` from the loader)."""

    def __init__(self, symbols: Optional[Dict[str, int]] = None):
        self.symbols: Dict[str, int] = dict(symbols or {})
        pairs = sorted((addr, name) for name, addr in self.symbols.items())
        self._addrs = [addr for addr, _ in pairs]
        self._names = [name for _, name in pairs]

    def resolve(self, pc: int) -> str:
        """Nearest symbol at or below *pc*; hex fallback when none."""
        i = bisect.bisect_right(self._addrs, pc) - 1
        if i < 0:
            return f"0x{pc:04x}"
        return self._names[i]

    def __bool__(self) -> bool:
        return bool(self.symbols)


@dataclass
class CpuProfile:
    """PC-sampling profile of one R8 core."""

    track: str
    symtab: SymbolTable
    #: ``(call-site pc tuple, pc) -> cycles``
    samples: Dict[Tuple[Tuple[int, ...], int], int] = field(
        default_factory=dict
    )

    @property
    def total_cycles(self) -> int:
        return sum(self.samples.values())

    def functions(self) -> Dict[str, int]:
        """Self cycles per resolved leaf function, descending."""
        out: Dict[str, int] = {}
        for (_stack, pc), cycles in self.samples.items():
            name = self.symtab.resolve(pc)
            out[name] = out.get(name, 0) + cycles
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def by_pc(self) -> Dict[int, int]:
        """Self cycles per program counter (for annotated listings)."""
        out: Dict[int, int] = {}
        for (_stack, pc), cycles in self.samples.items():
            out[pc] = out.get(pc, 0) + cycles
        return out

    def folded_stacks(self, root: Optional[str] = None) -> List[str]:
        """``frame;frame;leaf count`` lines — the flamegraph.pl input
        format, which Speedscope also imports directly."""
        root = root if root is not None else self.track
        folded: Dict[str, int] = {}
        for (stack, pc), cycles in self.samples.items():
            frames = [root] if root else []
            frames += [self.symtab.resolve(site) for site in stack]
            frames.append(self.symtab.resolve(pc))
            key = ";".join(frames)
            folded[key] = folded.get(key, 0) + cycles
        return [f"{key} {n}" for key, n in sorted(folded.items())]

    def annotate(self, obj) -> List[str]:
        """Disassembly of *obj* with per-PC cycle counts in the margin."""
        from ..r8.disassembler import disassemble

        per_pc = self.by_pc()
        total = self.total_cycles or 1
        lines: List[str] = []
        for origin, words in obj.segments:
            for offset, line in enumerate(disassemble(words, base=origin)):
                pc = origin + offset
                cycles = per_pc.get(pc, 0)
                if cycles:
                    margin = f"{cycles:>8} {100.0 * cycles / total:5.1f}%"
                else:
                    margin = " " * 15
                lines.append(f"{margin}  {line}")
        return lines

    def as_dict(self) -> Dict[str, Any]:
        return {
            "track": self.track,
            "total_cycles": self.total_cycles,
            "functions": self.functions(),
        }


@dataclass
class TraceAnalysis:
    """Everything :func:`analyze_trace` derived from one trace."""

    packets: List[PacketTrace] = field(default_factory=list)
    links: Dict[str, LinkStats] = field(default_factory=dict)
    #: (victim flow, blocker flow) -> blocked cycles attributed
    contention: Dict[Tuple[str, str], int] = field(default_factory=dict)
    profiles: Dict[str, CpuProfile] = field(default_factory=dict)
    unresolved_hops: int = 0

    # -- aggregates --------------------------------------------------------

    def delivered(self) -> List[PacketTrace]:
        return [p for p in self.packets if p.complete]

    def flows(self) -> Dict[str, Dict[str, Any]]:
        """Per-flow aggregate: packet count, latency stats, blocked total."""
        out: Dict[str, Dict[str, Any]] = {}
        for p in self.delivered():
            f = out.setdefault(
                p.flow,
                {"packets": 0, "latency_total": 0, "latency_max": 0,
                 "blocked": 0, "queueing": 0},
            )
            f["packets"] += 1
            f["latency_total"] += p.latency
            f["latency_max"] = max(f["latency_max"], p.latency)
            d = p.decomposition()
            f["blocked"] += d["blocked"]
            f["queueing"] += d["queueing"]
        for f in out.values():
            f["latency_mean"] = f["latency_total"] / f["packets"]
        return out

    def hotspots(self, top: int = 5) -> List[LinkStats]:
        """Links ranked by contention (blocked, then occupancy)."""
        ranked = sorted(
            self.links.values(),
            key=lambda l: (-l.blocked_cycles, -l.busy_cycles, l.name),
        )
        return ranked[:top]

    def contention_matrix(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for (victim, blocker), cycles in sorted(self.contention.items()):
            out.setdefault(victim, {})[blocker] = cycles
        return out

    def folded_stacks(self) -> List[str]:
        """Folded stacks of every profiled core, one merged listing."""
        lines: List[str] = []
        for track in sorted(self.profiles):
            lines.extend(self.profiles[track].folded_stacks())
        return lines

    # -- rendering ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "packets": [p.as_dict() for p in self.packets],
            "flows": self.flows(),
            "links": {
                name: link.as_dict() for name, link in sorted(self.links.items())
            },
            "contention": {
                victim: blockers
                for victim, blockers in self.contention_matrix().items()
            },
            "profiles": {
                track: prof.as_dict()
                for track, prof in sorted(self.profiles.items())
            },
            "unresolved_hops": self.unresolved_hops,
        }

    def report(self, top: int = 5) -> str:
        lines: List[str] = []
        done = self.delivered()
        lines.append(
            f"packets: {len(done)} delivered, "
            f"{len(self.packets) - len(done)} in flight"
        )
        if done:
            worst = sorted(done, key=lambda p: -(p.latency or 0))[:top]
            lines.append(f"slowest packets (top {len(worst)}):")
            for p in worst:
                d = p.decomposition()
                split = " ".join(f"{k}={d[k]}" for k in _COMPONENTS)
                lines.append(
                    f"  {p.packet_id:<14} {p.latency:>6} cycles "
                    f"({len(p.hops)} hops)  {split}"
                )
        hot = [l for l in self.hotspots(top) if l.busy_cycles]
        if hot:
            lines.append(f"hotspot links (top {len(hot)}):")
            for link in hot:
                lines.append(
                    f"  {link.name:<20} busy {link.busy_cycles:>6}  "
                    f"blocked {link.blocked_cycles:>6}  "
                    f"packets {link.packets}"
                )
        matrix = self.contention_matrix()
        if matrix:
            lines.append("contention (victim <- blocker):")
            for victim, blockers in matrix.items():
                for blocker, cycles in sorted(
                    blockers.items(), key=lambda kv: -kv[1]
                ):
                    lines.append(
                        f"  {victim:<12} <- {blocker:<12} {cycles} cycles"
                    )
        for track in sorted(self.profiles):
            prof = self.profiles[track]
            if not prof.samples:
                continue
            lines.append(
                f"cpu profile {track} ({prof.total_cycles} cycles):"
            )
            total = prof.total_cycles or 1
            for name, cycles in list(prof.functions().items())[:top]:
                lines.append(
                    f"  {name:<24} {cycles:>8}  {100.0 * cycles / total:5.1f}%"
                )
        if self.unresolved_hops:
            lines.append(
                f"warning: {self.unresolved_hops} hop span(s) could not be "
                "attributed (partial trace?)"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# reconstruction
# ---------------------------------------------------------------------------


class _RouterInfo:
    __slots__ = ("track", "address", "routing_cycles")

    def __init__(self, track: str, address: Tuple[int, int], routing_cycles: int):
        self.track = track
        self.address = address
        self.routing_cycles = routing_cycles


def analyze_trace(sink: TelemetrySink) -> TraceAnalysis:
    """Run the full post-mortem analysis over *sink*'s events."""
    routers: Dict[str, _RouterInfo] = {}
    by_addr: Dict[Tuple[int, int], _RouterInfo] = {}
    injects: Dict[str, List] = {}  # NI track -> inject events in order
    deliveries: Dict[Tuple[int, int], deque] = {}  # dest addr -> delivered ts
    hdrs: Dict[Tuple[str, str], deque] = {}  # (router, in port) -> hdr ts
    decisions: Dict[Tuple[str, str], deque] = {}  # (router, in port) -> events
    hop_spans: List[Tuple[int, str, str, str, int]] = []
    samples: Dict[str, Dict] = {}
    symtabs: Dict[str, Dict[str, int]] = {}
    topology = None  # non-mesh traces carry a fabric descriptor

    for event in sink.events:
        name, args = event.name, event.args or {}
        if event.ph == "i":
            if name == "router_config":
                info = _RouterInfo(
                    event.track,
                    (args["x"], args["y"]),
                    args.get("routing_cycles", 1),
                )
                routers[event.track] = info
                by_addr[info.address] = info
            elif name == "topology":
                try:
                    topology = from_descriptor(args)
                except Exception:
                    topology = None  # unknown plugin; fall back to XY replay
            elif name == "hdr":
                hdrs.setdefault((event.track, args["port"]), deque()).append(
                    event.ts
                )
            elif name in ("route", "route_blocked"):
                decisions.setdefault(
                    (event.track, args.get("port")), deque()
                ).append((name, event.ts, args.get("out")))
            elif name == "deliver" and "at" in args:
                deliveries.setdefault(
                    _parse_addr(args["at"]), deque()
                ).append(event.ts)
            elif name == "pcsample":
                bucket = samples.setdefault(event.track, {})
                key = (tuple(args.get("stack", ())), args["pc"])
                bucket[key] = bucket.get(key, 0) + args["cycles"]
            elif name == "symbols":
                symtabs.setdefault(event.track, {}).update(
                    args.get("symbols", {})
                )
        elif event.ph == "X":
            if name == "inject" and "flow" in args:
                injects.setdefault(event.track, []).append(event)
            elif name == "packet" and "at" in args:
                deliveries.setdefault(
                    _parse_addr(args["at"]), deque()
                ).append(event.ts + (event.dur or 0))
            elif name.startswith("hop>"):
                hop_spans.append(
                    (
                        event.ts,
                        event.track,
                        args.get("in_port", "LOCAL"),
                        name[len("hop>"):],
                        event.dur or 0,
                    )
                )

    analysis = TraceAnalysis()

    # Seed each router's LOCAL queue with its NI's injection order.
    pending: Dict[Tuple[str, str], deque] = {}
    for track in sorted(injects):
        for event in injects[track]:
            args = event.args
            src = _parse_addr(args["src"])
            packet = PacketTrace(
                flow=args["flow"],
                seq=args.get("seq", 0),
                source=src,
                target=_parse_addr(args["target"]),
                injected=event.ts,
                flits=args.get("flits", 0),
                queued=args.get("queued"),
            )
            analysis.packets.append(packet)
            router_addr, in_label = src, Port.LOCAL.name
            if topology is not None:
                router_addr = topology.node_router(src)
                in_label = topology.port_name(topology.local_port(src))
            info = by_addr.get(router_addr)
            if info is None:
                continue  # router not in trace; leave the packet unresolved
            pending.setdefault((info.track, in_label), deque()).append(
                packet
            )

    # Replay hop spans in connection-open order: upstream hops strictly
    # precede their downstream continuation, so each pop sees its packet.
    occupancy: Dict[Tuple[str, str], List[Tuple[int, int, PacketTrace]]] = {}
    for open_ts, track, in_port, out_port, dur in sorted(hop_spans):
        info = routers.get(track)
        queue = pending.get((track, in_port))
        if info is None or not queue:
            analysis.unresolved_hops += 1
            continue
        packet = queue.popleft()
        hop_index = len(packet.hops)
        # consume this packet's hdr stamp to keep the port queue aligned;
        # hop 0 uses the injection stamp as its start boundary instead.
        hdr_queue = hdrs.get((track, in_port))
        hdr_ts = hdr_queue.popleft() if hdr_queue else None
        start = packet.injected if hop_index == 0 else hdr_ts
        if start is None:
            start = open_ts
        # routing decisions for this packet: leading blocked, then success
        decision_ts = open_ts
        dq = decisions.get((track, in_port))
        blocked_first: Optional[int] = None
        while dq:
            kind, ts, _out = dq.popleft()
            if kind == "route":
                decision_ts = ts
                break
            if blocked_first is None:
                blocked_first = ts
        hop = HopBreakdown(
            router=track,
            address=info.address,
            in_port=in_port,
            out_port=out_port,
            start=start,
            decision=(
                blocked_first if blocked_first is not None else decision_ts
            ),
            opened=decision_ts,
            routing_cycles=info.routing_cycles,
        )
        packet.hops.append(hop)
        occupancy.setdefault((track, out_port), []).append(
            (open_ts, open_ts + dur, packet)
        )
        link = analysis.links.setdefault(
            f"{track}>{out_port}", LinkStats(track, out_port)
        )
        link.busy_cycles += dur
        link.packets += 1
        if out_port.startswith("LOCAL"):
            node = info.address
            if topology is not None:
                node = topology.port_node(info.address, port_index(out_port))
            arrivals = deliveries.get(node)
            if arrivals:
                packet.delivered = arrivals.popleft()
                hop.end = packet.delivered
        else:
            if topology is not None:
                # replay the plugin's link graph (wrap links included)
                nb_addr = topology.neighbour(info.address, port_index(out_port))
            else:
                dx, dy = PORT_DELTA[Port[out_port]]
                nb_addr = (info.address[0] + dx, info.address[1] + dy)
            neighbour = by_addr.get(nb_addr)
            if neighbour is not None:
                pending.setdefault(
                    (neighbour.track, OPPOSITE[Port[out_port]].name), deque()
                ).append(packet)

    # Close intermediate hop boundaries: hop i ends where hop i+1 starts.
    for packet in analysis.packets:
        for i in range(len(packet.hops) - 1):
            packet.hops[i].end = packet.hops[i + 1].start

    # Congestion attribution: overlap each blocked window with the hops
    # that occupied the contested link during it.
    for spans in occupancy.values():
        spans.sort(key=lambda s: s[0])
    for packet in analysis.packets:
        for hop in packet.hops:
            blocked = hop.blocked
            if blocked <= 0:
                continue
            link = analysis.links.get(f"{hop.router}>{hop.out_port}")
            if link is not None:
                link.blocked_cycles += blocked
            window = (hop.decision, hop.opened)
            for open_ts, close_ts, blocker in occupancy.get(
                (hop.router, hop.out_port), ()
            ):
                if blocker is packet:
                    continue
                overlap = min(window[1], close_ts) - max(window[0], open_ts)
                if overlap <= 0:
                    continue
                hop.blocked_by.append((blocker.flow, overlap))
                key = (packet.flow, blocker.flow)
                analysis.contention[key] = (
                    analysis.contention.get(key, 0) + overlap
                )

    # CPU profiles.
    for track in sorted(set(samples) | set(symtabs)):
        analysis.profiles[track] = CpuProfile(
            track=track,
            symtab=SymbolTable(symtabs.get(track)),
            samples=samples.get(track, {}),
        )

    return analysis


# ---------------------------------------------------------------------------
# diffing
# ---------------------------------------------------------------------------


@dataclass
class DiffEntry:
    """One metric compared between two runs."""

    kind: str  # flow | link | cpu
    name: str
    metric: str
    baseline: float
    current: float

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def pct(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return 100.0 * self.delta / self.baseline

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
        }

    def render(self) -> str:
        pct = self.pct
        pct_text = "new" if pct == float("inf") else f"{pct:+.1f}%"
        return (
            f"{self.kind} {self.name} {self.metric}: "
            f"{self.baseline:g} -> {self.current:g} ({pct_text})"
        )


@dataclass
class TraceDiff:
    """Result of :func:`diff_traces`: regressions and improvements."""

    threshold_pct: float
    threshold_cycles: float
    regressions: List[DiffEntry] = field(default_factory=list)
    improvements: List[DiffEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "threshold_pct": self.threshold_pct,
            "threshold_cycles": self.threshold_cycles,
            "ok": self.ok,
            "regressions": [e.as_dict() for e in self.regressions],
            "improvements": [e.as_dict() for e in self.improvements],
        }

    def report(self) -> str:
        lines = []
        if self.regressions:
            lines.append(f"{len(self.regressions)} regression(s):")
            lines += [f"  REGRESSED {e.render()}" for e in self.regressions]
        else:
            lines.append("no regressions")
        if self.improvements:
            lines.append(f"{len(self.improvements)} improvement(s):")
            lines += [f"  improved  {e.render()}" for e in self.improvements]
        return "\n".join(lines)


def diff_traces(
    current: TraceAnalysis,
    baseline: TraceAnalysis,
    threshold_pct: float = 10.0,
    threshold_cycles: float = 5.0,
) -> TraceDiff:
    """Compare *current* against *baseline* metric-by-metric.

    A metric regresses when it grew by more than *threshold_cycles*
    **and** by more than *threshold_pct* percent (both must trip, so tiny
    absolute wobbles on tiny baselines don't alarm).  The same margins,
    mirrored, classify improvements.
    """
    diff = TraceDiff(threshold_pct, threshold_cycles)

    def compare(kind: str, name: str, metric: str, base, cur) -> None:
        entry = DiffEntry(kind, name, metric, float(base), float(cur))
        grew = entry.delta > threshold_cycles and (
            base == 0 or entry.pct > threshold_pct
        )
        shrank = -entry.delta > threshold_cycles and (
            base == 0 or -entry.pct > threshold_pct
        )
        if grew:
            diff.regressions.append(entry)
        elif shrank:
            diff.improvements.append(entry)

    cur_flows, base_flows = current.flows(), baseline.flows()
    for flow in sorted(set(cur_flows) | set(base_flows)):
        cur = cur_flows.get(flow, {})
        base = base_flows.get(flow, {})
        for metric in ("latency_mean", "latency_max", "blocked"):
            compare(
                "flow", flow, metric, base.get(metric, 0), cur.get(metric, 0)
            )

    for link in sorted(set(current.links) | set(baseline.links)):
        cur_link = current.links.get(link)
        base_link = baseline.links.get(link)
        compare(
            "link",
            link,
            "blocked_cycles",
            base_link.blocked_cycles if base_link else 0,
            cur_link.blocked_cycles if cur_link else 0,
        )

    cur_funcs: Dict[str, Dict[str, int]] = {
        t: p.functions() for t, p in current.profiles.items()
    }
    base_funcs: Dict[str, Dict[str, int]] = {
        t: p.functions() for t, p in baseline.profiles.items()
    }
    for track in sorted(set(cur_funcs) | set(base_funcs)):
        cur_f = cur_funcs.get(track, {})
        base_f = base_funcs.get(track, {})
        for func in sorted(set(cur_f) | set(base_f)):
            compare(
                "cpu",
                f"{track}:{func}",
                "cycles",
                base_f.get(func, 0),
                cur_f.get(func, 0),
            )

    return diff
