"""Localhost HTTP endpoint for the live observation plane.

:class:`TelemetryServer` bridges one — or a *fleet* of — live streams
to anything that speaks HTTP, using only the standard library:

* ``/metrics`` — Prometheus exposition text
  (:meth:`~repro.telemetry.metrics.MetricsRegistry.prometheus_text`),
  ready for a scrape config pointed at the simulation host;
* ``/frame`` — the latest ``multinoc-live/1`` frame as one JSON object;
* ``/frames`` — the frame stream, as Server-Sent Events by default
  (``data: <json>\\n\\n``) or as JSON Lines with ``?format=jsonl``;
  ``?limit=N`` closes the stream after N frames (handy for ``curl`` in
  CI).  A newly connected client immediately receives the latest frame,
  so a scrape that lands after the run finished still sees data.
* ``/runs`` — the fleet document (``multinoc-fleet/1``): the latest
  frame of every attached session (in-process via :meth:`add_stream`,
  remote via :meth:`add_remote`) plus the newest records of an attached
  :class:`~repro.telemetry.registry.RunRegistry` (``?limit=N`` bounds
  the record tail); sessions with an alert engine attached carry an
  ``alerts`` roll-up (rules/firing/pending counts), and a dead remote
  degrades to an ``error`` row instead of failing the whole document;
* ``/alerts`` — the alert engine's ``multinoc-alerts/1`` document
  (firing/pending instances, SLO budgets, transition history) when one
  is attached via :meth:`attach_alerts`;
* ``/healthz`` — liveness: uptime, frames seen, attached sessions;
* ``/`` — a JSON endpoint directory for discoverability.

All error bodies — including stdlib-generated ones like 501 for an
unsupported method — are JSON with ``Content-Type: application/json``.

**Aggregator mode** is the multi-tenant substrate: construct with no
primary stream (``TelemetryServer()``) and :meth:`add_stream` each
in-process session (or :meth:`add_remote` another server's URL); the
``multinoc top --fleet`` dashboard renders one row per session from
``/runs``.  Frames from named sessions are tagged with a ``session``
key so stream consumers can demultiplex.

Every response carries a ``Server: multinoc/<version>`` header, and
unknown paths return a JSON error body with status 404.

Thread-safety: the HTTP server runs on daemon threads, but *all*
telemetry state is read on the simulation thread — the server
subscribes to the stream and snapshots each frame (and the registry's
exposition text) into immutable byte strings at frame time.  Handler
threads only ever serve those snapshots, so the simulator's hot-path
dicts are never iterated concurrently with mutation.  (``/runs`` also
reads the run registry's index and polls remotes, but those live
outside the simulator.)

Every send to a slow client goes through a bounded per-client queue
with drop-oldest semantics: a stalled dashboard loses intermediate
frames, never the simulation's pace.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from .live import LiveStream

#: frames buffered per streaming client before drop-oldest kicks in
CLIENT_QUEUE_DEPTH = 16

#: schema of the ``/runs`` fleet document
FLEET_SCHEMA = "multinoc-fleet/1"

#: registry records returned by ``/runs`` when ``?limit=`` is absent
DEFAULT_RUNS_LIMIT = 20


def server_version() -> str:
    """The ``Server:`` header value (lazy: avoids an import cycle)."""
    try:
        from .. import __version__
    except ImportError:  # pragma: no cover - partial package init
        __version__ = "0"
    return f"multinoc/{__version__}"


class TelemetryServer:
    """Serve live stream(s) and their metrics over localhost HTTP."""

    def __init__(
        self,
        live: Optional[LiveStream] = None,
        registry=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "default",
        run_registry=None,
    ):
        """*registry* is the metrics registry scraped at ``/metrics``;
        *run_registry* is a :class:`~repro.telemetry.registry.RunRegistry`
        whose history tail is served at ``/runs``.  *live* may be None
        for a pure aggregator — attach sessions with :meth:`add_stream`
        / :meth:`add_remote` instead."""
        self.live = live
        self.registry = registry
        self.run_registry = run_registry
        self._lock = threading.Lock()
        self._latest_frame: Optional[bytes] = None
        self._metrics_text = b"# no frames emitted yet\n"
        self._clients: List["queue.Queue[bytes]"] = []
        self._streams: Dict[str, tuple] = {}  # name -> (live, callback)
        self._remotes: Dict[str, str] = {}  # name -> base URL
        self._session_frames: Dict[str, bytes] = {}
        self._alert_engines: Dict[str, Any] = {}  # session -> AlertEngine
        self._alert_docs: Dict[str, bytes] = {}  # session -> doc snapshot
        self._frames_seen = 0
        self._started_wall = time.time()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._name = name
        if live is not None:
            live.subscribe(self._on_frame)

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="multinoc-telemetry-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self.live is not None:
            self.live.unsubscribe(self._on_frame)
        for stream, callback in self._streams.values():
            stream.unsubscribe(callback)
        self._streams.clear()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- fleet wiring ------------------------------------------------------

    def add_stream(self, name: str, live: LiveStream) -> "TelemetryServer":
        """Multiplex another in-process session under *name*.

        Its frames are tagged ``{"session": name}`` and fan out to the
        same ``/frames`` clients; its latest frame appears in ``/runs``.
        """
        if name in self._streams or name in self._remotes:
            raise ValueError(f"session name {name!r} already attached")

        def callback(frame: Dict[str, Any], _name=name) -> None:
            tagged = dict(frame)
            tagged["session"] = _name
            self._publish(_name, tagged)

        self._streams[name] = (live, callback)
        live.subscribe(callback)
        return self

    def remove_stream(self, name: str) -> None:
        entry = self._streams.pop(name, None)
        if entry is not None:
            entry[0].unsubscribe(entry[1])
        with self._lock:
            self._session_frames.pop(name, None)

    def add_remote(self, name: str, url: str) -> "TelemetryServer":
        """Multiplex a session served by *another* telemetry server.

        Remote sessions are polled lazily — their ``/frame`` is fetched
        when ``/runs`` is requested, never on the simulation thread.
        """
        if name in self._streams or name in self._remotes:
            raise ValueError(f"session name {name!r} already attached")
        self._remotes[name] = url.rstrip("/")
        return self

    def attach_alerts(self, engine, name: Optional[str] = None) -> "TelemetryServer":
        """Serve *engine*'s document at ``/alerts`` (and roll it up into
        ``/runs``) for session *name* (default: the primary session).

        Like frames, the document is snapshotted to bytes on the
        simulation thread each time that session publishes a frame —
        the engine evaluates on frames, so its state only changes at
        frame boundaries and handler threads never race it.
        """
        session = name if name is not None else self._name
        doc = json.dumps(engine.document(), separators=(",", ":")).encode()
        with self._lock:
            self._alert_engines[session] = engine
            self._alert_docs[session] = doc
        return self

    @property
    def session_names(self) -> List[str]:
        names = list(self._streams) + list(self._remotes)
        if self.live is not None:
            names.insert(0, self._name)
        return names

    # -- frame intake (simulation thread) ----------------------------------

    def _on_frame(self, frame: Dict[str, Any]) -> None:
        """Primary-stream frames; runs on the sim thread."""
        # copy before tagging: the dict is shared with other subscribers
        tagged = dict(frame)
        tagged["session"] = self._name
        self._publish(self._name, tagged)

    def _publish(self, name: Optional[str], frame: Dict[str, Any]) -> None:
        """Snapshot a frame (and metrics text) and fan out to clients."""
        payload = json.dumps(frame, separators=(",", ":")).encode()
        metrics = (
            self.registry.prometheus_text().encode()
            if self.registry is not None
            else None
        )
        engine = self._alert_engines.get(name) if name is not None else None
        alerts_doc = (
            json.dumps(engine.document(), separators=(",", ":")).encode()
            if engine is not None
            else None
        )
        with self._lock:
            self._latest_frame = payload
            self._frames_seen += 1
            if name is not None:
                self._session_frames[name] = payload
            if metrics is not None:
                self._metrics_text = metrics
            if alerts_doc is not None:
                self._alert_docs[name] = alerts_doc
            clients = list(self._clients)
        for q in clients:
            _offer(q, payload)

    # -- handler-side accessors (HTTP threads) -----------------------------

    def latest_frame(self) -> Optional[bytes]:
        with self._lock:
            return self._latest_frame

    def metrics_text(self) -> bytes:
        with self._lock:
            return self._metrics_text

    def alerts_document(self) -> Optional[Dict[str, Any]]:
        """The ``/alerts`` document, or None when no engine is attached.

        With one engine attached this is its ``multinoc-alerts/1``
        document verbatim; with several (aggregator mode) the primary
        session's document — if any — gains a ``sessions`` map of
        per-session documents.
        """
        with self._lock:
            docs = {
                name: json.loads(snapshot)
                for name, snapshot in self._alert_docs.items()
            }
        if not docs:
            return None
        if len(docs) == 1:
            return next(iter(docs.values()))
        primary = docs.get(self._name) or {"schema": "multinoc-alerts/1"}
        primary["sessions"] = docs
        return primary

    @staticmethod
    def _alerts_summary(document: Dict[str, Any]) -> Dict[str, Any]:
        """Compact roll-up of an alerts document for the fleet view."""
        out = {
            "rules": len(document.get("rules") or []),
            "firing": len(document.get("firing") or []),
            "pending": len(document.get("pending") or []),
            "transitions": document.get("transitions_total", 0),
        }
        slos = document.get("slos") or []
        if slos:
            out["slo_unhealthy"] = sum(1 for s in slos if not s.get("healthy"))
        return out

    def health_document(self) -> Dict[str, Any]:
        with self._lock:
            frames = self._frames_seen
            sessions = len(self._session_frames)
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started_wall, 3),
            "frames_seen": frames,
            "sessions_with_frames": sessions,
            "sessions": self.session_names,
        }

    def runs_document(self, limit: int = DEFAULT_RUNS_LIMIT) -> Dict[str, Any]:
        """The ``/runs`` fleet document: session frames + record tail."""
        with self._lock:
            sessions: Dict[str, Any] = {
                name: json.loads(payload)
                for name, payload in self._session_frames.items()
            }
            alert_docs = {
                name: json.loads(snapshot)
                for name, snapshot in self._alert_docs.items()
            }
        for name, doc in alert_docs.items():
            if name in sessions:
                sessions[name]["alerts"] = self._alerts_summary(doc)
        for name, url in self._remotes.items():
            sessions[name] = self._poll_remote(name, url)
        document: Dict[str, Any] = {
            "schema": FLEET_SCHEMA,
            "wall_unix": time.time(),
            "sessions": sessions,
            "records": [],
        }
        if self.run_registry is not None:
            try:
                document["records"] = self.run_registry.index()[-limit:]
            except (OSError, ValueError) as exc:
                document["registry_error"] = str(exc)
        return document

    @classmethod
    def _poll_remote(cls, name: str, url: str) -> Dict[str, Any]:
        import urllib.error
        import urllib.request

        try:
            with urllib.request.urlopen(url + "/frame", timeout=2) as resp:
                frame = json.loads(resp.read())
            frame.setdefault("session", name)
        except (OSError, ValueError) as exc:
            return {"session": name, "error": str(exc)}
        # the alert roll-up is best-effort: a frame without alert state
        # is a healthy row, not a degraded one
        try:
            with urllib.request.urlopen(url + "/alerts", timeout=2) as resp:
                frame["alerts"] = cls._alerts_summary(json.loads(resp.read()))
        except (OSError, ValueError):
            pass
        return frame

    def add_client(self) -> "queue.Queue[bytes]":
        q: "queue.Queue[bytes]" = queue.Queue(maxsize=CLIENT_QUEUE_DEPTH)
        with self._lock:
            latest = self._latest_frame
            self._clients.append(q)
        if latest is not None:
            _offer(q, latest)
        return q

    def remove_client(self, q) -> None:
        with self._lock:
            try:
                self._clients.remove(q)
            except ValueError:
                pass


def _offer(q: "queue.Queue[bytes]", payload: bytes) -> None:
    """Enqueue, dropping the oldest frame when the client lags."""
    while True:
        try:
            q.put_nowait(payload)
            return
        except queue.Full:
            try:
                q.get_nowait()
            except queue.Empty:
                pass


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def telemetry(self) -> TelemetryServer:
        return self.server.telemetry  # type: ignore[attr-defined]

    def version_string(self) -> str:  # the ``Server:`` header value
        return server_version()

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep the simulation's stdout clean

    def do_GET(self):  # noqa: N802 - stdlib casing
        try:
            self._route_get()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - one client, not the sim
            try:
                self._send_json(
                    500, {"error": f"{type(exc).__name__}: {exc}", "status": 500}
                )
            except OSError:
                self.close_connection = True

    def _route_get(self):
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        params = parse_qs(parsed.query)
        if route == "/metrics":
            self._send(200, "text/plain; version=0.0.4", self.telemetry.metrics_text())
        elif route == "/frame":
            frame = self.telemetry.latest_frame()
            if frame is None:
                self._send_json(404, {"error": "no frames emitted yet"})
            else:
                self._send(200, "application/json", frame + b"\n")
        elif route == "/frames":
            self._stream_frames(params)
        elif route == "/runs":
            limit = DEFAULT_RUNS_LIMIT
            if "limit" in params:
                try:
                    limit = max(int(params["limit"][0]), 1)
                except ValueError:
                    self._send_json(400, {"error": "limit must be an integer"})
                    return
            self._send_json(200, self.telemetry.runs_document(limit))
        elif route == "/alerts":
            document = self.telemetry.alerts_document()
            if document is None:
                self._send_json(
                    404, {"error": "no alert engine attached", "status": 404}
                )
            else:
                self._send_json(200, document)
        elif route == "/healthz":
            self._send_json(200, self.telemetry.health_document())
        elif route == "/":
            self._send_json(
                200,
                {
                    "server": server_version(),
                    "endpoints": {
                        "/metrics": "Prometheus exposition text",
                        "/frame": "latest multinoc-live/1 frame (JSON)",
                        "/frames": "frame stream (SSE; ?format=jsonl, ?limit=N)",
                        "/runs": "fleet document: session frames + run records",
                        "/alerts": "alert/SLO engine state (multinoc-alerts/1)",
                        "/healthz": "server liveness",
                    },
                },
            )
        else:
            self._send_json(
                404,
                {"error": "unknown endpoint", "path": parsed.path, "status": 404},
            )

    def _send(self, status: int, ctype: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, document: Dict[str, Any]) -> None:
        body = json.dumps(document, separators=(",", ":")).encode() + b"\n"
        self._send(status, "application/json", body)

    def send_error(self, code, message=None, explain=None):  # noqa: D102
        # stdlib send_error emits HTML bodies (unsupported methods,
        # malformed requests); keep every error body JSON instead
        short = message
        if short is None:
            short = self.responses.get(code, ("error",))[0]
        try:
            self._send_json(code, {"error": short, "status": int(code)})
        except OSError:
            self.close_connection = True

    def _stream_frames(self, params: Dict[str, List[str]]) -> None:
        fmt = params.get("format", ["sse"])[0]
        limit = None
        if "limit" in params:
            try:
                limit = max(int(params["limit"][0]), 1)
            except ValueError:
                self._send_json(400, {"error": "limit must be an integer"})
                return
        if fmt == "jsonl":
            ctype = "application/x-ndjson"
        elif fmt == "sse":
            ctype = "text/event-stream"
        else:
            self._send_json(400, {"error": "format must be sse or jsonl"})
            return

        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()

        client = self.telemetry.add_client()
        sent = 0
        try:
            while limit is None or sent < limit:
                try:
                    payload = client.get(timeout=1.0)
                except queue.Empty:
                    continue
                if fmt == "sse":
                    self.wfile.write(b"data: " + payload + b"\n\n")
                else:
                    self.wfile.write(payload + b"\n")
                self.wfile.flush()
                sent += 1
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            self.telemetry.remove_client(client)
            self.close_connection = True
