"""Localhost HTTP endpoint for the live observation plane.

:class:`TelemetryServer` bridges a :class:`~repro.telemetry.live.LiveStream`
to anything that speaks HTTP, using only the standard library:

* ``/metrics`` — Prometheus exposition text
  (:meth:`~repro.telemetry.metrics.MetricsRegistry.prometheus_text`),
  ready for a scrape config pointed at the simulation host;
* ``/frame`` — the latest ``multinoc-live/1`` frame as one JSON object;
* ``/frames`` — the frame stream, as Server-Sent Events by default
  (``data: <json>\\n\\n``) or as JSON Lines with ``?format=jsonl``;
  ``?limit=N`` closes the stream after N frames (handy for ``curl`` in
  CI).  A newly connected client immediately receives the latest frame,
  so a scrape that lands after the run finished still sees data.

Thread-safety: the HTTP server runs on daemon threads, but *all*
telemetry state is read on the simulation thread — the server
subscribes to the stream and snapshots each frame (and the registry's
exposition text) into immutable byte strings at frame time.  Handler
threads only ever serve those snapshots, so the simulator's hot-path
dicts are never iterated concurrently with mutation.

Every send to a slow client goes through a bounded per-client queue
with drop-oldest semantics: a stalled dashboard loses intermediate
frames, never the simulation's pace.
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlparse

from .live import LiveStream

#: frames buffered per streaming client before drop-oldest kicks in
CLIENT_QUEUE_DEPTH = 16


class TelemetryServer:
    """Serve a live stream (and its metrics registry) over localhost HTTP."""

    def __init__(
        self,
        live: LiveStream,
        registry=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.live = live
        self.registry = registry
        self._lock = threading.Lock()
        self._latest_frame: Optional[bytes] = None
        self._metrics_text = b"# no frames emitted yet\n"
        self._clients: List["queue.Queue[bytes]"] = []
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        live.subscribe(self._on_frame)

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="multinoc-telemetry-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        self.live.unsubscribe(self._on_frame)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- frame intake (simulation thread) ----------------------------------

    def _on_frame(self, frame: Dict[str, Any]) -> None:
        """Snapshot the frame and metrics text; runs on the sim thread."""
        payload = json.dumps(frame, separators=(",", ":")).encode()
        metrics = (
            self.registry.prometheus_text().encode()
            if self.registry is not None
            else self._metrics_text
        )
        with self._lock:
            self._latest_frame = payload
            self._metrics_text = metrics
            clients = list(self._clients)
        for q in clients:
            _offer(q, payload)

    # -- handler-side accessors (HTTP threads) -----------------------------

    def latest_frame(self) -> Optional[bytes]:
        with self._lock:
            return self._latest_frame

    def metrics_text(self) -> bytes:
        with self._lock:
            return self._metrics_text

    def add_client(self) -> "queue.Queue[bytes]":
        q: "queue.Queue[bytes]" = queue.Queue(maxsize=CLIENT_QUEUE_DEPTH)
        with self._lock:
            latest = self._latest_frame
            self._clients.append(q)
        if latest is not None:
            _offer(q, latest)
        return q

    def remove_client(self, q) -> None:
        with self._lock:
            try:
                self._clients.remove(q)
            except ValueError:
                pass


def _offer(q: "queue.Queue[bytes]", payload: bytes) -> None:
    """Enqueue, dropping the oldest frame when the client lags."""
    while True:
        try:
            q.put_nowait(payload)
            return
        except queue.Full:
            try:
                q.get_nowait()
            except queue.Empty:
                pass


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def telemetry(self) -> TelemetryServer:
        return self.server.telemetry  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep the simulation's stdout clean

    def do_GET(self):  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            self._send(200, "text/plain; version=0.0.4", self.telemetry.metrics_text())
        elif route == "/frame":
            frame = self.telemetry.latest_frame()
            if frame is None:
                self._send(404, "text/plain", b"no frames emitted yet\n")
            else:
                self._send(200, "application/json", frame + b"\n")
        elif route == "/frames":
            self._stream_frames(parse_qs(parsed.query))
        elif route == "/":
            body = (
                b"multinoc live telemetry\n"
                b"  /metrics  Prometheus exposition text\n"
                b"  /frame    latest multinoc-live/1 frame (JSON)\n"
                b"  /frames   frame stream (SSE; ?format=jsonl, ?limit=N)\n"
            )
            self._send(200, "text/plain", body)
        else:
            self._send(404, "text/plain", b"unknown endpoint\n")

    def _send(self, status: int, ctype: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_frames(self, params: Dict[str, List[str]]) -> None:
        fmt = params.get("format", ["sse"])[0]
        limit = None
        if "limit" in params:
            try:
                limit = max(int(params["limit"][0]), 1)
            except ValueError:
                self._send(400, "text/plain", b"limit must be an integer\n")
                return
        if fmt == "jsonl":
            ctype = "application/x-ndjson"
        elif fmt == "sse":
            ctype = "text/event-stream"
        else:
            self._send(400, "text/plain", b"format must be sse or jsonl\n")
            return

        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()

        client = self.telemetry.add_client()
        sent = 0
        try:
            while limit is None or sent < limit:
                try:
                    payload = client.get(timeout=1.0)
                except queue.Empty:
                    continue
                if fmt == "sse":
                    self.wfile.write(b"data: " + payload + b"\n\n")
                else:
                    self.wfile.write(payload + b"\n")
                self.wfile.flush()
                sent += 1
        except (BrokenPipeError, ConnectionResetError):
            pass
        finally:
            self.telemetry.remove_client(client)
            self.close_connection = True
