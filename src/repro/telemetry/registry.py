"""Persistent cross-run registry: one durable record per simulation run.

Everything before this module observes a *single* run; the registry
makes runs observable *across* time.  A :class:`RunRegistry` is an
append-only local store rooted at ``.multinoc/runs/`` (override with the
``MULTINOC_RUNS_DIR`` environment variable or an explicit path): every
run — a ``multinoc system`` invocation, a :class:`~repro.core.platform.
PlatformSession` the library user records, a ``benchmarks/run_all.py``
suite, an ``analyze`` pass — appends one schema'd JSON record
(``multinoc-run/1``) plus one line in ``index.jsonl``, the history
index that ``multinoc runs list`` and the trend engine
(:mod:`repro.telemetry.trend`) read without loading every record.

Record schema ``multinoc-run/1``::

    {
      "schema": "multinoc-run/1",
      "run_id": "run-20260808T120000-1a2b3c",   # unique, sortable
      "kind": "system" | "session" | "bench" | "analyze",
      "created_unix": 1754654400.0,     # caller-supplied timestamp
      "status": "ok" | "failed",
      "exit_code": 0,
      "git_rev": "4868a27b9c01" | null, # rev-parse at record time
      "config_digest": "9f3e..." | null,# SystemConfig content hash
      "preset": "quick" | null,         # bench preset, when applicable
      "machine": {                      # cross-machine comparison guard
        "python": "3.12.3", "platform": "linux",
        "cpu_count": 8, "fingerprint": "5d41402abc4b"
      },
      "metrics": {"latency_mean": 58.0, ...},   # flat numeric summary
      "bench": {...} | null,            # full multinoc-bench/1 report
      "artifacts": {"trace": "out.jsonl", ...}, # pointers, not content
      "meta": {...}                     # free-form caller context
    }

Records are plain files: ``<run_id>.json`` next to ``index.jsonl``.
Append-only means a run id is never overwritten — :meth:`RunRegistry.
append` refuses collisions — and retention is explicit
(:meth:`RunRegistry.gc` keeps the newest N records).  The machine
fingerprint exists so histories gathered on different hosts are never
trend-compared silently: the trend engine partitions on it by default.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

RUN_SCHEMA = "multinoc-run/1"

#: file name of the history index inside the registry root
INDEX_NAME = "index.jsonl"

#: environment variable overriding the default registry root
RUNS_DIR_ENV = "MULTINOC_RUNS_DIR"

#: default registry root, relative to the current working directory
DEFAULT_ROOT = ".multinoc/runs"

#: sentinel: compute the value at record time
AUTO = object()


class RegistryError(Exception):
    """A registry invariant was violated (collision, missing record)."""


def machine_fingerprint() -> Dict[str, Any]:
    """Identify the executing machine for cross-machine comparison guards.

    Deliberately coarse — python version, platform and CPU count — so
    records from the same CI image class share a fingerprint while a
    laptop and a CI runner never silently land in one trend series.
    """
    info: Dict[str, Any] = {
        "python": ".".join(map(str, sys.version_info[:3])),
        "platform": sys.platform,
        "cpu_count": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()
    ).hexdigest()
    info["fingerprint"] = digest[:12]
    return info


def config_digest(config: Any) -> Optional[str]:
    """Content hash of a system configuration (or any JSON-able value).

    Two runs share a digest exactly when their configuration is
    equal field-by-field — the unit of comparability for trends.
    """
    if config is None:
        return None
    if is_dataclass(config) and not isinstance(config, type):
        doc = asdict(config)
    else:
        doc = config
    canon = json.dumps(doc, sort_keys=True, default=repr)
    return hashlib.sha256(canon.encode()).hexdigest()[:12]


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """Short HEAD revision, or None outside a repository / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


class RunRegistry:
    """Append-only store of ``multinoc-run/1`` records plus an index."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        if root is None:
            root = os.environ.get(RUNS_DIR_ENV) or DEFAULT_ROOT
        self.root = Path(root)

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    # -- building records --------------------------------------------------

    def build_record(
        self,
        *,
        kind: str,
        status: str = "ok",
        exit_code: int = 0,
        timestamp: Optional[float] = None,
        metrics: Optional[Dict[str, Any]] = None,
        config: Any = None,
        preset: Optional[str] = None,
        bench: Optional[Dict[str, Any]] = None,
        artifacts: Optional[Dict[str, str]] = None,
        meta: Optional[Dict[str, Any]] = None,
        git_rev: Any = AUTO,
        machine: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Assemble a record without writing it (see :meth:`record`).

        ``timestamp`` is caller-supplied (defaults to ``time.time()``)
        so replayed or imported histories keep their original ordering.
        ``git_rev=registry.AUTO`` shells out once; pass a string or
        ``None`` to skip the subprocess on hot paths.
        """
        created = time.time() if timestamp is None else float(timestamp)
        record: Dict[str, Any] = {
            "schema": RUN_SCHEMA,
            "run_id": None,  # assigned by append()
            "kind": kind,
            "created_unix": created,
            "status": status,
            "exit_code": int(exit_code),
            "git_rev": git_revision() if git_rev is AUTO else git_rev,
            "config_digest": config
            if isinstance(config, str)
            else config_digest(config),
            "preset": preset,
            "machine": machine if machine is not None else machine_fingerprint(),
            "metrics": dict(metrics or {}),
            "bench": bench,
            "artifacts": dict(artifacts or {}),
            "meta": dict(meta or {}),
        }
        return record

    def record(self, **kwargs) -> Dict[str, Any]:
        """Build and append a record in one step; returns it (with id)."""
        return self.append(self.build_record(**kwargs))

    # -- persistence -------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Write ``<run_id>.json`` and one index line; returns the record.

        Assigns a run id when the record has none.  Appending an id
        that already exists raises :class:`RegistryError` — records are
        immutable once written.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if not record.get("run_id"):
            record = dict(record)
            record["run_id"] = self._new_run_id(record)
        path = self.path_of(record["run_id"])
        if path.exists():
            raise RegistryError(
                f"run {record['run_id']!r} already recorded; "
                "the registry is append-only"
            )
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        line = json.dumps(self.index_entry(record), sort_keys=True)
        with open(self.index_path, "a") as fh:
            fh.write(line + "\n")
        return record

    @staticmethod
    def index_entry(record: Dict[str, Any]) -> Dict[str, Any]:
        """The per-record line kept in ``index.jsonl``."""
        machine = record.get("machine") or {}
        return {
            "run_id": record["run_id"],
            "kind": record.get("kind"),
            "created_unix": record.get("created_unix"),
            "status": record.get("status"),
            "exit_code": record.get("exit_code"),
            "git_rev": record.get("git_rev"),
            "config_digest": record.get("config_digest"),
            "preset": record.get("preset"),
            "fingerprint": machine.get("fingerprint"),
        }

    def path_of(self, run_id: str) -> Path:
        return self.root / f"{run_id}.json"

    def raw(self, run_id: str) -> str:
        """The exact bytes of one record file (``runs show`` round-trip)."""
        path = self.path_of(run_id)
        if not path.exists():
            raise RegistryError(f"no record {run_id!r} in {self.root}")
        return path.read_text()

    def load(self, run_id: str) -> Dict[str, Any]:
        return json.loads(self.raw(run_id))

    # -- reading the history -----------------------------------------------

    def index(self) -> List[Dict[str, Any]]:
        """Index entries in chronological order (oldest first).

        Falls back to scanning record files when ``index.jsonl`` is
        missing (e.g. the index was deleted but records survive).
        """
        entries: List[Dict[str, Any]] = []
        if self.index_path.exists():
            for line in self.index_path.read_text().splitlines():
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
        elif self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    entries.append(self.index_entry(json.loads(path.read_text())))
                except (ValueError, KeyError):
                    continue
        entries.sort(key=lambda e: (e.get("created_unix") or 0, e["run_id"]))
        return entries

    def rebuild_index(self) -> int:
        """Regenerate ``index.jsonl`` from the record files on disk."""
        self.root.mkdir(parents=True, exist_ok=True)
        entries = []
        for path in self.root.glob("*.json"):
            try:
                entries.append(self.index_entry(json.loads(path.read_text())))
            except (ValueError, KeyError):
                continue
        entries.sort(key=lambda e: (e.get("created_unix") or 0, e["run_id"]))
        self.index_path.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in entries)
        )
        return len(entries)

    def records(
        self,
        *,
        kind: Optional[str] = None,
        fingerprint: Optional[str] = None,
        config_digest: Optional[str] = None,
        preset: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Full records, oldest first, optionally filtered; ``limit``
        keeps only the newest N after filtering."""
        selected = []
        for entry in self.index():
            if kind is not None and entry.get("kind") != kind:
                continue
            if (
                fingerprint is not None
                and entry.get("fingerprint") != fingerprint
            ):
                continue
            if (
                config_digest is not None
                and entry.get("config_digest") != config_digest
            ):
                continue
            if preset is not None and entry.get("preset") != preset:
                continue
            selected.append(entry)
        if limit is not None:
            selected = selected[-limit:]
        return [self.load(e["run_id"]) for e in selected]

    def latest(self) -> Optional[Dict[str, Any]]:
        entries = self.index()
        return self.load(entries[-1]["run_id"]) if entries else None

    # -- retention ---------------------------------------------------------

    def gc(self, keep: int) -> List[str]:
        """Delete all but the newest *keep* records; returns removed ids."""
        if keep < 0:
            raise ValueError("gc keep count must be >= 0")
        entries = self.index()
        doomed = entries[: max(len(entries) - keep, 0)]
        removed = []
        for entry in doomed:
            self.path_of(entry["run_id"]).unlink(missing_ok=True)
            removed.append(entry["run_id"])
        if removed:
            survivors = entries[len(doomed):]
            self.index_path.write_text(
                "".join(
                    json.dumps(e, sort_keys=True) + "\n" for e in survivors
                )
            )
        return removed

    # -- internals ---------------------------------------------------------

    def _new_run_id(self, record: Dict[str, Any]) -> str:
        """Unique, sortable, content-salted id for a new record."""
        stamp = time.strftime(
            "%Y%m%dT%H%M%S", time.gmtime(record.get("created_unix") or 0)
        )
        salt = hashlib.sha256(
            json.dumps(record, sort_keys=True, default=repr).encode()
        ).hexdigest()[:6]
        for n in range(10_000):
            run_id = f"run-{stamp}-{salt}" + (f"-{n}" if n else "")
            if not self.path_of(run_id).exists():
                return run_id
        raise RegistryError("could not allocate a unique run id")


def flatten_metrics(
    doc: Any, prefix: str = "", out: Optional[Dict[str, float]] = None
) -> Dict[str, float]:
    """Flatten nested dicts of numbers into dotted metric names.

    Non-numeric leaves (and booleans) are dropped — the trend engine
    only compares numbers.
    """
    if out is None:
        out = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            flatten_metrics(value, name, out)
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        out[prefix] = float(doc)
    return out
