"""Perf-trajectory trends over the run registry.

``diff_traces`` compares a run against *one* pinned baseline; this
module compares a run against its *history*.  For every numeric metric
in the registry's records it builds the chronological series, takes a
**rolling median of the preceding window** as the baseline at each
point, and classifies the point with the same dual-threshold rule as
:func:`~repro.telemetry.analysis.diff_traces`: a point regresses only
when it grew by more than ``threshold_abs`` **and** by more than
``threshold_pct`` percent (both must trip, so absolute wobbles on tiny
baselines and relative wobbles on large ones stay quiet).

A metric is **flagged** — ``multinoc runs trend`` exits nonzero — only
when the regression is *sustained*: the latest ``sustain`` consecutive
records all regress against their own rolling baselines.  The first
record of that trailing streak is reported as the change point, which
is usually the commit that introduced the slowdown.  One noisy record
never gates; a real step change gates one record later and stays
flagged until the history's median absorbs it or the regression is
fixed.

Comparability guards: records are partitioned by machine fingerprint
and configuration digest (latest record wins) before any comparison —
cross-machine or cross-config records are *excluded and reported*,
never trended silently.  Pass ``allow_cross_machine=True`` (CLI
``--allow-cross-machine``) to opt into mixing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Any, Dict, Iterable, List, Optional, Tuple

TREND_SCHEMA = "multinoc-trend/1"

#: metrics needing fewer points than this are reported, never flagged
MIN_HISTORY = 4


@dataclass
class TrendEntry:
    """One metric's verdict against its rolling-median baseline."""

    metric: str
    baseline: float
    current: float
    points: int
    regressed: bool
    improved: bool
    sustained: int
    flagged: bool
    change_point: Optional[str] = None  # run_id where the streak began

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def pct(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return self.delta / self.baseline * 100.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "points": self.points,
            "regressed": self.regressed,
            "improved": self.improved,
            "sustained": self.sustained,
            "flagged": self.flagged,
            "change_point": self.change_point,
        }

    def render(self) -> str:
        pct = self.pct
        pct_text = "new" if pct == float("inf") else f"{pct:+.1f}%"
        text = (
            f"{self.metric}: median {self.baseline:g} -> {self.current:g} "
            f"({pct_text}, n={self.points})"
        )
        if self.flagged:
            text += (
                f"  REGRESSED x{self.sustained}"
                + (f" since {self.change_point}" if self.change_point else "")
            )
        elif self.regressed:
            text += "  regressed (not yet sustained)"
        elif self.improved:
            text += "  improved"
        return text


@dataclass
class TrendReport:
    """Every metric's trend verdict plus the comparability notes."""

    window: int
    threshold_pct: float
    threshold_abs: float
    sustain: int
    runs: int = 0
    fingerprint: Optional[str] = None
    config_digest: Optional[str] = None
    entries: List[TrendEntry] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def flagged(self) -> List[TrendEntry]:
        return [e for e in self.entries if e.flagged]

    @property
    def ok(self) -> bool:
        return not self.flagged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TREND_SCHEMA,
            "window": self.window,
            "threshold_pct": self.threshold_pct,
            "threshold_abs": self.threshold_abs,
            "sustain": self.sustain,
            "runs": self.runs,
            "fingerprint": self.fingerprint,
            "config_digest": self.config_digest,
            "ok": self.ok,
            "entries": [e.as_dict() for e in self.entries],
            "notes": list(self.notes),
        }

    def report(self) -> str:
        lines = [
            f"trend over {self.runs} run(s), window {self.window}, "
            f"thresholds {self.threshold_pct:g}% / {self.threshold_abs:g} abs, "
            f"sustain {self.sustain}"
        ]
        lines += [f"note: {note}" for note in self.notes]
        flagged = self.flagged
        if flagged:
            lines.append(f"{len(flagged)} sustained regression(s):")
            lines += [f"  REGRESSED {e.render()}" for e in flagged]
        else:
            lines.append("no sustained regressions")
        for entry in self.entries:
            if not entry.flagged:
                lines.append(f"  {entry.render()}")
        return "\n".join(lines)


def metric_series(
    records: Iterable[Dict[str, Any]], metric: str
) -> List[Tuple[str, float]]:
    """``(run_id, value)`` pairs for one metric, record order preserved."""
    series = []
    for record in records:
        value = (record.get("metrics") or {}).get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            series.append((record.get("run_id", "?"), float(value)))
    return series


def _regresses(
    value: float, baseline: float, threshold_pct: float, threshold_abs: float
) -> bool:
    """The diff_traces rule: both absolute and relative margins must trip."""
    delta = value - baseline
    if delta <= threshold_abs:
        return False
    return baseline == 0 or delta / baseline * 100.0 > threshold_pct


def _improves(
    value: float, baseline: float, threshold_pct: float, threshold_abs: float
) -> bool:
    return _regresses(baseline, value, threshold_pct, threshold_abs)


def select_comparable(
    records: List[Dict[str, Any]],
    *,
    allow_cross_machine: bool = False,
    notes: Optional[List[str]] = None,
) -> Tuple[List[Dict[str, Any]], Optional[str], Optional[str]]:
    """Partition *records* to the latest record's comparability class.

    Returns ``(records, fingerprint, config_digest)``.  Exclusions are
    explained in *notes* — this is the "never compared silently" guard.
    """
    if notes is None:
        notes = []
    if not records or allow_cross_machine:
        if allow_cross_machine and records:
            prints = {
                (r.get("machine") or {}).get("fingerprint") for r in records
            }
            if len(prints) > 1:
                notes.append(
                    f"cross-machine comparison forced across "
                    f"{len(prints)} fingerprints"
                )
        return list(records), None, None

    latest = records[-1]
    fingerprint = (latest.get("machine") or {}).get("fingerprint")
    digest = latest.get("config_digest")

    kept = []
    dropped_machine = dropped_config = 0
    for record in records:
        if (record.get("machine") or {}).get("fingerprint") != fingerprint:
            dropped_machine += 1
            continue
        if digest is not None and record.get("config_digest") != digest:
            dropped_config += 1
            continue
        kept.append(record)
    if dropped_machine:
        notes.append(
            f"excluded {dropped_machine} record(s) from other machines "
            f"(fingerprint != {fingerprint}); pass --allow-cross-machine "
            "to compare anyway"
        )
    if dropped_config:
        notes.append(
            f"excluded {dropped_config} record(s) with a different "
            f"config digest (!= {digest})"
        )
    return kept, fingerprint, digest


def compute_trend(
    records: List[Dict[str, Any]],
    *,
    metrics: Optional[Iterable[str]] = None,
    window: int = 5,
    threshold_pct: float = 10.0,
    threshold_abs: float = 0.0,
    sustain: int = 2,
    min_history: int = MIN_HISTORY,
    allow_cross_machine: bool = False,
) -> TrendReport:
    """Trend every (or the named) metrics over *records* (oldest first)."""
    if window < 1:
        raise ValueError("trend window must be at least 1 record")
    if sustain < 1:
        raise ValueError("sustain must be at least 1 record")
    notes: List[str] = []
    comparable, fingerprint, digest = select_comparable(
        records, allow_cross_machine=allow_cross_machine, notes=notes
    )
    report = TrendReport(
        window=window,
        threshold_pct=threshold_pct,
        threshold_abs=threshold_abs,
        sustain=sustain,
        runs=len(comparable),
        fingerprint=fingerprint,
        config_digest=digest,
        notes=notes,
    )
    if not comparable:
        notes.append("no comparable records; nothing to trend")
        return report

    if metrics is None:
        names = sorted((comparable[-1].get("metrics") or {}).keys())
    else:
        names = list(metrics)

    for name in names:
        series = metric_series(comparable, name)
        if len(series) < 2:
            continue
        values = [v for _, v in series]
        last = len(values) - 1
        baseline = median(values[max(0, last - window): last])

        def verdict(i: int) -> bool:
            base = median(values[max(0, i - window): i])
            return _regresses(
                values[i], base, threshold_pct, threshold_abs
            )

        sustained = 0
        change_point = None
        for i in range(last, 0, -1):
            if not verdict(i):
                break
            sustained += 1
            change_point = series[i][0]

        regressed = sustained > 0
        improved = not regressed and _improves(
            values[last], baseline, threshold_pct, threshold_abs
        )
        enough = len(values) >= min_history
        if not enough:
            notes.append(
                f"{name}: only {len(values)} point(s), below min history "
                f"{min_history}; reported but never flagged"
            )
        report.entries.append(
            TrendEntry(
                metric=name,
                baseline=baseline,
                current=values[last],
                points=len(values),
                regressed=regressed,
                improved=improved,
                sustained=sustained,
                flagged=enough and sustained >= sustain,
                change_point=change_point if sustained else None,
            )
        )
    return report


def metric_arrow(
    values: List[float],
    *,
    window: int = 5,
    threshold_pct: float = 5.0,
) -> str:
    """One trend glyph for a metric series: ``↑`` ``↓`` or ``→``.

    The last value is compared to the rolling median of the preceding
    ``window`` values; moves within ``threshold_pct`` percent are flat.
    This is the at-a-glance column ``multinoc runs list --metric``
    renders — ``↑`` only says "grew", whether that is a regression
    (latency) or an improvement (throughput) depends on the metric.
    """
    if len(values) < 2:
        return "→"
    baseline = median(values[max(0, len(values) - 1 - window): -1])
    current = values[-1]
    if baseline == 0:
        return "↑" if current > 0 else ("↓" if current < 0 else "→")
    pct = (current - baseline) / abs(baseline) * 100.0
    if pct > threshold_pct:
        return "↑"
    if pct < -threshold_pct:
        return "↓"
    return "→"


# -- two-record diff ---------------------------------------------------------


@dataclass
class RunDiff:
    """``multinoc runs diff``: record-vs-record metric comparison."""

    baseline_id: str
    current_id: str
    threshold_pct: float
    threshold_abs: float
    regressions: List[Tuple[str, float, float]] = field(default_factory=list)
    improvements: List[Tuple[str, float, float]] = field(default_factory=list)
    unchanged: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, Any]:
        def rows(entries):
            return [
                {"metric": m, "baseline": b, "current": c}
                for m, b, c in entries
            ]

        return {
            "schema": TREND_SCHEMA,
            "baseline": self.baseline_id,
            "current": self.current_id,
            "threshold_pct": self.threshold_pct,
            "threshold_abs": self.threshold_abs,
            "ok": self.ok,
            "regressions": rows(self.regressions),
            "improvements": rows(self.improvements),
            "unchanged": self.unchanged,
            "notes": list(self.notes),
        }

    def report(self) -> str:
        lines = [f"diff {self.baseline_id} -> {self.current_id}:"]
        lines += [f"note: {n}" for n in self.notes]

        def render(metric, base, cur):
            pct = (
                (cur - base) / base * 100.0 if base else float("inf")
            )
            pct_text = "new" if pct == float("inf") else f"{pct:+.1f}%"
            return f"{metric}: {base:g} -> {cur:g} ({pct_text})"

        if self.regressions:
            lines.append(f"{len(self.regressions)} regression(s):")
            lines += [
                f"  REGRESSED {render(*row)}" for row in self.regressions
            ]
        else:
            lines.append("no regressions")
        if self.improvements:
            lines.append(f"{len(self.improvements)} improvement(s):")
            lines += [
                f"  improved  {render(*row)}" for row in self.improvements
            ]
        lines.append(f"{self.unchanged} metric(s) within thresholds")
        return "\n".join(lines)


def diff_records(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    threshold_pct: float = 10.0,
    threshold_abs: float = 0.0,
) -> RunDiff:
    """Compare two run records metric-by-metric (dual thresholds)."""
    diff = RunDiff(
        baseline_id=baseline.get("run_id", "?"),
        current_id=current.get("run_id", "?"),
        threshold_pct=threshold_pct,
        threshold_abs=threshold_abs,
    )
    cur_fp = (current.get("machine") or {}).get("fingerprint")
    base_fp = (baseline.get("machine") or {}).get("fingerprint")
    if cur_fp != base_fp:
        diff.notes.append(
            f"records come from different machines "
            f"({base_fp} vs {cur_fp}); timing comparisons are unreliable"
        )
    if current.get("config_digest") != baseline.get("config_digest"):
        diff.notes.append("records have different config digests")

    cur_metrics = current.get("metrics") or {}
    base_metrics = baseline.get("metrics") or {}
    for name in sorted(set(cur_metrics) & set(base_metrics)):
        cur, base = cur_metrics[name], base_metrics[name]
        if not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (cur, base)
        ):
            continue
        if _regresses(cur, base, threshold_pct, threshold_abs):
            diff.regressions.append((name, float(base), float(cur)))
        elif _improves(cur, base, threshold_pct, threshold_abs):
            diff.improvements.append((name, float(base), float(cur)))
        else:
            diff.unchanged += 1
    only_cur = set(cur_metrics) - set(base_metrics)
    only_base = set(base_metrics) - set(cur_metrics)
    if only_cur:
        diff.notes.append(f"{len(only_cur)} metric(s) only in current")
    if only_base:
        diff.notes.append(f"{len(only_base)} metric(s) only in baseline")
    return diff
