"""Structured event and span collection.

The telemetry layer's core is a single :class:`TelemetrySink` that every
instrumented component shares.  Components hold a ``sink`` attribute that
is ``None`` by default; each hook site is guarded by one ``if sink is not
None`` check, so a simulation without telemetry pays only that branch.

Events use the Chrome trace-event phase vocabulary so they export
losslessly (see :mod:`repro.telemetry.export`):

=====  =========================================================
phase  meaning
=====  =========================================================
``X``  complete span: ``ts`` .. ``ts + dur`` (packet hop, stall,
       instruction burst, host transaction)
``B``  span begin (paired with a later ``E`` on the same track)
``E``  span end
``i``  instant event (printf trap, route decision, activation)
``C``  counter sample (queue depth over time)
=====  =========================================================

Timestamps are **simulation cycles**; the exporters map them to the
viewer's microsecond timeline (optionally scaled by the clock rate).
"""

from __future__ import annotations

import csv
import io
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from .metrics import MetricsRegistry


class Event:
    """One telemetry record.  Deliberately tiny: millions may be stored."""

    __slots__ = ("ph", "name", "track", "ts", "dur", "args")

    def __init__(
        self,
        ph: str,
        name: str,
        track: str,
        ts: int,
        dur: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.ph = ph
        self.name = name
        self.track = track
        self.ts = ts
        self.dur = dur
        self.args = args

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ph": self.ph,
            "name": self.name,
            "track": self.track,
            "ts": self.ts,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dur = f"+{self.dur}" if self.dur is not None else ""
        return f"<Event {self.ph} {self.name}@{self.track} #{self.ts}{dur}>"


class Span:
    """An open interval on a track; call :meth:`end` to close it.

    Returned by :meth:`TelemetrySink.begin`.  Ending a span emits a
    matching ``E`` event; the begin ``B`` event was already emitted.
    """

    __slots__ = ("_sink", "track", "name", "start", "closed")

    def __init__(self, sink: "TelemetrySink", track: str, name: str, start: int):
        self._sink = sink
        self.track = track
        self.name = name
        self.start = start
        self.closed = False

    def end(self, ts: int, **args: Any) -> None:
        if self.closed:
            return
        self.closed = True
        self._sink.emit(Event("E", self.name, self.track, ts, args=args or None))


class TelemetrySink:
    """Shared collector for events and metrics.

    Parameters
    ----------
    max_events:
        Optional ring-buffer bound.  When set, the oldest events are
        discarded once the buffer is full (``dropped_events`` counts
        them), so unbounded runs cannot exhaust memory.
    metrics:
        Registry to attach; a fresh one is created by default.  Passing
        the registry that :class:`~repro.noc.stats.NetworkStats` uses
        makes NoC aggregates and ad-hoc component metrics one namespace.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.max_events = max_events
        self.events: Union[List[Event], Deque[Event]] = (
            deque(maxlen=max_events) if max_events is not None else []
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.dropped_events = 0
        #: track name -> (process name, thread id); processes group tracks
        #: into Perfetto "processes" (noc / cpu / host / serial).
        self.tracks: Dict[str, Tuple[str, int]] = {}
        self._next_tid: Dict[str, int] = {}

    # -- track registry ---------------------------------------------------

    def track(self, name: str, process: str = "sim") -> str:
        """Register *name* under *process* (idempotent); returns *name*."""
        if name not in self.tracks:
            tid = self._next_tid.get(process, 0) + 1
            self._next_tid[process] = tid
            self.tracks[name] = (process, tid)
        return name

    # -- emission ---------------------------------------------------------

    def emit(self, event: Event) -> None:
        if event.track not in self.tracks:
            self.track(event.track)
        if self.max_events is not None and len(self.events) == self.max_events:
            self.dropped_events += 1
        self.events.append(event)

    def instant(self, track: str, name: str, ts: int, **args: Any) -> None:
        self.emit(Event("i", name, track, ts, args=args or None))

    def complete(
        self, track: str, name: str, ts: int, dur: int, **args: Any
    ) -> None:
        """A finished span: the workhorse for hops, stalls and bursts."""
        self.emit(Event("X", name, track, ts, dur, args=args or None))

    def begin(self, track: str, name: str, ts: int, **args: Any) -> Span:
        self.emit(Event("B", name, track, ts, args=args or None))
        return Span(self, track, name, ts)

    def counter(self, track: str, name: str, ts: int, value: float) -> None:
        self.emit(Event("C", name, track, ts, args={"value": value}))

    # -- inspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def events_on(self, track: str) -> List[Event]:
        return [e for e in self.events if e.track == track]

    def events_named(self, name: str) -> List[Event]:
        return [e for e in self.events if e.name == name]

    def as_csv(self) -> str:
        """``ph,name,track,ts,dur,args`` lines with a header.

        Built with :mod:`csv` so args containing commas, quotes or
        newlines are quoted/escaped correctly and survive a round-trip
        through any CSV reader; ``args`` is JSON-encoded in its cell.
        """
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["ph", "name", "track", "ts", "dur", "args"])
        for e in self.events:
            writer.writerow(
                [
                    e.ph,
                    e.name,
                    e.track,
                    e.ts,
                    "" if e.dur is None else e.dur,
                    json.dumps(e.args, sort_keys=True) if e.args else "",
                ]
            )
        return out.getvalue()

    def truncate_to(self, n: int) -> int:
        """Drop every event after index *n* (checkpoint-restore rewind).

        When the debugger restores an earlier checkpoint, deterministic
        replay re-emits the tail of the trace; truncating first keeps the
        stream free of duplicates.  Returns the number of events dropped.
        Refuses (returning 0) on a ring-buffered sink that has already
        discarded events — indices no longer align with emission order.
        """
        if n < 0:
            raise ValueError(f"cannot truncate to negative length {n}")
        if self.dropped_events:
            return 0
        dropped = len(self.events) - n
        if dropped <= 0:
            return 0
        if isinstance(self.events, deque):
            for _ in range(dropped):
                self.events.pop()
        else:
            del self.events[n:]
        return dropped

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0
