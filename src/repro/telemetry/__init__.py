"""Unified observability layer: events, metrics, exporters, profiler.

One :class:`TelemetrySink` instruments the whole platform — the packet
lifecycle across routers and network interfaces, R8 execution (bursts,
stalls, traps), host serial transactions — while the
:class:`MetricsRegistry` carries the numeric aggregates
(:class:`~repro.noc.stats.NetworkStats` is built on it).  Exporters turn
a sink into a Chrome-trace/Perfetto JSON, a JSONL event log or a
Prometheus text dump, and :class:`KernelProfiler` measures where the
simulator's wall-clock time goes.

See ``docs/OBSERVABILITY.md`` for the event taxonomy and workflows.
"""

from .events import Event, Span, TelemetrySink
from .export import chrome_trace, write_chrome_trace, write_jsonl, write_prometheus
from .metrics import Counter, Gauge, Histogram, MetricError, MetricsRegistry
from .profiler import KernelProfiler

__all__ = [
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "TelemetrySink",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
