"""Unified observability layer: events, metrics, exporters, profiler.

One :class:`TelemetrySink` instruments the whole platform — the packet
lifecycle across routers and network interfaces, R8 execution (bursts,
stalls, traps), host serial transactions — while the
:class:`MetricsRegistry` carries the numeric aggregates
(:class:`~repro.noc.stats.NetworkStats` is built on it).  Exporters turn
a sink into a Chrome-trace/Perfetto JSON, a JSONL event log or a
Prometheus text dump, and :class:`KernelProfiler` measures where the
simulator's wall-clock time goes.  :class:`HealthMonitor` is the active
layer on top: watchdogs (deadlock, starvation, CPU stall, host timeout),
online invariant checks and a time-series sampler that detect, localise
and explain pathologies while the simulation runs.

See ``docs/OBSERVABILITY.md`` for the event taxonomy and workflows.
"""

from .alerts import (
    ALERT_SCHEMA,
    ALERTS_DOC_SCHEMA,
    AlertEngine,
    AlertRule,
    Condition,
    RuleError,
    RuleSet,
    SloObjective,
    check_frames,
    check_records,
    frames_from_trace,
    load_rules,
    parse_condition,
    parse_rules,
)
from .analysis import (
    CpuProfile,
    HopBreakdown,
    PacketTrace,
    TraceAnalysis,
    TraceDiff,
    analyze_trace,
    diff_traces,
)
from .events import Event, Span, TelemetrySink
from .export import (
    chrome_trace,
    load_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .health import (
    HealthMonitor,
    HealthViolation,
    TimeSeriesSampler,
    glyph_ramp,
    terminal_is_rich,
)
from .hostperf import (
    CRASH_SCHEMA,
    HOSTPERF_SCHEMA,
    FlightRecorder,
    HostPerfProfiler,
    read_rss_bytes,
)
from .live import LIVE_SCHEMA, LIVE_TRACKS, LiveStream
from .metrics import Counter, Gauge, Histogram, MetricError, MetricsRegistry
from .profiler import KernelProfiler
from .registry import (
    RUN_SCHEMA,
    RegistryError,
    RunRegistry,
    config_digest,
    flatten_metrics,
    git_revision,
    machine_fingerprint,
)
from .server import FLEET_SCHEMA, TelemetryServer
from .top import MeshTop, fetch_frame, fetch_runs, stream_frames, watch_fleet
from .trend import (
    TREND_SCHEMA,
    RunDiff,
    TrendEntry,
    TrendReport,
    compute_trend,
    diff_records,
    metric_arrow,
)

__all__ = [
    "ALERT_SCHEMA",
    "ALERTS_DOC_SCHEMA",
    "AlertEngine",
    "AlertRule",
    "Condition",
    "CRASH_SCHEMA",
    "Counter",
    "CpuProfile",
    "Event",
    "FLEET_SCHEMA",
    "FlightRecorder",
    "Gauge",
    "HOSTPERF_SCHEMA",
    "HealthMonitor",
    "HealthViolation",
    "Histogram",
    "HopBreakdown",
    "HostPerfProfiler",
    "KernelProfiler",
    "LIVE_SCHEMA",
    "LIVE_TRACKS",
    "LiveStream",
    "MeshTop",
    "MetricError",
    "MetricsRegistry",
    "PacketTrace",
    "RUN_SCHEMA",
    "RegistryError",
    "RuleError",
    "RuleSet",
    "RunDiff",
    "RunRegistry",
    "SloObjective",
    "Span",
    "TREND_SCHEMA",
    "TelemetryServer",
    "TelemetrySink",
    "TimeSeriesSampler",
    "TraceAnalysis",
    "TraceDiff",
    "TrendEntry",
    "TrendReport",
    "analyze_trace",
    "check_frames",
    "check_records",
    "chrome_trace",
    "compute_trend",
    "config_digest",
    "diff_records",
    "diff_traces",
    "fetch_frame",
    "fetch_runs",
    "flatten_metrics",
    "frames_from_trace",
    "git_revision",
    "glyph_ramp",
    "load_jsonl",
    "load_rules",
    "machine_fingerprint",
    "metric_arrow",
    "parse_condition",
    "parse_rules",
    "read_rss_bytes",
    "stream_frames",
    "terminal_is_rich",
    "watch_fleet",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
