"""Live observation plane: streaming schema'd telemetry frames.

The passive telemetry layer records what the platform did and the health
monitor raises when something is wrong; this module makes a *running*
simulation watchable.  A :class:`LiveStream` attaches to a
:class:`~repro.sim.kernel.Simulator` through the kernel's stride-watcher
machinery (:meth:`~repro.sim.kernel.Simulator.add_stride_watcher`, so
frames keep their cadence across idle fast-forward spans) and, every
``stride`` cycles, folds the raw counters into one compact, JSON-ready
frame (schema ``multinoc-live/1``):

* per-link flit-rate deltas (utilisation against the 2-cycle handshake
  bound), filtered to the busiest ``max_links`` so frame size stays
  bounded on large meshes;
* per-router FIFO occupancy and high-water marks;
* per-CPU state, program counter and windowed IPC;
* packet counters, windowed throughput and windowed latency;
* health-monitor status (violations, checks run) when one is attached;
* checkpoint-ring marks when a ring is attached;
* the wall-clock simulation rate (simulated cycles per real second).

Frames fan out three ways: in-process subscriber callbacks (this
module), a localhost HTTP endpoint (:mod:`repro.telemetry.server`:
``/metrics`` Prometheus scrape + ``/frames`` SSE/JSONL stream), and the
``multinoc top`` terminal dashboard (:mod:`repro.telemetry.top`).

The stream only *reads* simulator state — an observed run is
bit-identical to an unobserved one (``tests/test_live.py`` guards this
in both kernel modes, like the health monitor's equivalence test).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..noc.routing import Port
from .health import TimeSeriesSampler

Address = Tuple[int, int]

LIVE_SCHEMA = "multinoc-live/1"

#: every track a frame can carry; construct with ``tracks=`` to restrict
#: (the ``host`` track only materialises when a HostPerfProfiler is
#: attached to the simulator, so unprofiled frames are unchanged)
LIVE_TRACKS = frozenset(
    {"packets", "links", "routers", "cpus", "health", "checkpoints", "host"}
)


class LiveStream:
    """Strided live-telemetry frame producer for one simulation.

    Parameters
    ----------
    stride:
        Cycles between frames.  Each frame's rates are computed over the
        cycles since the previous frame ("the window").
    tracks:
        Subset of :data:`LIVE_TRACKS` to include; ``None`` means all.
        Dropping tracks is the coarse overhead knob for big meshes.
    max_links:
        Keep only the busiest N links per frame (by flit rate); the
        number of elided active links is reported as ``links_elided``.
    min_link_rate:
        Drop links below this flits-per-cycle rate (0 drops only
        completely idle links).
    window:
        Samples kept per sparkline series in :attr:`sampler`.
    """

    def __init__(
        self,
        *,
        stride: int = 1024,
        tracks: Optional[Iterable[str]] = None,
        max_links: int = 64,
        min_link_rate: float = 0.0,
        window: int = 256,
    ):
        if stride < 1:
            raise ValueError("live stream stride must be at least 1 cycle")
        if max_links < 1:
            raise ValueError("max_links must keep at least 1 link")
        tracks = LIVE_TRACKS if tracks is None else frozenset(tracks)
        unknown = tracks - LIVE_TRACKS
        if unknown:
            raise ValueError(
                f"unknown live tracks {sorted(unknown)}; "
                f"choose from {sorted(LIVE_TRACKS)}"
            )
        self.stride = stride
        self.tracks = tracks
        self.max_links = max_links
        self.min_link_rate = min_link_rate
        #: windowed series (throughput, in_flight, latency, sim rate)
        #: for sparkline rendering; fed once per frame.
        self.sampler = TimeSeriesSampler(stride, window)

        self.sim = None
        self.mesh = None
        self.stats = None
        self.processors: List[Any] = []
        self.host = None
        self.ring = None

        self.frames_emitted = 0
        self.latest: Optional[Dict[str, Any]] = None
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []

        self._last_cycle = 0
        self._last_wall = 0.0
        self._prev_links: Dict[tuple, int] = {}
        self._prev_retired: Dict[str, int] = {}
        self._prev_injected = 0
        self._prev_delivered = 0
        self._prev_flits = 0
        self._prev_lat_count = 0
        self._router_names: Dict[Address, str] = {}

    # -- wiring ------------------------------------------------------------

    def attach(
        self,
        sim,
        system=None,
        *,
        mesh=None,
        stats=None,
        processors: Iterable[Any] = (),
        host=None,
        ring=None,
    ) -> "LiveStream":
        """Hook into *sim* on the frame stride; returns self.

        Pass a :class:`~repro.system.multinoc.MultiNoC` as *system* to
        wire mesh, stats and processors automatically (the same shape as
        :meth:`HealthMonitor.attach`).  *ring* defaults to
        ``sim.checkpoint_ring`` when a debugger has installed one.
        """
        if system is not None:
            mesh = system.mesh
            stats = system.stats
            processors = list(system.processors.values())
        self.sim = sim
        self.mesh = mesh
        self.stats = stats
        self.processors = list(processors)
        self.host = host
        self.ring = ring if ring is not None else getattr(
            sim, "checkpoint_ring", None
        )
        if mesh is not None:
            self._router_names = {
                addr: router.name for addr, router in mesh.routers.items()
            }

        self._last_cycle = sim.cycle
        self._last_wall = time.perf_counter()
        if stats is not None:
            if "links" in self.tracks or "routers" in self.tracks:
                self._prev_links = dict(stats.flits_sent)
            self._prev_injected = stats.packets_injected
            self._prev_delivered = stats.packets_delivered
            self._prev_flits = stats.delivered_flits
            self._prev_lat_count = len(stats.latencies)
        for proc in self.processors:
            self._prev_retired[proc.name] = proc.cpu.instructions_retired

        sim.add_stride_watcher(self.on_stride, self.stride)
        sim.live = self
        return self

    def detach(self) -> None:
        """Unhook from the simulator; the run continues unobserved."""
        if self.sim is not None:
            self.sim.remove_stride_watcher(self.on_stride)
            if getattr(self.sim, "live", None) is self:
                self.sim.live = None

    # -- subscribers -------------------------------------------------------

    def subscribe(self, fn: Callable[[Dict[str, Any]], None]):
        """Call *fn(frame)* for every emitted frame; returns *fn*.

        Subscribers run on the simulation thread and must only observe
        (an exception from a subscriber aborts the run loudly).
        """
        if fn not in self._subscribers:
            self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn) -> None:
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    def mirror_to(self, sink) -> "LiveStream":
        """Mirror every frame into *sink* as an instant event.

        Each frame lands on track ``live`` as a ``frame`` event whose
        args carry the frame verbatim, so a stored JSONL trace contains
        the exact frames the run was observed with —
        ``multinoc alerts check RULES --trace`` replays them through the
        same rule engine for verdicts identical to the live run's.

        Opt-in (never wired by default): mirroring adds events to the
        sink, and the observed-vs-unobserved equivalence guard compares
        event streams like for like.
        """
        sink.track("live", process="sim")

        def _mirror(frame: Dict[str, Any], _sink=sink) -> None:
            _sink.instant("live", "frame", frame.get("cycle", 0), frame=frame)

        self.subscribe(_mirror)
        return self

    # -- frame production --------------------------------------------------

    def on_stride(self, cycle: int) -> None:
        """Kernel stride watcher: build and publish one frame."""
        self.emit(self.build_frame(cycle))

    def force(self, cycle: Optional[int] = None) -> Dict[str, Any]:
        """Emit a frame now, off-stride (end of run, tests); returns it."""
        if cycle is None:
            cycle = self.sim.cycle if self.sim is not None else 0
        frame = self.build_frame(cycle)
        self.emit(frame)
        return frame

    def emit(self, frame: Dict[str, Any]) -> None:
        self.latest = frame
        self.frames_emitted += 1
        for fn in self._subscribers:
            fn(frame)

    def build_frame(self, cycle: int) -> Dict[str, Any]:
        """Fold current counters into one ``multinoc-live/1`` frame."""
        window = max(cycle - self._last_cycle, 1)
        wall = time.perf_counter()
        wall_dt = wall - self._last_wall
        sim_rate = (cycle - self._last_cycle) / wall_dt if wall_dt > 0 else 0.0
        frame: Dict[str, Any] = {
            "schema": LIVE_SCHEMA,
            "seq": self.frames_emitted,
            "cycle": cycle,
            "stride": self.stride,
            "window": window,
            "wall_unix": time.time(),
            "sim_rate_hz": round(sim_rate, 1),
        }
        if self.mesh is not None:
            frame["mesh"] = [self.mesh.width, self.mesh.height]
            topology = getattr(self.mesh, "topology", None)
            if topology is not None:
                frame["topology"] = topology.descriptor()

        router_rate: Dict[Address, float] = {}
        if self.stats is not None:
            if "links" in self.tracks or "routers" in self.tracks:
                links, elided = self._link_rates(window, router_rate)
                if "links" in self.tracks:
                    frame["links"] = links
                    frame["links_elided"] = elided
            if "packets" in self.tracks:
                frame["packets"] = self._packet_counters(window)
                frame["latency"] = self._window_latency()
        if "routers" in self.tracks and self.mesh is not None:
            frame["routers"] = self._router_states(router_rate)
        if "cpus" in self.tracks and self.processors:
            frame["cpus"] = self._cpu_states(window)
        if "health" in self.tracks:
            frame["health"] = self._health_status()
        if "checkpoints" in self.tracks:
            ring = self.ring
            if ring is None and self.sim is not None:
                ring = getattr(self.sim, "checkpoint_ring", None)
            frame["checkpoints"] = (
                [entry.cycle for entry in ring.entries]
                if ring is not None
                else []
            )
        if "host" in self.tracks:
            hostperf = getattr(self.sim, "hostperf", None)
            if hostperf is not None:
                frame["host"] = hostperf.frame_fields()

        self._feed_sampler(cycle, frame, sim_rate)
        self._last_cycle = cycle
        self._last_wall = wall
        return frame

    # -- per-track folds ---------------------------------------------------

    def _link_rates(
        self, window: int, router_rate: Dict[Address, float]
    ) -> Tuple[Dict[str, float], int]:
        """Per-link utilisation deltas; fills *router_rate* as a side
        product (per-router output flit rate for the heatmap)."""
        current = self.stats.flits_sent
        prev = self._prev_links
        active: List[Tuple[float, str]] = []
        for key, count in current.items():
            delta = count - prev.get(key, 0)
            if delta <= 0:
                continue
            addr, port = key
            rate = delta / window
            router_rate[addr] = router_rate.get(addr, 0.0) + rate
            # 2-cycle handshake bound: rate*2 is utilisation in [0, 1]
            util = rate * 2
            if util < self.min_link_rate:
                continue
            active.append((util, f"{self._router_name(addr)}.{Port(port).name}"))
        self._prev_links = dict(current)
        active.sort(key=lambda item: (-item[0], item[1]))
        kept = active[: self.max_links]
        return (
            {name: round(util, 4) for util, name in kept},
            len(active) - len(kept),
        )

    def _router_name(self, addr: Address) -> str:
        name = self._router_names.get(addr)
        return name if name is not None else f"router{addr[0]}{addr[1]}"

    def _packet_counters(self, window: int) -> Dict[str, Any]:
        s = self.stats
        injected = s.packets_injected
        delivered = s.packets_delivered
        flits = s.delivered_flits
        out = {
            "injected": injected,
            "delivered": delivered,
            "in_flight": s.in_flight_count,
            "delta_injected": injected - self._prev_injected,
            "delta_delivered": delivered - self._prev_delivered,
            "throughput_flits_per_cycle": round(
                (flits - self._prev_flits) / window, 4
            ),
        }
        self._prev_injected = injected
        self._prev_delivered = delivered
        self._prev_flits = flits
        return out

    def _window_latency(self) -> Dict[str, float]:
        """Latency of packets delivered inside this frame's window."""
        latencies = self.stats.latencies
        tail = latencies[self._prev_lat_count :]
        self._prev_lat_count = len(latencies)
        if not tail:
            return {"count": 0}
        ordered = sorted(tail)
        last = len(ordered) - 1
        return {
            "count": len(ordered),
            "mean": round(sum(ordered) / len(ordered), 2),
            "p50": ordered[len(ordered) // 2],
            "p90": ordered[min((len(ordered) * 9) // 10, last)],
            "p99": ordered[min((len(ordered) * 99) // 100, last)],
            "max": ordered[-1],
        }

    def _router_states(
        self, router_rate: Dict[Address, float]
    ) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for addr, router in self.mesh.routers.items():
            out[router.name] = {
                # explicit grid position: router names like "router115"
                # are ambiguous once a coordinate reaches two digits
                "coords": [addr[0], addr[1]],
                "occupancy": sum(len(f) for f in router.fifos),
                "watermark": max(f.watermark for f in router.fifos),
                "rate": round(router_rate.get(addr, 0.0), 4),
            }
        return out

    def _cpu_states(self, window: int) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for proc in self.processors:
            cpu = proc.cpu
            retired = cpu.instructions_retired
            delta = retired - self._prev_retired.get(proc.name, 0)
            self._prev_retired[proc.name] = retired
            out[proc.name] = {
                "state": "halted" if cpu.halted else cpu.fsm_state,
                "pc": cpu.state.pc,
                "retired": retired,
                "ipc": round(delta / window, 4),
            }
        return out

    def _health_status(self) -> Dict[str, Any]:
        monitor = getattr(self.sim, "health", None) if self.sim else None
        if monitor is None:
            return {"attached": False}
        out: Dict[str, Any] = {
            "attached": True,
            "checks_run": monitor.checks_run,
            "violations": len(monitor.violations),
        }
        if monitor.violations:
            out["last_violation"] = monitor.violations[-1].as_dict()
        return out

    def _feed_sampler(
        self, cycle: int, frame: Dict[str, Any], sim_rate: float
    ) -> None:
        packets = frame.get("packets")
        if packets is not None:
            self.sampler.append(
                "throughput", cycle, packets["throughput_flits_per_cycle"]
            )
            self.sampler.append("in_flight", cycle, packets["in_flight"])
        latency = frame.get("latency")
        if latency is not None:
            self.sampler.append("latency", cycle, latency.get("mean", 0.0))
        self.sampler.append("sim_rate", cycle, sim_rate)
