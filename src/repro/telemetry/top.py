"""``multinoc top`` — a real-time terminal dashboard for a running mesh.

Dependency-free (ANSI escapes + stdlib only).  The dashboard renders one
``multinoc-live/1`` frame per screen: an NxM mesh heatmap showing link
utilisation and router FIFO occupancy side by side, CPU state badges
with windowed IPC, packet/latency counters, health-monitor status,
checkpoint-ring marks, and sparklines of throughput / in-flight /
simulation rate built from the frame history it has seen.

Two attachment modes:

* **in-process** — ``MeshTop().attach(live)`` subscribes to a
  :class:`~repro.telemetry.live.LiveStream` and repaints on every frame
  (``multinoc run ... --top`` wires this up);
* **remote** — :func:`stream_frames` consumes a
  :mod:`~repro.telemetry.server` ``/frames?format=jsonl`` stream over
  plain :mod:`urllib`, so ``multinoc top --url http://127.0.0.1:9777``
  watches a simulation in another process.  :func:`fetch_frame` grabs
  ``/frame`` once for ``--once`` snapshots (CI smoke uses this); when
  the server is up but no frame has been folded yet (HTTP 404), the
  fetch retries with a short exponential backoff instead of erroring,
  so attaching *while* a run warms up just works.

**Fleet mode** (``multinoc top --fleet``) renders the aggregator's
``/runs`` document instead of a single mesh: one row per session —
cycle, simulation rate, health, a link-utilisation sparkline — plus the
newest run-registry records.  This is the operator's view of a
multi-session service.

Colour / glyph policy follows the rest of the telemetry layer: unicode
block ramps and ANSI colour only when the output is a real terminal and
``NO_COLOR`` is unset (:func:`~repro.telemetry.health.terminal_is_rich`);
pure-ASCII everywhere else.  ``Ctrl-C`` quits the interactive loop.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from .health import TimeSeriesSampler, glyph_ramp, terminal_is_rich

_CLEAR = "\x1b[2J\x1b[H"
_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RED = "\x1b[31m"
_CYAN = "\x1b[36m"

#: CPU badge colour by state (rich mode only)
_STATE_COLOURS = {
    "halted": _DIM,
    "fetch": _GREEN,
    "decode": _GREEN,
    "execute": _GREEN,
}


class MeshTop:
    """Render ``multinoc-live/1`` frames as a terminal dashboard.

    ``color=None`` auto-detects (TTY and no ``NO_COLOR``); pass False
    for the plain-ASCII rendering used by tests and CI artifacts.
    """

    def __init__(
        self,
        *,
        color: Optional[bool] = None,
        stream=None,
        sparkline_width: int = 48,
    ):
        self.stream = stream if stream is not None else sys.stdout
        self.color = (
            terminal_is_rich(self.stream) if color is None else bool(color)
        )
        self.ramp = glyph_ramp(ascii_only=not self.color)
        self.sparkline_width = sparkline_width
        self._sampler: Optional[TimeSeriesSampler] = None
        self._fleet_samplers: Dict[str, TimeSeriesSampler] = {}
        self._live = None
        self._alerts = None

    # -- in-process attachment --------------------------------------------

    def attach(self, live) -> "MeshTop":
        """Repaint on every frame of an in-process live stream."""
        self._live = live
        live.subscribe(self.display)
        return self

    def attach_alerts(self, engine) -> "MeshTop":
        """Show *engine*'s firing/pending alerts as a banner section."""
        self._alerts = engine
        return self

    def detach(self) -> None:
        if self._live is not None:
            self._live.unsubscribe(self.display)
            self._live = None

    # -- painting ----------------------------------------------------------

    def display(self, frame: Dict[str, Any]) -> None:
        """Clear the screen (when interactive) and paint one frame."""
        text = self.render(frame)
        if self.color:
            self.stream.write(_CLEAR)
        self.stream.write(text + "\n")
        self.stream.flush()

    def render(self, frame: Dict[str, Any]) -> str:
        """One frame as a multi-line string (no screen control codes)."""
        self._observe(frame)
        lines: List[str] = []
        lines.append(self._header(frame))
        packets = frame.get("packets")
        if packets is not None:
            lines.append(self._packets_line(packets, frame.get("latency")))
        if "mesh" in frame and "routers" in frame:
            lines.append("")
            lines.extend(self._mesh_heatmap(frame))
        links_elided = frame.get("links_elided", 0)
        if links_elided:
            lines.append(
                self._dim(f"  (+{links_elided} quieter links not shown)")
            )
        cpus = frame.get("cpus")
        if cpus:
            lines.append("")
            lines.extend(self._cpu_badges(cpus))
        lines.append("")
        lines.append(self._health_line(frame.get("health")))
        host = frame.get("host")
        if host:
            lines.append(self._host_line(host))
        lines.extend(self._alerts_section(frame))
        checkpoints = frame.get("checkpoints")
        if checkpoints:
            marks = "  ".join(f"@{c}" for c in checkpoints[-6:])
            lines.append(f"checkpoints: {marks}")
        if self._sampler is not None:
            lines.append("")
            lines.extend(self._sparklines())
        return "\n".join(lines)

    # -- sections ----------------------------------------------------------

    def _observe(self, frame: Dict[str, Any]) -> None:
        """Fold the frame into the local sparkline history (remote
        dashboards have no access to the producer's sampler)."""
        if self._sampler is None:
            self._sampler = TimeSeriesSampler(
                max(frame.get("stride", 1), 1), window=self.sparkline_width
            )
        cycle = frame.get("cycle", 0)
        packets = frame.get("packets")
        if packets is not None:
            self._sampler.append(
                "throughput", cycle, packets.get("throughput_flits_per_cycle", 0.0)
            )
            self._sampler.append("in_flight", cycle, packets.get("in_flight", 0))
        self._sampler.append("sim_rate", cycle, frame.get("sim_rate_hz", 0.0))
        host = frame.get("host")
        if host:
            self._sampler.append("host_rss", cycle, host.get("rss_mb", 0.0))
            regions = host.get("regions") or {}
            self._sampler.append(
                "host_eval_share", cycle, regions.get("eval", 0.0)
            )

    def _header(self, frame: Dict[str, Any]) -> str:
        rate = frame.get("sim_rate_hz", 0.0)
        rate_text = (
            f"{rate / 1000:.1f} kHz" if rate >= 1000 else f"{rate:.1f} Hz"
        )
        mesh = frame.get("mesh")
        mesh_text = f"  mesh {mesh[0]}x{mesh[1]}" if mesh else ""
        return self._bold(
            f"MultiNoC live  cycle {frame.get('cycle', 0):,}"
            f"  frame #{frame.get('seq', 0)}{mesh_text}"
            f"  window {frame.get('window', 0)}  sim {rate_text}"
        )

    def _packets_line(
        self, packets: Dict[str, Any], latency: Optional[Dict[str, Any]]
    ) -> str:
        parts = [
            f"packets: {packets.get('delivered', 0)}/{packets.get('injected', 0)}"
            f" delivered (+{packets.get('delta_delivered', 0)})",
            f"in-flight {packets.get('in_flight', 0)}",
            f"thru {packets.get('throughput_flits_per_cycle', 0.0):.3f} flit/cyc",
        ]
        if latency and latency.get("count"):
            parts.append(
                f"lat p50 {latency['p50']} max {latency['max']} cyc"
            )
        return "  ".join(parts)

    def _mesh_heatmap(self, frame: Dict[str, Any]) -> List[str]:
        width, height = frame["mesh"]
        routers = frame["routers"]
        # Prefer explicit coordinates (the "router115" name is ambiguous
        # once a coordinate reaches two digits — x=1,y=15 vs x=11,y=5);
        # fall back to name parsing for pre-topology frames.
        by_coord: Dict[Any, Dict[str, Any]] = {}
        for name, state in routers.items():
            coords = state.get("coords")
            if coords is not None:
                by_coord[(coords[0], coords[1])] = state
        rates = []
        occs = []
        for y in range(height):
            for x in range(width):
                r = by_coord.get((x, y))
                if r is None:
                    r = routers.get(f"router{x}{y}", {})
                rates.append(r.get("rate", 0.0))
                occs.append(r.get("occupancy", 0))
        max_rate = max(max(rates), 1e-9)
        max_occ = max(max(occs), 1)
        topo = frame.get("topology") or {}
        # torus rows/columns wrap: mark the grid edges with ~ so the
        # dashboard shows traffic can re-enter on the far side
        wrap_x = topo.get("topology") == "torus" and width >= 3
        wrap_y = topo.get("topology") == "torus" and height >= 3
        lb, rb = ("~", "~") if wrap_x else ("[", "]")

        def cell(value: float, peak: float) -> str:
            idx = int(value / peak * (len(self.ramp) - 1) + 0.5)
            return self.ramp[max(0, min(idx, len(self.ramp) - 1))] * 2

        lines = [
            self._cyan(
                f"{'link util (out)':<{2 * width + 6}} fifo occupancy"
            )
        ]
        if wrap_y:
            tilde = " " * 5 + "~" * (2 * width)
            lines.append(self._dim(tilde + " " * 8 + tilde))
        for y in range(height - 1, -1, -1):  # row y=0 at the bottom
            util_row = "".join(
                cell(rates[y * width + x], max_rate) for x in range(width)
            )
            occ_row = "".join(
                cell(occs[y * width + x], max_occ) for x in range(width)
            )
            label = f"y{y:<2}" if height > 10 else f"y{y}"
            lines.append(
                f"  {label} {lb}{util_row}{rb}   {label} {lb}{occ_row}{rb}"
            )
        if wrap_y:
            tilde = " " * 5 + "~" * (2 * width)
            lines.append(self._dim(tilde + " " * 8 + tilde))
        lines.append(
            self._dim(
                f"  peak util {max(rates) if rates else 0.0:.3f}"
                f"  peak occupancy {max(occs) if occs else 0} flits"
                f"  watermark {max((r.get('watermark', 0) for r in routers.values()), default=0)}"
            )
        )
        return lines

    def _cpu_badges(self, cpus: Dict[str, Dict[str, Any]]) -> List[str]:
        lines = []
        for name in sorted(cpus):
            cpu = cpus[name]
            state = str(cpu.get("state", "?"))
            badge = f"[{state.upper():^7}]"
            if self.color:
                colour = _STATE_COLOURS.get(state, _YELLOW)
                badge = f"{colour}{badge}{_RESET}"
            lines.append(
                f"  {name:<8} {badge}"
                f" pc=0x{cpu.get('pc', 0):04x}"
                f" retired={cpu.get('retired', 0):<8}"
                f" ipc={cpu.get('ipc', 0.0):.3f}"
            )
        return lines

    def _health_line(self, health: Optional[Dict[str, Any]]) -> str:
        if not health or not health.get("attached"):
            return self._dim("health: (no monitor attached)")
        violations = health.get("violations", 0)
        if violations:
            last = health.get("last_violation", {})
            text = (
                f"health: {violations} violation(s)"
                f"  last: {last.get('check', '?')} @cycle {last.get('cycle', '?')}"
            )
            return f"{_RED}{text}{_RESET}" if self.color else text
        text = f"health: OK  ({health.get('checks_run', 0)} checks run)"
        return f"{_GREEN}{text}{_RESET}" if self.color else text

    def _alerts_section(self, frame: Dict[str, Any]) -> List[str]:
        """The alert banner: firing (red) and pending (yellow) series.

        Sources, in preference order: an in-process engine attached via
        :meth:`attach_alerts`, else an ``alerts`` roll-up embedded in
        the frame (fleet documents carry one per session).
        """
        engine = self._alerts
        if engine is not None:
            firing = engine.firing()
            pending = engine.pending()
            if not firing and not pending:
                return [
                    self._dim(
                        f"alerts: none firing ({len(engine.rules)} rule(s))"
                    )
                ]
            lines = []
            for a in firing:
                text = (
                    f"ALERT firing   {a['series']}"
                    f"  since cycle {a['since_cycle']} [{a['severity']}]"
                )
                lines.append(
                    f"{_RED}{_BOLD}{text}{_RESET}" if self.color else text
                )
            for a in pending:
                text = (
                    f"ALERT pending  {a['series']}"
                    f"  since cycle {a['since_cycle']} [{a['severity']}]"
                )
                lines.append(
                    f"{_YELLOW}{text}{_RESET}" if self.color else text
                )
            return lines
        summary = frame.get("alerts")
        if not summary:
            return []
        firing = summary.get("firing", 0)
        pending = summary.get("pending", 0)
        text = (
            f"alerts: {firing} firing, {pending} pending"
            f" ({summary.get('rules', 0)} rule(s))"
        )
        if firing:
            return [f"{_RED}{_BOLD}{text}{_RESET}" if self.color else text]
        if pending:
            return [f"{_YELLOW}{text}{_RESET}" if self.color else text]
        return [self._dim(text)]

    def _host_line(self, host: Dict[str, Any]) -> str:
        """Host observatory panel: RSS, GC pressure, phase shares and
        the headline host-seconds-per-kilocycle figure."""
        regions = host.get("regions") or {}
        phase_text = "  ".join(
            f"{name} {share:.0%}"
            for name, share in sorted(
                regions.items(), key=lambda kv: kv[1], reverse=True
            )[:4]
        )
        parts = [
            f"host: rss {host.get('rss_mb', 0.0):.1f} MB",
            f"gc {host.get('gc_pauses', 0)}"
            f"/{host.get('gc_pause_ms', 0.0):.1f}ms",
            f"{host.get('host_s_per_kcycle', 0.0):.4f} s/kcyc",
        ]
        line = "  ".join(parts)
        if phase_text:
            line += f"  [{phase_text}]"
        return self._cyan(line)

    def _sparklines(self) -> List[str]:
        lines = []
        ascii_only = not self.color
        for name, label in (
            ("throughput", "thru"),
            ("in_flight", "infl"),
            ("sim_rate", "rate"),
            ("host_rss", "rss "),
            ("host_eval_share", "eval"),
        ):
            spark = self._sampler.sparkline(
                name, width=self.sparkline_width, ascii=ascii_only
            )
            if spark:
                lines.append(f"  {label} {spark}")
        return lines

    # -- fleet view --------------------------------------------------------

    def display_fleet(self, document: Dict[str, Any]) -> None:
        """Clear the screen (when interactive) and paint a fleet table."""
        text = self.render_fleet(document)
        if self.color:
            self.stream.write(_CLEAR)
        self.stream.write(text + "\n")
        self.stream.flush()

    def render_fleet(self, document: Dict[str, Any]) -> str:
        """One ``multinoc-fleet/1`` document as a session table.

        One row per session — cycle, simulation rate, health status and
        a link-utilisation sparkline accumulated across the documents
        this dashboard has seen — followed by the newest run-registry
        records the aggregator is serving.
        """
        sessions = document.get("sessions", {})
        lines = [
            self._bold(f"MultiNoC fleet  {len(sessions)} session(s)")
        ]
        if not sessions:
            lines.append(self._dim("  (no sessions attached)"))
        else:
            width = max(len("SESSION"), *(len(n) for n in sessions)) + 2
            lines.append(
                self._cyan(
                    f"  {'SESSION':<{width}}{'CYCLE':>12}  {'RATE':>10}"
                    f"  {'HEALTH':<8} {'ALERTS':<9} UTIL"
                )
            )
            for name in sorted(sessions):
                lines.append(self._fleet_row(name, sessions[name], width))
        records = document.get("records") or []
        if records:
            lines.append("")
            lines.append(self._cyan("recent runs:"))
            for entry in records[-6:]:
                status = entry.get("status", "?")
                text = (
                    f"  {entry.get('run_id', '?'):<34}"
                    f" {entry.get('kind', '?'):<8} {status}"
                )
                lines.append(
                    text if status == "ok" or not self.color
                    else f"{_RED}{text}{_RESET}"
                )
        return "\n".join(lines)

    def _fleet_row(
        self, name: str, frame: Dict[str, Any], width: int
    ) -> str:
        if "error" in frame:
            text = f"  {name:<{width}}{'—':>12}  {'—':>10}  unreachable"
            return f"{_RED}{text}{_RESET}" if self.color else text
        rate = frame.get("sim_rate_hz", 0.0)
        rate_text = (
            f"{rate / 1000:.1f} kHz" if rate >= 1000 else f"{rate:.1f} Hz"
        )
        health = frame.get("health") or {}
        if not health.get("attached"):
            health_text = "-"
        elif health.get("violations"):
            health_text = f"{health['violations']} viol"
        else:
            health_text = "OK"
        alerts = frame.get("alerts")
        if not alerts:
            alert_text = "-"
        elif alerts.get("firing"):
            alert_text = f"{alerts['firing']} firing"
        elif alerts.get("pending"):
            alert_text = f"{alerts['pending']} pend"
        else:
            alert_text = "ok"
        util = max(frame.get("links", {}).values(), default=0.0)
        sampler = self._fleet_samplers.get(name)
        if sampler is None:
            sampler = self._fleet_samplers[name] = TimeSeriesSampler(
                1, window=self.sparkline_width
            )
        sampler.append("util", frame.get("cycle", 0), util)
        spark = sampler.sparkline(
            "util", width=min(self.sparkline_width, 24),
            ascii=not self.color,
        )
        row = (
            f"  {name:<{width}}{frame.get('cycle', 0):>12,}"
            f"  {rate_text:>10}  {health_text:<8} {alert_text:<9} {spark}"
        )
        if self.color and (
            health.get("violations") or (alerts and alerts.get("firing"))
        ):
            row = f"{_RED}{row}{_RESET}"
        return row

    # -- tiny style helpers ------------------------------------------------

    def _bold(self, text: str) -> str:
        return f"{_BOLD}{text}{_RESET}" if self.color else text

    def _dim(self, text: str) -> str:
        return f"{_DIM}{text}{_RESET}" if self.color else text

    def _cyan(self, text: str) -> str:
        return f"{_CYAN}{text}{_RESET}" if self.color else text


# -- remote attachment -----------------------------------------------------


def _retryable_attach_error(exc: BaseException) -> bool:
    """Errors worth retrying while a server warms up.

    Two transient shapes: HTTP 404 (server up, no frame folded yet) and
    connection-refused (``--serve`` not listening yet — ``multinoc top``
    launched before the run).  Anything else is a real failure.
    """
    if isinstance(exc, urllib.error.HTTPError):
        return exc.code == 404
    if isinstance(exc, ConnectionRefusedError):
        return True
    if isinstance(exc, urllib.error.URLError):
        return isinstance(exc.reason, ConnectionRefusedError)
    return False


def fetch_frame(
    url: str,
    *,
    timeout: float = 5.0,
    retries: int = 0,
    backoff: float = 0.2,
) -> Dict[str, Any]:
    """GET one latest frame from a telemetry server's ``/frame``.

    A 404 means the server is up but no frame has been folded yet, and
    connection-refused means it is not even listening yet (the run is
    still warming up); with ``retries`` > 0 both back off (``backoff``,
    doubling per attempt) and try again instead of failing — the
    hardened path ``multinoc top --url`` attaches through.
    """
    attempt = 0
    while True:
        try:
            with urllib.request.urlopen(
                url.rstrip("/") + "/frame", timeout=timeout
            ) as resp:
                return json.loads(resp.read())
        except (urllib.error.URLError, OSError) as exc:
            if not _retryable_attach_error(exc) or attempt >= retries:
                raise
            time.sleep(backoff * (2 ** attempt))
            attempt += 1


def fetch_runs(
    url: str, *, timeout: float = 5.0, limit: Optional[int] = None
) -> Dict[str, Any]:
    """GET the fleet document from a telemetry server's ``/runs``."""
    target = url.rstrip("/") + "/runs"
    if limit is not None:
        target += f"?limit={limit}"
    with urllib.request.urlopen(target, timeout=timeout) as resp:
        return json.loads(resp.read())


def stream_frames(
    url: str,
    *,
    limit: Optional[int] = None,
    timeout: float = 30.0,
    retries: int = 0,
    backoff: float = 0.2,
) -> Iterator[Dict[str, Any]]:
    """Yield frames from a telemetry server's JSONL ``/frames`` stream.

    Connecting retries connection-refused with the same bounded backoff
    as :func:`fetch_frame`, so a streaming dashboard can be launched
    before ``--serve`` is listening; once connected, frames block until
    the producer folds one.
    """
    target = url.rstrip("/") + "/frames?format=jsonl"
    if limit is not None:
        target += f"&limit={limit}"
    attempt = 0
    while True:
        try:
            resp = urllib.request.urlopen(target, timeout=timeout)
            break
        except (urllib.error.URLError, OSError) as exc:
            if not _retryable_attach_error(exc) or attempt >= retries:
                raise
            time.sleep(backoff * (2 ** attempt))
            attempt += 1
    with resp:
        for line in resp:
            line = line.strip()
            if line:
                yield json.loads(line)


def watch(
    url: str,
    *,
    once: bool = False,
    frames: Optional[int] = None,
    top: Optional[MeshTop] = None,
    retries: int = 6,
    backoff: float = 0.2,
) -> int:
    """Drive a :class:`MeshTop` from a remote server; returns exit code.

    When the server answers but has no frame yet, ``--once`` snapshots
    retry with a short backoff (~12s total at the defaults) rather than
    erroring; streaming connections already block until the first frame.
    """
    top = top if top is not None else MeshTop()
    try:
        if once:
            top.display(
                fetch_frame(url, retries=retries, backoff=backoff)
            )
            return 0
        for frame in stream_frames(
            url, limit=frames, retries=retries, backoff=backoff
        ):
            top.display(frame)
        return 0
    except KeyboardInterrupt:
        return 0
    except urllib.error.HTTPError as exc:
        if exc.code == 404:
            print(
                f"multinoc top: {url} is up but has no frames yet "
                f"(gave up after {retries} retries)",
                file=sys.stderr,
            )
        else:
            print(f"multinoc top: {url} answered {exc.code}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"multinoc top: cannot reach {url}: {exc}", file=sys.stderr)
        return 1


def watch_fleet(
    url: str,
    *,
    once: bool = False,
    frames: Optional[int] = None,
    interval: float = 1.0,
    top: Optional[MeshTop] = None,
) -> int:
    """Poll ``/runs`` and render the fleet table; returns exit code."""
    top = top if top is not None else MeshTop()
    rendered = 0
    try:
        while True:
            top.display_fleet(fetch_runs(url))
            rendered += 1
            if once or (frames is not None and rendered >= frames):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print(f"multinoc top: cannot reach {url}: {exc}", file=sys.stderr)
        return 1
