"""Kernel profiler: wall-clock time per component per phase.

The simulation kernel spends all its time in three places — component
``eval``, wire ``commit`` and watcher callbacks.  The profiler times
each, attributing ``eval`` cost to the *leaf* components that do real
work: composites whose ``eval`` is the default child-dispatch loop
(``MultiNoC``, ``Mesh``, ``HermesNetwork``) are transparently expanded,
so a profile of the full platform shows individual routers, processor
IPs and the serial IP rather than one opaque "multinoc" line.

**Fidelity note:** while a profiler is attached the kernel diverts to
its instrumented lock-step path (``Simulator._step_profiled``) so every
component can be timed individually — the quiescence fast path and its
idle fast-forward (typically a ~3.5x speedup on sparse workloads) are
suspended for the duration.  Results stay architecturally bit-identical;
only wall clock changes.  :meth:`KernelProfiler.attach` announces this
on stderr, and :meth:`KernelProfiler.detach` restores the fast path
mid-run.  For attribution *without* changing the execution mode, use the
sampling :class:`~repro.telemetry.hostperf.HostPerfProfiler` instead.

Usage::

    profiler = KernelProfiler().attach(sim)
    sim.step(10_000)
    print(profiler.report())
    profiler.detach()  # back to the quiescent fast path
"""

from __future__ import annotations

import sys
from time import perf_counter
from typing import Dict, List, Tuple

from ..sim.component import Component


class KernelProfiler:
    """Accumulates wall-clock seconds per (component, phase)."""

    def __init__(self, *, quiet: bool = False):
        #: (component name, phase) -> [seconds, calls]
        self.samples: Dict[Tuple[str, str], List[float]] = {}
        self.cycles = 0
        self.quiet = quiet
        self._sim = None

    def attach(self, sim) -> "KernelProfiler":
        """Install on *sim*; its step loop switches to the profiled path.

        This is a fidelity change for wall clock (never for architectural
        state): idle fast-forwarding is disabled while attached, so the
        run is exact-per-component but slower.  A one-line notice goes to
        stderr unless constructed with ``quiet=True``.
        """
        sim.profiler = self
        self._sim = sim
        if not self.quiet:
            print(
                "kernel profiler: forcing lock-step evaluation "
                "(idle fast-forward disabled while attached; "
                "detach() restores it)",
                file=sys.stderr,
            )
        return self

    def detach(self) -> None:
        """Restore the simulator's fast path; keeps accumulated samples.

        Safe to call when never attached, or after another profiler has
        replaced this one (only *this* profiler's installation is
        removed).
        """
        if self._sim is not None and self._sim.profiler is self:
            self._sim.profiler = None
        self._sim = None

    # -- timed phases (called by Simulator._step_profiled) ----------------

    def _add(self, name: str, phase: str, seconds: float) -> None:
        cell = self.samples.get((name, phase))
        if cell is None:
            self.samples[(name, phase)] = [seconds, 1]
        else:
            cell[0] += seconds
            cell[1] += 1

    def timed_eval(self, component: Component, cycle: int) -> None:
        # Expand composites that merely dispatch to children, so the
        # table shows routers and IPs instead of one top-level blob.
        if (
            type(component).eval is Component.eval
            and component._children
        ):
            for child in component._children:
                self.timed_eval(child, cycle)
            return
        t0 = perf_counter()
        component.eval(cycle)
        self._add(component.name, "eval", perf_counter() - t0)

    def timed_commit(self, component: Component) -> None:
        t0 = perf_counter()
        component.commit()
        self._add(component.name, "commit", perf_counter() - t0)

    def timed_watcher(self, fn, cycle: int) -> None:
        t0 = perf_counter()
        fn(cycle)
        name = getattr(fn, "__qualname__", None) or repr(fn)
        self._add(name, "watch", perf_counter() - t0)

    # -- reporting --------------------------------------------------------

    @property
    def total_seconds(self) -> float:
        return sum(seconds for seconds, _ in self.samples.values())

    def hot_components(self, top: int = 15) -> List[Tuple[str, str, float, int]]:
        """The *top* costliest (name, phase, seconds, calls) rows."""
        rows = [
            (name, phase, seconds, int(calls))
            for (name, phase), (seconds, calls) in self.samples.items()
        ]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows[:top]

    def report(self, top: int = 15) -> str:
        """Formatted hot-component table."""
        total = self.total_seconds or 1e-12
        lines = [
            f"kernel profile: {self.cycles} cycles, "
            f"{total * 1e3:.1f} ms measured "
            f"({self.cycles / total:,.0f} cycles/s)"
            if self.cycles
            else "kernel profile (no cycles measured)",
            f"{'component':<28} {'phase':<7} {'time':>10} {'share':>7} {'calls':>10}",
        ]
        for name, phase, seconds, calls in self.hot_components(top):
            lines.append(
                f"{name:<28} {phase:<7} {seconds * 1e3:>8.2f}ms "
                f"{seconds / total:>6.1%} {calls:>10}"
            )
        return "\n".join(lines)
