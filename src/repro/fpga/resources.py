"""FPGA resource-use accounting."""

from __future__ import annotations

from dataclasses import dataclass

from .device import FpgaDevice


@dataclass(frozen=True)
class ResourceUse:
    """Slices / LUTs / flip-flops / BlockRAMs consumed by a block."""

    slices: int = 0
    luts: int = 0
    ffs: int = 0
    brams: int = 0

    def __add__(self, other: "ResourceUse") -> "ResourceUse":
        return ResourceUse(
            self.slices + other.slices,
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.brams + other.brams,
        )

    def scaled(self, factor: float) -> "ResourceUse":
        """Uniformly scale logic resources (BlockRAMs scale too)."""
        return ResourceUse(
            round(self.slices * factor),
            round(self.luts * factor),
            round(self.ffs * factor),
            round(self.brams * factor),
        )

    def utilization(self, dev: FpgaDevice) -> dict:
        """Fractions of *dev* consumed, keyed by resource name."""
        return {
            "slices": self.slices / dev.slices,
            "luts": self.luts / dev.luts,
            "ffs": self.ffs / dev.ffs,
            "brams": self.brams / dev.brams if dev.brams else 0.0,
        }

    def fits(self, dev: FpgaDevice) -> bool:
        return (
            self.slices <= dev.slices
            and self.luts <= dev.luts
            and self.ffs <= dev.ffs
            and self.brams <= dev.brams
        )

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{self.slices} slices, {self.luts} LUTs, "
            f"{self.ffs} FFs, {self.brams} BRAMs"
        )
