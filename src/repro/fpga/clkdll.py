"""Clock DLL model (paper Section 3).

"The original clock of the prototyping board, 50MHz, was divided by
two, using a clkdll component."  The Spartan-II CLKDLL offers fixed
division/multiplication ratios; this model picks the division needed to
run at or just above a timing estimate, reproducing the paper's choice
of 25 MHz against a 21.23 MHz estimate (with the noted margin gamble).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Division ratios the Spartan-II CLKDLL supports (CLKDV_DIVIDE).
SUPPORTED_DIVISIONS = (1.5, 2, 2.5, 3, 4, 5, 8, 16)


@dataclass(frozen=True)
class ClockPlan:
    """A chosen board-clock division."""

    input_hz: float
    division: float
    meets_timing: bool

    @property
    def output_hz(self) -> float:
        return self.input_hz / self.division

    @property
    def output_mhz(self) -> float:
        return self.output_hz / 1e6


class ClkDll:
    """The board clock manager."""

    def __init__(self, input_hz: float = 50_000_000.0):
        self.input_hz = input_hz

    def divide(self, division: float) -> ClockPlan:
        if division != 1 and division not in SUPPORTED_DIVISIONS:
            raise ValueError(
                f"CLKDV_DIVIDE={division} unsupported; "
                f"choose from {SUPPORTED_DIVISIONS}"
            )
        return ClockPlan(self.input_hz, division, meets_timing=True)

    def plan_for(self, fmax_hz: float, allow_margin: float = 0.2) -> ClockPlan:
        """Choose the fastest usable clock, tool-estimate margin included.

        ``allow_margin`` reproduces the paper's pragmatism: the design was
        run at 25 MHz against a 21.23 MHz estimate (about 18% above), and
        "the circuit worked correctly" — static estimates are pessimistic.
        The fastest output within ``fmax * (1 + margin)`` wins; when it
        exceeds the raw estimate it is flagged ``meets_timing=False`` so
        callers can see the gamble.
        """
        candidates: List[Tuple[float, ClockPlan]] = []
        for division in (1,) + SUPPORTED_DIVISIONS:
            out = self.input_hz / division
            if out <= fmax_hz * (1.0 + allow_margin):
                candidates.append(
                    (
                        out,
                        ClockPlan(
                            self.input_hz, division, meets_timing=out <= fmax_hz
                        ),
                    )
                )
        if candidates:
            return max(candidates, key=lambda pair: pair[0])[1]
        raise ValueError(
            f"no supported division brings {self.input_hz / 1e6:.0f} MHz "
            f"within {(1 + allow_margin):.0%} of {fmax_hz / 1e6:.2f} MHz"
        )
