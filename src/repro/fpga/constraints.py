"""User-constraints (UCF) export for the floorplan.

The paper's Figure 7 floorplan was drawn in the Xilinx floorplanner and
fed to physical synthesis as area constraints.  This module produces
that artifact: a UCF file with one ``AREA_GROUP`` per IP block (slice
ranges derived from the placement), the period constraint from the
timing estimate, and the serial pad LOCs — i.e. everything the paper's
flow needed "to make the design fit in the restricted area".
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from .device import FpgaDevice
from .floorplan import Placement
from .timing import TimingReport


def _slice_range(
    device: FpgaDevice, x: int, y: int, w: int, h: int
) -> str:
    """CLB-rectangle to Spartan-II slice coordinates.

    Each CLB column holds two slice columns; rows map one to one.  The
    Spartan-II naming is ``SLICE_XnYm``.
    """
    x0 = x * device.SLICES_PER_CLB
    x1 = (x + w) * device.SLICES_PER_CLB - 1
    y0 = y
    y1 = y + h - 1
    return f"SLICE_X{x0}Y{y0}:SLICE_X{x1}Y{y1}"


def to_ucf(
    placement: Placement,
    timing: Optional[TimingReport] = None,
    clock_net: str = "clk",
    rxd_loc: str = "P88",
    txd_loc: str = "P87",
) -> str:
    """Render *placement* (and optionally *timing*) as UCF text."""
    device = placement.device
    lines: List[str] = [
        "# MultiNoC area constraints (generated; paper Figure 7 style)",
        f"# target device: {device.name}",
        "",
    ]
    if timing is not None:
        period = timing.critical_path_ns
        lines.append(f'NET "{clock_net}" TNM_NET = "{clock_net}";')
        lines.append(
            f'TIMESPEC "TS_{clock_net}" = PERIOD "{clock_net}" '
            f"{period:.2f} ns HIGH 50%;"
        )
        lines.append("")
    # serial pads sit at the die edge next to the serial IP's stripe
    lines.append(f'NET "rxd" LOC = "{rxd_loc}";')
    lines.append(f'NET "txd" LOC = "{txd_loc}";')
    lines.append("")
    for name in sorted(placement.regions):
        x, y, w, h = placement.regions[name]
        group = f"AG_{name}"
        lines.append(f'INST "{name}/*" AREA_GROUP = "{group}";')
        lines.append(
            f'AREA_GROUP "{group}" RANGE = '
            f"{_slice_range(device, x, y, w, h)};"
        )
        lines.append(f'AREA_GROUP "{group}" COMPRESSION = 0;')
        lines.append("")
    return "\n".join(lines)


def write_ucf(
    placement: Placement,
    path: Union[str, Path],
    timing: Optional[TimingReport] = None,
    **kwargs,
) -> Path:
    """Write the UCF next to the rest of the implementation artifacts."""
    path = Path(path)
    path.write_text(to_ucf(placement, timing, **kwargs))
    return path
