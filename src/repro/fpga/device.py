"""Spartan-IIe device library (paper Section 3, reference [11]).

Nominal resource counts for the XC2S..E family.  The CLB array is
``clb_rows x clb_cols`` with two slices (four LUT/FF pairs) per CLB;
BlockRAMs sit in dedicated columns at the left and right die edges, as
on the real Spartan-II floorplan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class FpgaDevice:
    """Static description of one FPGA part."""

    name: str
    clb_rows: int
    clb_cols: int
    brams: int

    SLICES_PER_CLB = 2
    LUTS_PER_SLICE = 2
    FFS_PER_SLICE = 2

    @property
    def clbs(self) -> int:
        return self.clb_rows * self.clb_cols

    @property
    def slices(self) -> int:
        return self.clbs * self.SLICES_PER_CLB

    @property
    def luts(self) -> int:
        return self.slices * self.LUTS_PER_SLICE

    @property
    def ffs(self) -> int:
        return self.slices * self.FFS_PER_SLICE

    @property
    def bram_bits(self) -> int:
        return self.brams * 4096  # 4 Kbit per Spartan-II BlockRAM

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{self.name}: {self.slices} slices, {self.luts} LUTs, "
            f"{self.brams} BlockRAMs ({self.clb_rows}x{self.clb_cols} CLBs)"
        )


#: The Spartan-IIE family, smallest to largest.
DEVICES: Dict[str, FpgaDevice] = {
    d.name: d
    for d in [
        FpgaDevice("XC2S50E", 16, 24, 8),
        FpgaDevice("XC2S100E", 20, 30, 10),
        FpgaDevice("XC2S150E", 24, 36, 12),
        FpgaDevice("XC2S200E", 28, 42, 14),
        FpgaDevice("XC2S300E", 32, 48, 16),
        FpgaDevice("XC2S400E", 40, 60, 40),
        FpgaDevice("XC2S600E", 48, 72, 72),
    ]
}

#: The paper's target part.
XC2S200E = DEVICES["XC2S200E"]


def device(name: str) -> FpgaDevice:
    """Look up a device by part name."""
    try:
        return DEVICES[name.upper()]
    except KeyError as exc:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(DEVICES)}"
        ) from exc
