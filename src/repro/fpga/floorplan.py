"""Floorplanning for near-full devices (paper Section 3, Figure 7).

"It is important to stress the value of floorplanning in designs using
most of the FPGA surface. ... The use of synthesis and implementation
options alone was not sufficient to make the design fit."

The model follows Figure 7's layout style: IP blocks occupy full-height
vertical stripes of the CLB array (with small blocks optionally sharing
a stripe), BlockRAM columns sit at the left/right die edges, and the
serial I/O pins sit at a fixed position on the die edge.  The
floorplanner is a simulated annealing search over stripe *orderings*,
minimising total half-perimeter wirelength of the system netlist plus
penalties for BRAM-hungry blocks far from the edges and pin-bound
blocks far from their pads.

This reproduces the paper's placement rationale:

* the NoC ends up in the middle (it talks to everybody),
* the serial IP lands next to its I/O pins,
* processors land at the die edges near the BlockRAM columns.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..system.config import SystemConfig
from .area import AreaModel
from .device import FpgaDevice, XC2S200E
from .resources import ResourceUse


@dataclass
class Block:
    """A placeable IP block."""

    name: str
    use: ResourceUse

    @property
    def clbs(self) -> int:
        return math.ceil(self.use.slices / 2)

    @property
    def needs_bram(self) -> bool:
        return self.use.brams > 0


@dataclass
class Net:
    """A two-terminal connection between blocks (or a block and a pad)."""

    a: str
    b: str  # block name or "pin:<x>" for a pad at CLB column x
    weight: float = 1.0


@dataclass
class Placement:
    """Result: per-block stripe geometry on the CLB grid."""

    device: FpgaDevice
    regions: Dict[str, Tuple[int, int, int, int]]  # name -> (x, y, w, h)
    fits: bool
    wirelength: float
    cost: float

    def centroid(self, name: str) -> Tuple[float, float]:
        x, y, w, h = self.regions[name]
        return (x + w / 2, y + h / 2)

    def render(self) -> str:
        """ASCII floorplan in the style of Figure 7."""
        cols = self.device.clb_cols
        rows = 12  # compressed vertical view
        grid = [["." for _ in range(cols)] for _ in range(rows)]
        for name, (x, y, w, h) in self.regions.items():
            tag = name[:1].upper() if not name.startswith("router") else "N"
            y0 = round(y * rows / self.device.clb_rows)
            y1 = max(y0 + 1, round((y + h) * rows / self.device.clb_rows))
            for gy in range(y0, min(rows, y1)):
                for gx in range(x, min(cols, x + w)):
                    grid[gy][gx] = tag
        return "\n".join("".join(row) for row in grid)


def system_netlist(config: SystemConfig, pin_column: int = 0) -> List[Net]:
    """Connectivity of a MultiNoC instance for wirelength evaluation."""
    nets: List[Net] = []
    topo = config.topology_plugin()

    def router_name(node) -> str:
        return f"router{topo.label(topo.node_router(tuple(node)))}"

    # fabric links (including torus wrap links, which are long wires)
    for addr, _port, nb in topo.builder_links():
        nets.append(
            Net(f"router{topo.label(addr)}", f"router{topo.label(nb)}", 2.0)
        )
    # local ports
    nets.append(Net("serial", router_name(config.serial), 2.0))
    for pid, addr in config.processors.items():
        nets.append(Net(f"proc{pid}", router_name(addr), 2.0))
    for i, addr in enumerate(config.memories):
        nets.append(Net(f"mem{i}", router_name(addr), 2.0))
    # serial pads
    nets.append(Net("serial", f"pin:{pin_column}", 4.0))
    return nets


def system_blocks(
    config: SystemConfig, model: Optional[AreaModel] = None
) -> List[Block]:
    """One block per IP, with the NoC routers merged into a single block
    (the paper floorplans "the NoC IP" as one region)."""
    model = model if model is not None else AreaModel()
    report = model.system(config)
    blocks = []
    noc_use = ResourceUse()
    for name, use in report.items.items():
        if name.startswith("router"):
            noc_use = noc_use + use
        elif name == "glue":
            continue  # distributed, not placed
        else:
            blocks.append(Block(name, use))
    blocks.append(Block("noc", noc_use))
    return blocks


def _netlist_for_blocks(nets: Sequence[Net]) -> List[Net]:
    """Collapse per-router nets onto the merged 'noc' block."""
    merged: List[Net] = []
    for net in nets:
        a = "noc" if net.a.startswith("router") else net.a
        b = "noc" if net.b.startswith("router") else net.b
        if a == b:
            continue
        merged.append(Net(a, b, net.weight))
    return merged


class Floorplanner:
    """Simulated-annealing stripe floorplanner."""

    def __init__(
        self,
        device: FpgaDevice = XC2S200E,
        model: Optional[AreaModel] = None,
        pin_column: int = 0,
        bram_penalty: float = 8.0,
    ):
        self.device = device
        self.model = model if model is not None else AreaModel()
        self.pin_column = pin_column
        self.bram_penalty = bram_penalty

    # -- layout evaluation ----------------------------------------------------

    def layout(self, blocks: Sequence[Block], order: Sequence[int]) -> Dict[
        str, Tuple[int, int, int, int]
    ]:
        """Continuous stripe layout.

        Blocks fill the CLB array column-major in *order*, each taking a
        contiguous run of CLBs; neighbouring blocks may share a boundary
        column (as real placements do), so no area is lost to stripe
        rounding and a 98%-full device still packs.
        """
        rows = self.device.clb_rows
        regions: Dict[str, Tuple[int, int, int, int]] = {}
        cell = 0
        for idx in order:
            block = blocks[idx]
            first, last = cell, cell + block.clbs - 1
            x0 = first // rows
            x1 = last // rows
            regions[block.name] = (x0, 0, x1 - x0 + 1, rows)
            cell = last + 1
        return regions

    def evaluate(
        self,
        blocks: Sequence[Block],
        order: Sequence[int],
        nets: Sequence[Net],
    ) -> Placement:
        regions = self.layout(blocks, order)
        cols_used = max(x + w for x, _, w, _ in regions.values())
        fits = sum(b.clbs for b in blocks) <= self.device.clbs

        def centroid_x(name: str) -> float:
            if name.startswith("pin:"):
                return float(name.split(":", 1)[1])
            x, _, w, _ = regions[name]
            return x + w / 2

        wirelength = sum(
            net.weight * abs(centroid_x(net.a) - centroid_x(net.b))
            for net in nets
        )
        # BlockRAM columns live at the die edges: BRAM users pay for
        # distance from the nearest edge.
        bram_cost = 0.0
        for block in blocks:
            if block.needs_bram:
                x, _, w, _ = regions[block.name]
                centre = x + w / 2
                bram_cost += min(centre, self.device.clb_cols - centre)
        overflow = max(0, cols_used - self.device.clb_cols)
        cost = wirelength + self.bram_penalty * bram_cost + 1000.0 * overflow
        return Placement(self.device, regions, fits, wirelength, cost)

    # -- search ------------------------------------------------------------------

    def random_placement(
        self, config: Optional[SystemConfig] = None, seed: int = 0
    ) -> Placement:
        """Baseline: a random stripe order (what "no floorplanning" does
        to wirelength, with tool luck standing in for the RNG)."""
        config = config if config is not None else SystemConfig.paper()
        blocks = system_blocks(config, self.model)
        nets = _netlist_for_blocks(system_netlist(config, self.pin_column))
        rng = random.Random(seed)
        order = list(range(len(blocks)))
        rng.shuffle(order)
        return self.evaluate(blocks, order, nets)

    def anneal(
        self,
        config: Optional[SystemConfig] = None,
        seed: int = 1,
        iterations: int = 4000,
        t0: float = 50.0,
        cooling: float = 0.998,
    ) -> Placement:
        """Simulated annealing over stripe orderings."""
        config = config if config is not None else SystemConfig.paper()
        blocks = system_blocks(config, self.model)
        nets = _netlist_for_blocks(system_netlist(config, self.pin_column))
        rng = random.Random(seed)
        order = list(range(len(blocks)))
        current = self.evaluate(blocks, order, nets)
        best = current
        best_order = list(order)
        temperature = t0
        for _ in range(iterations):
            i, j = rng.sample(range(len(order)), 2)
            order[i], order[j] = order[j], order[i]
            candidate = self.evaluate(blocks, order, nets)
            delta = candidate.cost - current.cost
            if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                current = candidate
                if current.cost < best.cost:
                    best = current
                    best_order = list(order)
            else:
                order[i], order[j] = order[j], order[i]  # revert
            temperature *= cooling
        return self.evaluate(blocks, best_order, nets)
