"""FPGA prototyping models: device library, area, floorplan, timing, clocking.

The paper's Section 3 numbers come from EDA tool reports; this package
reproduces them with calibrated analytical models (see the substitution
log in DESIGN.md).
"""

from .area import AreaModel, AreaReport, mesh_port_counts
from .constraints import to_ucf, write_ucf
from .clkdll import ClkDll, ClockPlan, SUPPORTED_DIVISIONS
from .device import DEVICES, FpgaDevice, XC2S200E, device
from .floorplan import Block, Floorplanner, Net, Placement, system_blocks, system_netlist
from .report import PrototypeReport, prototype
from .resources import ResourceUse
from .timing import TimingReport, analyze

__all__ = [
    "AreaModel",
    "AreaReport",
    "Block",
    "ClkDll",
    "ClockPlan",
    "DEVICES",
    "Floorplanner",
    "FpgaDevice",
    "Net",
    "Placement",
    "PrototypeReport",
    "ResourceUse",
    "SUPPORTED_DIVISIONS",
    "TimingReport",
    "XC2S200E",
    "analyze",
    "to_ucf",
    "write_ucf",
    "device",
    "mesh_port_counts",
    "prototype",
    "system_blocks",
    "system_netlist",
]
