"""Synthesis-flow reporting: one call that mimics the paper's Section 3.

:func:`prototype` runs the whole virtual implementation flow — area
estimation, floorplanning, timing analysis, clocking — for a MultiNoC
configuration and returns a structured report plus a printable summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..system.config import SystemConfig
from .area import AreaModel, AreaReport
from .clkdll import ClkDll, ClockPlan
from .device import FpgaDevice, XC2S200E
from .floorplan import Floorplanner, Placement, _netlist_for_blocks, system_netlist
from .timing import TimingReport, analyze


@dataclass
class PrototypeReport:
    """Everything the paper's Section 3 reports about the implementation."""

    device: FpgaDevice
    area: AreaReport
    placement: Placement
    timing: TimingReport
    clock: ClockPlan

    def summary(self) -> str:
        util = self.area.utilization(self.device)
        lines = [
            f"target device : {self.device}",
            f"utilisation   : {util['slices']:.0%} slices, "
            f"{util['luts']:.0%} LUTs, {util['brams']:.0%} BlockRAMs",
            f"floorplan     : {'fits' if self.placement.fits else 'DOES NOT FIT'}, "
            f"wirelength {self.placement.wirelength:.1f} CLB",
            f"timing        : {self.timing.fmax_mhz:.2f} MHz estimated "
            f"({self.timing.critical_path_ns:.2f} ns critical path)",
            f"clocking      : {self.clock.input_hz / 1e6:.0f} MHz / "
            f"{self.clock.division} = {self.clock.output_mhz:.0f} MHz"
            + ("" if self.clock.meets_timing else "  (above the estimate, as in the paper)"),
            "",
            "floorplan sketch (columns = CLB stripes):",
            self.placement.render(),
        ]
        return "\n".join(lines)


def prototype(
    config: Optional[SystemConfig] = None,
    device: FpgaDevice = XC2S200E,
    seed: int = 1,
    anneal_iterations: int = 4000,
) -> PrototypeReport:
    """Run the virtual implementation flow for *config* on *device*."""
    config = config if config is not None else SystemConfig.paper()
    model = AreaModel()
    area = model.system(config)
    planner = Floorplanner(device, model)
    placement = planner.anneal(config, seed=seed, iterations=anneal_iterations)
    from .floorplan import system_blocks  # local import to avoid cycle noise

    nets = _netlist_for_blocks(system_netlist(config, planner.pin_column))
    util = area.utilization(device)["slices"]
    timing = analyze(placement, nets, device, utilization=min(1.0, util))
    clock = ClkDll(50_000_000.0).plan_for(timing.fmax_hz)
    return PrototypeReport(device, area, placement, timing, clock)
