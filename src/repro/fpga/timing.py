"""Static timing estimation (paper Section 3).

"The frequency was reduced, due to the delay estimated by the timing
analysis tool, 21.23 MHz.  Despite the fact that the employed frequency
is higher (25 MHz), the circuit worked correctly."

The model is the classic logic-plus-interconnect decomposition: the
critical path runs through the slowest block's logic and the longest
inter-block route of the placement, and interconnect delay grows with
both distance and device congestion.  Constants are calibrated so the
annealed floorplan of the standard configuration reports ~21.2 MHz;
worse placements then credibly report lower frequencies, which is the
paper's argument for floorplanning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .device import FpgaDevice, XC2S200E
from .floorplan import Net, Placement

#: Internal logic delay of each block type, in nanoseconds (Spartan-IIE
#: -6 speed grade, multicycle paths already accounted for).
BLOCK_LOGIC_DELAY_NS: Dict[str, float] = {
    "proc": 27.0,  # R8 ALU + flags + register file write
    "noc": 16.0,  # arbitration + XY decode + buffer mux
    "mem": 9.0,  # BlockRAM access + bank mux
    "serial": 8.0,
}

#: Interconnect delay per CLB of Manhattan distance, ns.
WIRE_DELAY_NS_PER_CLB = 1.0

#: Congestion multiplier: routes through a nearly full device detour.
CONGESTION_FACTOR = 1.4

#: Fixed clock distribution + setup overhead, ns.
CLOCK_OVERHEAD_NS = 3.4


def _block_delay(name: str) -> float:
    for prefix, delay in BLOCK_LOGIC_DELAY_NS.items():
        if name.startswith(prefix):
            return delay
    return 6.0


@dataclass
class TimingReport:
    """Result of the static timing estimate."""

    critical_path_ns: float
    fmax_hz: float
    logic_ns: float
    route_ns: float
    critical_net: Tuple[str, str]

    @property
    def fmax_mhz(self) -> float:
        return self.fmax_hz / 1e6

    def meets(self, clock_hz: float) -> bool:
        return self.fmax_hz >= clock_hz

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"critical path {self.critical_path_ns:.2f} ns "
            f"({self.fmax_mhz:.2f} MHz) via {self.critical_net[0]}"
            f"->{self.critical_net[1]} "
            f"[logic {self.logic_ns:.1f} + route {self.route_ns:.1f}]"
        )


def analyze(
    placement: Placement,
    nets: Sequence[Net],
    device: Optional[FpgaDevice] = None,
    utilization: float = 0.98,
) -> TimingReport:
    """Estimate the critical path of a placed design.

    The path for each net is source logic delay + congestion-scaled wire
    delay; the slowest net sets Fmax.
    """
    device = device if device is not None else placement.device
    congestion = 1.0 + (CONGESTION_FACTOR - 1.0) * min(1.0, utilization)
    worst = None
    for net in nets:
        if net.b.startswith("pin:"):
            bx = float(net.b.split(":", 1)[1])
            by = device.clb_rows / 2
            b_delay = 0.0
        else:
            bx, by = placement.centroid(net.b)
            b_delay = 0.0
        ax, ay = placement.centroid(net.a)
        distance = abs(ax - bx) + abs(ay - by)
        logic = max(_block_delay(net.a), _block_delay(net.b) if not net.b.startswith("pin:") else 0.0)
        route = distance * WIRE_DELAY_NS_PER_CLB * congestion + b_delay
        total = logic + route + CLOCK_OVERHEAD_NS
        if worst is None or total > worst[0]:
            worst = (total, logic, route, (net.a, net.b))
    assert worst is not None, "empty netlist"
    total, logic, route, critical = worst
    return TimingReport(
        critical_path_ns=total,
        fmax_hz=1e9 / total,
        logic_ns=logic,
        route_ns=route,
        critical_net=critical,
    )
