"""Per-IP area model, calibrated against the paper's synthesis report.

Section 3: "The MultiNoC system uses 98% of the available slices and 78%
of the LUTs" of the XC2S200E.  The block-level constants below were
calibrated so the standard 2x2 configuration reproduces those two
figures exactly; the *formulas* (router cost growing with port count and
buffer bits, glue growing with IP count) then let the scaling and
buffer-depth experiments extrapolate credibly.

The router cost model follows the Hermes structure: a per-port share
(input controller, output mux tree) plus the buffer flip-flops
(``depth x flit_bits`` per port) plus the centralised control logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..noc.topology import Topology, parse_topology
from ..system.config import SystemConfig
from .device import FpgaDevice
from .resources import ResourceUse


def mesh_port_counts(width: int, height: int) -> List[int]:
    """Number of instantiated ports (neighbours + local) per router."""
    counts = []
    for y in range(height):
        for x in range(width):
            neighbours = sum(
                1
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
                if 0 <= x + dx < width and 0 <= y + dy < height
            )
            counts.append(neighbours + 1)
    return counts


def topology_port_counts(topology) -> List[int]:
    """Instantiated ports per router for any topology plugin or spec.

    Torus routers pay for their wrap-link ports; concentrated-mesh
    routers pay for each of their C local ports.
    """
    return parse_topology(topology).port_counts()


@dataclass
class AreaModel:
    """Block-level resource estimator.

    Every constant is a field so ablations can perturb them; the defaults
    are the calibrated values.
    """

    # Hermes router: base control + per-port logic + buffer bits.
    router_base_slices: int = 20
    router_port_slices: int = 16
    router_buffer_slices_per_bit: float = 1.0
    router_base_luts: int = 30
    router_port_luts: int = 32
    router_buffer_luts_per_bit: float = 0.5

    # Fixed-size blocks (slices, luts, ffs).
    r8_cost: Tuple[int, int, int] = (640, 1150, 330)
    proc_ctrl_cost: Tuple[int, int, int] = (90, 130, 60)
    mem_ctrl_cost: Tuple[int, int, int] = (60, 80, 25)
    serial_cost: Tuple[int, int, int] = (170, 230, 90)

    # Top-level glue per system, growing with IP count.
    glue_base_slices: int = 7
    glue_per_ip_slices: int = 6
    glue_base_luts: int = 11
    glue_per_ip_luts: int = 7

    brams_per_memory: int = 4

    # -- individual blocks ---------------------------------------------------

    def router(
        self, ports: int = 5, buffer_depth: int = 2, flit_bits: int = 8
    ) -> ResourceUse:
        buffer_bits = ports * buffer_depth * flit_bits
        slices = round(
            self.router_base_slices
            + self.router_port_slices * ports
            + self.router_buffer_slices_per_bit * buffer_bits
        )
        luts = round(
            self.router_base_luts
            + self.router_port_luts * ports
            + self.router_buffer_luts_per_bit * buffer_bits
        )
        ffs = buffer_bits + 6 * ports + 12
        return ResourceUse(slices, luts, ffs, 0)

    def r8(self) -> ResourceUse:
        return ResourceUse(*self.r8_cost, 0)

    def processor_control(self) -> ResourceUse:
        return ResourceUse(*self.proc_ctrl_cost, 0)

    def memory_ip(self) -> ResourceUse:
        s, l, f = self.mem_ctrl_cost
        return ResourceUse(s, l, f, self.brams_per_memory)

    def processor_ip(self) -> ResourceUse:
        """R8 + local Memory IP + control logic (paper Figure 5)."""
        return self.r8() + self.processor_control() + self.memory_ip()

    def serial_ip(self) -> ResourceUse:
        return ResourceUse(*self.serial_cost, 0)

    def glue(self, n_ips: int) -> ResourceUse:
        return ResourceUse(
            self.glue_base_slices + self.glue_per_ip_slices * n_ips,
            self.glue_base_luts + self.glue_per_ip_luts * n_ips,
            4 * n_ips,
            0,
        )

    # -- whole systems -------------------------------------------------------------

    def system(self, config: Optional[SystemConfig] = None) -> "AreaReport":
        """Itemised area of a MultiNoC instance."""
        config = config if config is not None else SystemConfig.paper()
        topo = config.topology_plugin()
        width, height = topo.width, topo.height
        items: Dict[str, ResourceUse] = {}
        port_counts = topo.port_counts()
        for i, ports in enumerate(port_counts):
            addr = (i % width, i // width)
            items[f"router{topo.label(addr)}"] = self.router(
                ports, config.buffer_depth
            )
        for pid in sorted(config.processors):
            items[f"proc{pid}"] = self.processor_ip()
        for i in range(len(config.memories)):
            items[f"mem{i}"] = self.memory_ip()
        items["serial"] = self.serial_ip()
        n_ips = 1 + len(config.processors) + len(config.memories)
        items["glue"] = self.glue(n_ips)
        return AreaReport(items)

    def noc_fraction(
        self,
        mesh,
        buffer_depth: int = 2,
        flit_bits: int = 8,
        ip_area_scale: float = 1.0,
    ) -> float:
        """Fraction of total logic area spent on the NoC.

        *mesh* is a ``(width, height)`` tuple, a topology spec string
        ("torus:8x8", "cmesh:4x4x2"), or a
        :class:`~repro.noc.topology.Topology`.  *ip_area_scale* models
        the paper's argument that "when more area is available, the IPs
        connected to the NoC can increase in area and functionality.
        The router surface will remain constant": scale=1 keeps today's
        processor IP, larger values model richer IPs on bigger devices.
        """
        topo = parse_topology(mesh)
        noc = sum(
            self.router(p, buffer_depth, flit_bits).slices
            for p in topo.port_counts()
        )
        # every attachment node but the serial one carries a processor IP
        ip = self.processor_ip().scaled(ip_area_scale).slices * (
            len(topo.nodes()) - 1
        ) + self.serial_ip().slices
        return noc / (noc + ip)


@dataclass
class AreaReport:
    """Itemised resource use with a total and utilisation helpers."""

    items: Dict[str, ResourceUse] = field(default_factory=dict)

    @property
    def total(self) -> ResourceUse:
        total = ResourceUse()
        for use in self.items.values():
            total = total + use
        return total

    def utilization(self, dev: FpgaDevice) -> dict:
        return self.total.utilization(dev)

    def noc_slices(self) -> int:
        return sum(
            use.slices for name, use in self.items.items() if name.startswith("router")
        )

    def noc_fraction(self) -> float:
        return self.noc_slices() / self.total.slices

    def table(self, dev: Optional[FpgaDevice] = None) -> str:
        """Synthesis-report-style utilisation table."""
        lines = [
            f"{'block':<12} {'slices':>7} {'LUTs':>7} {'FFs':>7} {'BRAMs':>6}"
        ]
        for name in sorted(self.items):
            u = self.items[name]
            lines.append(
                f"{name:<12} {u.slices:>7} {u.luts:>7} {u.ffs:>7} {u.brams:>6}"
            )
        t = self.total
        lines.append(
            f"{'TOTAL':<12} {t.slices:>7} {t.luts:>7} {t.ffs:>7} {t.brams:>6}"
        )
        if dev is not None:
            util = self.utilization(dev)
            lines.append(
                f"{dev.name}: {util['slices']:.0%} slices, "
                f"{util['luts']:.0%} LUTs, {util['brams']:.0%} BRAMs"
            )
        return "\n".join(lines)
