"""The R8 soft-core processor: ISA, assembler, simulators, debugger.

Two execution models are provided and kept equivalent by differential
tests: :class:`R8Simulator` (fast, functional, with debugging aids —
the paper's "R8 Simulator" tool) and :class:`R8Cpu` (cycle-accurate
multicycle FSM used inside the MultiNoC system model).
"""

from . import alu, isa, semantics
from .assembler import AsmError, Assembler, ObjectCode, assemble
from .bus import LocalBus, MemoryBus, Transaction
from .cpu import R8Cpu
from .debugger import Debugger, DebuggerError
from .disassembler import disassemble, disassemble_word, format_instruction
from .simulator import (
    IO_ADDRESS,
    NOTIFY_ADDRESS,
    WAIT_ADDRESS,
    R8Simulator,
    SimulatorError,
)
from .state import N_REGS, RESET_SP, R8State

__all__ = [
    "AsmError",
    "Assembler",
    "IO_ADDRESS",
    "LocalBus",
    "MemoryBus",
    "N_REGS",
    "NOTIFY_ADDRESS",
    "ObjectCode",
    "Debugger",
    "DebuggerError",
    "R8Cpu",
    "R8Simulator",
    "R8State",
    "RESET_SP",
    "SimulatorError",
    "Transaction",
    "WAIT_ADDRESS",
    "alu",
    "assemble",
    "disassemble",
    "disassemble_word",
    "format_instruction",
    "isa",
    "semantics",
]
