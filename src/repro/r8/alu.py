"""R8 arithmetic-logic unit with N/Z/C/V flag semantics.

Shared by both processor models (the cycle-accurate
:class:`~repro.r8.cpu.R8Cpu` and the functional
:class:`~repro.r8.simulator.R8Simulator`), so the two cannot diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

MASK16 = 0xFFFF
SIGN16 = 0x8000


@dataclass
class Flags:
    """The four R8 status flags."""

    n: bool = False
    z: bool = False
    c: bool = False
    v: bool = False

    def copy(self) -> "Flags":
        return Flags(self.n, self.z, self.c, self.v)

    def as_tuple(self):
        return (self.n, self.z, self.c, self.v)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return "".join(
            ch if val else "-"
            for ch, val in zip("nzcv", (self.n, self.z, self.c, self.v))
        )


def _set_nz(flags: Flags, result: int) -> None:
    flags.n = bool(result & SIGN16)
    flags.z = result == 0


def add(a: int, b: int, flags: Flags, carry_in: int = 0) -> int:
    """16-bit addition; sets all four flags."""
    raw = a + b + carry_in
    result = raw & MASK16
    flags.c = raw > MASK16
    # Signed overflow: operands share a sign the result lacks.
    flags.v = bool(~(a ^ b) & (a ^ result) & SIGN16)
    _set_nz(flags, result)
    return result


def sub(a: int, b: int, flags: Flags, borrow_in: int = 0) -> int:
    """16-bit subtraction; C holds the *borrow* (1 when a < b + borrow)."""
    raw = a - b - borrow_in
    result = raw & MASK16
    flags.c = raw < 0
    flags.v = bool((a ^ b) & (a ^ result) & SIGN16)
    _set_nz(flags, result)
    return result


def logic_and(a: int, b: int, flags: Flags) -> int:
    result = a & b
    _set_nz(flags, result)
    return result


def logic_or(a: int, b: int, flags: Flags) -> int:
    result = a | b
    _set_nz(flags, result)
    return result


def logic_xor(a: int, b: int, flags: Flags) -> int:
    result = a ^ b
    _set_nz(flags, result)
    return result


def logic_not(a: int, flags: Flags) -> int:
    result = (~a) & MASK16
    _set_nz(flags, result)
    return result


def shift_left(a: int, fill: int, flags: Flags) -> int:
    """Shift left one bit, inserting *fill*; C gets the shifted-out MSB."""
    flags.c = bool(a & SIGN16)
    result = ((a << 1) | fill) & MASK16
    _set_nz(flags, result)
    return result


def shift_right(a: int, fill: int, flags: Flags) -> int:
    """Shift right one bit, inserting *fill* at the MSB; C gets the old LSB."""
    flags.c = bool(a & 1)
    result = (a >> 1) | (SIGN16 if fill else 0)
    _set_nz(flags, result)
    return result
