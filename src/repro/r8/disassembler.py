"""R8 disassembler: 16-bit words back to assembly text."""

from __future__ import annotations

from typing import Iterable, List

from . import isa


def disassemble_word(word: int) -> str:
    """Render one instruction word as assembly text.

    Words that do not decode are rendered as ``.word 0xhhhh`` so a full
    memory image (code mixed with data) can always be dumped.
    """
    try:
        instr = isa.decode(word)
    except isa.DecodeError:
        return f".word {word:#06x}"
    return format_instruction(instr)


def format_instruction(instr: isa.Instruction) -> str:
    """Canonical assembly text of a decoded instruction."""
    spec = instr.spec
    m = spec.mnemonic
    if spec.fmt == isa.Fmt.RRR:
        return f"{m} R{instr.rt}, R{instr.rs1}, R{instr.rs2}"
    if spec.fmt == isa.Fmt.RI:
        return f"{m} R{instr.rt}, {instr.imm:#04x}"
    if spec.fmt == isa.Fmt.RR:
        if m in ("PUSH", "LDSP"):
            return f"{m} R{instr.rs1}"
        if m in ("POP", "RDSP"):
            return f"{m} R{instr.rt}"
        return f"{m} R{instr.rt}, R{instr.rs1}"
    if spec.fmt == isa.Fmt.JR:
        return f"{m} R{instr.rs1}"
    if spec.fmt == isa.Fmt.JD:
        return f"{m} {instr.disp:+d}"
    if spec.fmt == isa.Fmt.SUBR:
        if m == "JSRR":
            return f"{m} R{instr.rs1}"
        if m == "JSRD":
            return f"{m} {instr.disp:+d}"
        return m
    return m


def disassemble(words: Iterable[int], base: int = 0) -> List[str]:
    """Disassemble a word sequence into ``addr  word  text`` lines."""
    lines = []
    for offset, word in enumerate(words):
        lines.append(f"{base + offset:04x}  {word:04x}  {disassemble_word(word)}")
    return lines
