"""The stand-alone R8 Simulator.

The paper's flow starts with "Simulate the Assembly Code: The R8
Simulator environment allows writing, simulating and debugging assembly
code, generating automatically the object code".  This module is that
tool: a fast functional instruction-set simulator with cycle accounting
(using the same CPI table as the hardware model), printf/scanf hooks and
debugging facilities (breakpoints, watchpoints, single-step, tracing).

As the paper notes, the original tool "is not able to simulate a
multiprocessed application" — for that, use the full
:class:`repro.system.MultiNoC` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from . import isa, semantics
from .alu import MASK16
from .disassembler import format_instruction
from .state import R8State

#: Memory-mapped addresses implemented by the Processor IP control logic
#: (paper Section 2.4).  The stand-alone simulator honours the I/O address
#: so single-processor programs with printf/scanf run unmodified; wait and
#: notify need the real multiprocessor system.
IO_ADDRESS = 0xFFFF
WAIT_ADDRESS = 0xFFFE
NOTIFY_ADDRESS = 0xFFFD


class SimulatorError(Exception):
    """Raised on invalid execution (bad opcode, unmapped access...)."""


@dataclass
class ExecutionTrace:
    """One retired instruction, for the debugger's trace window."""

    pc: int
    text: str
    state_after: str


class R8Simulator:
    """Functional R8 simulator with debugging support.

    Parameters
    ----------
    memory_words:
        Local memory size (1K 16-bit words on MultiNoC).
    on_printf / on_scanf:
        I/O hooks: a store to FFFF calls ``on_printf(value)``; a load from
        FFFF returns ``on_scanf()``.
    """

    def __init__(
        self,
        memory_words: int = 1024,
        on_printf: Optional[Callable[[int], None]] = None,
        on_scanf: Optional[Callable[[], int]] = None,
    ):
        self.memory: List[int] = [0] * memory_words
        self.memory_words = memory_words
        self.state = R8State()
        self.cycles = 0
        self.instructions = 0
        self.on_printf = on_printf
        self.on_scanf = on_scanf
        self.printed: List[int] = []
        self.breakpoints: Set[int] = set()
        self.watchpoints: Set[int] = set()
        self.watch_hits: List[tuple] = []
        self.trace_enabled = False
        self.trace: List[ExecutionTrace] = []
        self.mnemonic_counts: Dict[str, int] = {}

    # -- program loading -----------------------------------------------------

    def load(self, obj_or_words, base: int = 0) -> None:
        """Load an :class:`~repro.r8.assembler.ObjectCode` or word list."""
        if hasattr(obj_or_words, "word_records"):
            for addr, word in obj_or_words.word_records():
                self._check_addr(addr)
                self.memory[addr] = word & MASK16
        else:
            for i, word in enumerate(obj_or_words):
                self._check_addr(base + i)
                self.memory[base + i] = word & MASK16

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.memory_words:
            raise SimulatorError(
                f"address {addr:#06x} outside the {self.memory_words}-word memory"
            )

    # -- memory access with I/O mapping -----------------------------------------

    def _read(self, addr: int) -> int:
        if addr == IO_ADDRESS:
            if self.on_scanf is None:
                raise SimulatorError("scanf executed but no on_scanf hook set")
            return self.on_scanf() & MASK16
        if addr in (WAIT_ADDRESS, NOTIFY_ADDRESS):
            raise SimulatorError(
                "wait/notify need the multiprocessor system "
                "(repro.system.MultiNoC); the R8 Simulator is single-core"
            )
        self._check_addr(addr)
        if addr in self.watchpoints:
            self.watch_hits.append(("read", addr, self.memory[addr], self.state.pc))
        return self.memory[addr]

    def _write(self, addr: int, value: int) -> None:
        if addr == IO_ADDRESS:
            value &= MASK16
            self.printed.append(value)
            if self.on_printf is not None:
                self.on_printf(value)
            return
        if addr in (WAIT_ADDRESS, NOTIFY_ADDRESS):
            raise SimulatorError(
                "wait/notify need the multiprocessor system "
                "(repro.system.MultiNoC); the R8 Simulator is single-core"
            )
        self._check_addr(addr)
        if addr in self.watchpoints:
            self.watch_hits.append(("write", addr, value & MASK16, self.state.pc))
        self.memory[addr] = value & MASK16

    # -- execution ----------------------------------------------------------------

    def activate(self) -> None:
        """Start execution at address 0, like the activate-processor packet."""
        self.state.activate()

    def step(self) -> Optional[isa.Instruction]:
        """Execute one instruction; returns it (or None when halted)."""
        if self.state.halted:
            return None
        pc = self.state.pc
        self._check_addr(pc)
        word = self.memory[pc]
        try:
            instr = isa.decode(word)
        except isa.DecodeError as exc:
            raise SimulatorError(f"at {pc:#06x}: {exc}") from exc
        self.state.pc = (pc + 1) & MASK16
        semantics.execute(self.state, instr, self._read, self._write)
        self.cycles += instr.spec.cycles
        self.instructions += 1
        name = instr.mnemonic
        self.mnemonic_counts[name] = self.mnemonic_counts.get(name, 0) + 1
        if self.trace_enabled:
            self.trace.append(
                ExecutionTrace(pc, format_instruction(instr), str(self.state))
            )
        return instr

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until HALT or a breakpoint; returns instructions executed.

        Raises :class:`SimulatorError` if the budget is exhausted, which
        catches runaway programs in tests.
        """
        executed = 0
        while not self.state.halted:
            if executed >= max_instructions:
                raise SimulatorError(
                    f"program did not halt within {max_instructions} instructions"
                )
            self.step()
            executed += 1
            if self.state.pc in self.breakpoints and not self.state.halted:
                break
        return executed

    def cpi(self) -> float:
        """Average clocks per instruction so far (paper: between 2 and 4)."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    # -- debugging views ---------------------------------------------------------

    def dump_memory(self, start: int, count: int) -> List[int]:
        self._check_addr(start)
        self._check_addr(start + count - 1)
        return self.memory[start : start + count]

    def dump_registers(self) -> Dict[str, int]:
        out = {f"R{i}": v for i, v in enumerate(self.state.regs)}
        out["PC"] = self.state.pc
        out["SP"] = self.state.sp
        return out
