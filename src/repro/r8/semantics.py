"""Functional (single-call) execution semantics for R8 instructions.

Used by the instruction-set simulator; the cycle-accurate
:class:`~repro.r8.cpu.R8Cpu` implements the same semantics split across
FSM states, and the differential tests in ``tests/test_r8_differential.py``
keep the two in lock-step.
"""

from __future__ import annotations

from typing import Callable

from . import alu, isa
from .alu import MASK16
from .state import R8State

ReadFn = Callable[[int], int]
WriteFn = Callable[[int, int], None]


def condition_met(state: R8State, cond: int) -> bool:
    """Evaluate a jump-group condition nibble against the flags."""
    flag = isa.COND_FLAG[cond]
    if not flag:
        return True
    return getattr(state.flags, flag)


def execute(
    state: R8State,
    instr: isa.Instruction,
    read: ReadFn,
    write: WriteFn,
) -> None:
    """Execute one decoded instruction against *state*.

    ``state.pc`` must already point at the *next* instruction (the
    hardware increments PC during fetch), which is what displacement
    jumps and JSR return addresses are relative to.
    """
    spec = instr.spec
    m = spec.mnemonic
    regs = state.regs
    flags = state.flags

    if m == "ADD":
        state.set_reg(instr.rt, alu.add(regs[instr.rs1], regs[instr.rs2], flags))
    elif m == "ADDC":
        state.set_reg(
            instr.rt,
            alu.add(regs[instr.rs1], regs[instr.rs2], flags, carry_in=int(flags.c)),
        )
    elif m == "SUB":
        state.set_reg(instr.rt, alu.sub(regs[instr.rs1], regs[instr.rs2], flags))
    elif m == "SUBC":
        state.set_reg(
            instr.rt,
            alu.sub(regs[instr.rs1], regs[instr.rs2], flags, borrow_in=int(flags.c)),
        )
    elif m == "AND":
        state.set_reg(instr.rt, alu.logic_and(regs[instr.rs1], regs[instr.rs2], flags))
    elif m == "OR":
        state.set_reg(instr.rt, alu.logic_or(regs[instr.rs1], regs[instr.rs2], flags))
    elif m == "XOR":
        state.set_reg(instr.rt, alu.logic_xor(regs[instr.rs1], regs[instr.rs2], flags))
    elif m == "LD":
        addr = (regs[instr.rs1] + regs[instr.rs2]) & MASK16
        state.set_reg(instr.rt, read(addr))
    elif m == "ST":
        addr = (regs[instr.rs1] + regs[instr.rs2]) & MASK16
        write(addr, regs[instr.rt])
    elif m == "LDL":
        state.set_reg(instr.rt, (regs[instr.rt] & 0xFF00) | instr.imm)
    elif m == "LDH":
        state.set_reg(instr.rt, (instr.imm << 8) | (regs[instr.rt] & 0x00FF))
    elif m == "NOT":
        state.set_reg(instr.rt, alu.logic_not(regs[instr.rs1], flags))
    elif m == "SL0":
        state.set_reg(instr.rt, alu.shift_left(regs[instr.rs1], 0, flags))
    elif m == "SL1":
        state.set_reg(instr.rt, alu.shift_left(regs[instr.rs1], 1, flags))
    elif m == "SR0":
        state.set_reg(instr.rt, alu.shift_right(regs[instr.rs1], 0, flags))
    elif m == "SR1":
        state.set_reg(instr.rt, alu.shift_right(regs[instr.rs1], 1, flags))
    elif m == "MOV":
        state.set_reg(instr.rt, regs[instr.rs1])
    elif m == "PUSH":
        write(state.sp, regs[instr.rs1])
        state.sp = (state.sp - 1) & MASK16
    elif m == "POP":
        state.sp = (state.sp + 1) & MASK16
        state.set_reg(instr.rt, read(state.sp))
    elif m == "LDSP":
        state.sp = regs[instr.rs1]
    elif m == "RDSP":
        state.set_reg(instr.rt, state.sp)
    elif m in ("JMPR", "JMPNR", "JMPZR", "JMPCR", "JMPVR"):
        if condition_met(state, spec.sub):
            state.pc = regs[instr.rs1]
    elif m in ("JMPD", "JMPND", "JMPZD", "JMPCD", "JMPVD"):
        if condition_met(state, spec.sub):
            state.pc = (state.pc + instr.disp) & MASK16
    elif m == "JSRR":
        write(state.sp, state.pc)
        state.sp = (state.sp - 1) & MASK16
        state.pc = regs[instr.rs1]
    elif m == "JSRD":
        write(state.sp, state.pc)
        state.sp = (state.sp - 1) & MASK16
        state.pc = (state.pc + instr.disp) & MASK16
    elif m == "RTS":
        state.sp = (state.sp + 1) & MASK16
        state.pc = read(state.sp)
    elif m == "NOP":
        pass
    elif m == "HALT":
        state.halted = True
    else:  # pragma: no cover - the spec table is closed
        raise NotImplementedError(m)
