"""Command-driven debugger for the R8 Simulator.

The paper's flow starts in "The R8 Simulator environment [which] allows
writing, simulating and debugging assembly code" (Section 4), and the
conclusions pitch MultiNoC as a teaching platform.  This module is the
debugging half: a textual command interface over
:class:`~repro.r8.simulator.R8Simulator` suitable for scripting, tests
and interactive loops.

Commands (as accepted by :meth:`Debugger.execute`)::

    load <file>          load an object file
    step [n]             execute n instructions (default 1)
    run                  run until HALT or a breakpoint
    regs                 show registers, PC, SP, flags
    mem <addr> [n]       dump n memory words (default 8)
    dis <addr> [n]       disassemble n words (default 8)
    break <addr>         set a breakpoint (label or address)
    unbreak <addr>       clear a breakpoint
    watch <addr>         set a memory watchpoint
    unwatch <addr>       clear a memory watchpoint
    info                 list breakpoints, watchpoints and symbols
    reset                reset processor state
    where                current PC with disassembly context
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .assembler import ObjectCode
from .disassembler import disassemble
from .simulator import R8Simulator


class DebuggerError(Exception):
    """Bad command or argument."""


class Debugger:
    """Scriptable debugger wrapping one :class:`R8Simulator`."""

    def __init__(self, simulator: Optional[R8Simulator] = None):
        self.sim = simulator if simulator is not None else R8Simulator()
        self.symbols: Dict[str, int] = {}
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "step": self._cmd_step,
            "run": self._cmd_run,
            "regs": self._cmd_regs,
            "mem": self._cmd_mem,
            "dis": self._cmd_dis,
            "break": self._cmd_break,
            "unbreak": self._cmd_unbreak,
            "watch": self._cmd_watch,
            "unwatch": self._cmd_unwatch,
            "info": self._cmd_info,
            "reset": self._cmd_reset,
            "where": self._cmd_where,
        }

    # -- program management ---------------------------------------------------

    def load_object(self, obj: ObjectCode) -> None:
        """Load object code and import its symbol table."""
        self.sim.load(obj)
        self.symbols.update(obj.symbols)
        self.sim.activate()

    def resolve(self, token: str) -> int:
        """An address argument: symbol name, hex (0x...) or decimal."""
        if token in self.symbols:
            return self.symbols[token]
        try:
            return int(token, 0)
        except ValueError as exc:
            raise DebuggerError(
                f"not an address or known symbol: {token!r}"
            ) from exc

    def _symbol_at(self, addr: int) -> str:
        names = [name for name, value in self.symbols.items() if value == addr]
        return f" <{','.join(sorted(names))}>" if names else ""

    # -- command dispatch -------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns its textual output."""
        parts = line.split()
        if not parts:
            return ""
        name, args = parts[0].lower(), parts[1:]
        handler = self._commands.get(name)
        if handler is None:
            raise DebuggerError(
                f"unknown command {name!r}; known: {sorted(self._commands)}"
            )
        return handler(args)

    def run_script(self, script: str) -> List[str]:
        """Execute a newline-separated command script."""
        outputs = []
        for line in script.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                outputs.append(self.execute(line))
        return outputs

    # -- commands ------------------------------------------------------------------

    def _cmd_step(self, args: List[str]) -> str:
        count = int(args[0]) if args else 1
        lines = []
        for _ in range(count):
            if self.sim.state.halted:
                lines.append("processor halted")
                break
            pc = self.sim.state.pc
            instr = self.sim.step()
            lines.append(
                f"{pc:04x}{self._symbol_at(pc)}: "
                f"{instr.mnemonic if instr else '?'}  -> {self.sim.state}"
            )
        return "\n".join(lines)

    def _cmd_run(self, args: List[str]) -> str:
        executed = self.sim.run(
            max_instructions=int(args[0]) if args else 1_000_000
        )
        if self.sim.state.halted:
            status = "HALT"
        else:
            status = f"breakpoint at {self.sim.state.pc:04x}"
        return (
            f"ran {executed} instructions ({self.sim.cycles} cycles, "
            f"CPI {self.sim.cpi():.2f}): {status}"
        )

    def _cmd_regs(self, args: List[str]) -> str:
        return str(self.sim.state)

    def _cmd_mem(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("mem needs an address")
        start = self.resolve(args[0])
        count = int(args[1]) if len(args) > 1 else 8
        words = self.sim.dump_memory(start, count)
        lines = []
        for i in range(0, len(words), 8):
            chunk = words[i : i + 8]
            text = " ".join(f"{w:04x}" for w in chunk)
            lines.append(f"{start + i:04x}: {text}")
        return "\n".join(lines)

    def _cmd_dis(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("dis needs an address")
        start = self.resolve(args[0])
        count = int(args[1]) if len(args) > 1 else 8
        words = self.sim.dump_memory(start, count)
        return "\n".join(disassemble(words, base=start))

    def _cmd_break(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("break needs an address")
        addr = self.resolve(args[0])
        self.sim.breakpoints.add(addr)
        return f"breakpoint set at {addr:04x}{self._symbol_at(addr)}"

    def _cmd_unbreak(self, args: List[str]) -> str:
        addr = self.resolve(args[0])
        self.sim.breakpoints.discard(addr)
        return f"breakpoint cleared at {addr:04x}"

    def _cmd_watch(self, args: List[str]) -> str:
        addr = self.resolve(args[0])
        self.sim.watchpoints.add(addr)
        return f"watchpoint set at {addr:04x}"

    def _cmd_unwatch(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("unwatch needs an address")
        addr = self.resolve(args[0])
        self.sim.watchpoints.discard(addr)
        return f"watchpoint cleared at {addr:04x}"

    def _cmd_info(self, args: List[str]) -> str:
        lines = []
        if self.sim.breakpoints:
            lines.append("breakpoints:")
            lines += [
                f"  {addr:04x}{self._symbol_at(addr)}"
                for addr in sorted(self.sim.breakpoints)
            ]
        else:
            lines.append("breakpoints: none")
        if self.sim.watchpoints:
            lines.append("watchpoints:")
            lines += [
                f"  {addr:04x}{self._symbol_at(addr)}"
                for addr in sorted(self.sim.watchpoints)
            ]
        else:
            lines.append("watchpoints: none")
        if self.symbols:
            lines.append("symbols:")
            lines += [
                f"  {name} = {addr:04x}"
                for name, addr in sorted(self.symbols.items())
            ]
        else:
            lines.append("symbols: none")
        return "\n".join(lines)

    def _cmd_reset(self, args: List[str]) -> str:
        self.sim.state.reset()
        self.sim.state.activate()
        self.sim.cycles = 0
        self.sim.instructions = 0
        return "reset; PC=0000"

    def _cmd_where(self, args: List[str]) -> str:
        pc = self.sim.state.pc
        start = max(0, pc - 2)
        words = self.sim.dump_memory(start, min(5, self.sim.memory_words - start))
        lines = []
        for offset, line in enumerate(disassemble(words, base=start)):
            marker = " ->" if start + offset == pc else "   "
            lines.append(marker + line)
        return "\n".join(lines)
