"""Processor-side memory bus protocol.

The R8 core issues :class:`Transaction` objects on a bus; the owner of
the bus (the Processor IP control logic, or a plain local memory in
stand-alone tests) completes them.  A transaction that stays pending
stalls the core — this is exactly the ``waitR8`` signal of the paper's
Figure 5: the control logic "puts it in wait state each time the
processor executes a load-store instruction" that needs the NoC.
"""

from __future__ import annotations

from typing import List, Optional, Protocol


class Transaction:
    """One outstanding read or write."""

    __slots__ = ("is_write", "addr", "value", "done")

    def __init__(self, is_write: bool, addr: int, value: int = 0):
        self.is_write = is_write
        self.addr = addr
        self.value = value
        self.done = False

    def complete(self, value: Optional[int] = None) -> None:
        """Mark the transaction finished, optionally with read data."""
        if value is not None:
            self.value = value
        self.done = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "W" if self.is_write else "R"
        state = "done" if self.done else "pending"
        return f"<Txn {kind} @{self.addr:04x} ={self.value:04x} {state}>"


class MemoryBus(Protocol):
    """What the R8 core requires from its environment."""

    def fetch(self, addr: int) -> int:
        """Instruction fetch: always local, always completes immediately."""

    def read(self, addr: int) -> Transaction:
        """Start a data read; may complete later (remote/NoC access)."""

    def write(self, addr: int, value: int) -> Transaction:
        """Start a data write; may complete later (remote/NoC access)."""


class LocalBus:
    """A bus backed by a flat local word memory; every access is immediate.

    Used by stand-alone CPU tests and as the storage behind the
    instruction-set simulator.  Addresses wrap at the memory size, which
    mirrors partial address decoding of a small memory.
    """

    def __init__(self, size_words: int = 1024):
        self.size = size_words
        self.data: List[int] = [0] * size_words

    def load(self, words, base: int = 0) -> None:
        """Copy an iterable of 16-bit words into memory at *base*."""
        for i, w in enumerate(words):
            self.data[(base + i) % self.size] = w & 0xFFFF

    def fetch(self, addr: int) -> int:
        return self.data[addr % self.size]

    def read(self, addr: int) -> Transaction:
        txn = Transaction(False, addr, self.data[addr % self.size])
        txn.done = True
        return txn

    def write(self, addr: int, value: int) -> Transaction:
        self.data[addr % self.size] = value & 0xFFFF
        txn = Transaction(True, addr, value)
        txn.done = True
        return txn
