"""Multi-module linking for R8 programs.

Real applications (the edge detector, the C runtime) are built from
several source modules; this linker combines them with proper symbol
visibility:

* ``.global name`` exports a label or ``.equ`` constant to other modules,
* every other symbol is module-private (renamed ``module$name``
  internally, so two modules may both define ``loop:``),
* references to names a module does not define resolve against other
  modules' globals; a truly undefined reference is a link error naming
  the module,
* modules are laid out in the given order, the first at address 0 (the
  activate-processor service starts execution there).

Example::

    main_mod = Module("main", '''
            .extern double      ; optional documentation of the import
            LDI  R1, 21
            LDI  R15, double
            JSRR R15
            LDI  R2, 0xFFFF
            CLR  R0
            ST   R1, R2, R0
            HALT
    ''')
    lib_mod = Module("lib", '''
            .global double
    double: ADD R1, R1, R1
            RTS
    ''')
    obj = link([main_mod, lib_mod])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from .assembler import Assembler
from .errors import AsmError
from .macro import expand_macros, resolve_includes
from .parser import Expr, Statement, parse


@dataclass
class Module:
    """One source module to be linked."""

    name: str
    source: str
    filename: str = ""

    def __post_init__(self) -> None:
        if not self.filename:
            self.filename = f"<{self.name}>"


def _module_statements(module: Module) -> List[Statement]:
    source = resolve_includes(module.source, module.filename)
    return expand_macros(parse(source, module.filename), module.filename)


def _defined_names(statements: Sequence[Statement]) -> Set[str]:
    """Labels plus .equ constants defined by a statement stream."""
    names: Set[str] = set()
    for stmt in statements:
        names.update(stmt.labels)
        if stmt.op == ".equ" and stmt.operands:
            operand = stmt.operands[0]
            if (
                isinstance(operand, Expr)
                and len(operand.terms) == 1
                and isinstance(operand.terms[0][1], str)
            ):
                names.add(operand.terms[0][1])
    return names


def _declared(statements: Sequence[Statement], directive: str) -> Set[str]:
    names: Set[str] = set()
    for stmt in statements:
        if stmt.op == directive:
            for operand in stmt.operands:
                if (
                    isinstance(operand, Expr)
                    and len(operand.terms) == 1
                    and isinstance(operand.terms[0][1], str)
                ):
                    names.add(operand.terms[0][1])
                else:
                    raise AsmError(
                        f"{directive} takes symbol names", stmt.line
                    )
    return names


def _rename_statement(stmt: Statement, mapping: Dict[str, str]) -> Statement:
    new_operands = []
    for operand in stmt.operands:
        if isinstance(operand, Expr):
            new_operands.append(
                Expr(
                    tuple(
                        (sign, mapping.get(term, term) if isinstance(term, str) else term)
                        for sign, term in operand.terms
                    )
                )
            )
        else:
            new_operands.append(operand)
    return Statement(
        line=stmt.line,
        labels=[mapping.get(label, label) for label in stmt.labels],
        op=stmt.op,
        operands=new_operands,
        source_text=stmt.source_text,
    )


def link(modules: Sequence[Module]):
    """Link *modules* into one object (first module first in memory)."""
    if not modules:
        raise AsmError("nothing to link")
    seen_names = set()
    for module in modules:
        if module.name in seen_names:
            raise AsmError(f"duplicate module name {module.name!r}")
        seen_names.add(module.name)

    parsed = {m.name: _module_statements(m) for m in modules}
    defined = {name: _defined_names(stmts) for name, stmts in parsed.items()}
    exported: Dict[str, str] = {}  # global symbol -> exporting module
    for module in modules:
        for symbol in _declared(parsed[module.name], ".global"):
            if symbol not in defined[module.name]:
                raise AsmError(
                    f"module {module.name!r} declares .global {symbol!r} "
                    "but does not define it"
                )
            if symbol in exported:
                raise AsmError(
                    f"global {symbol!r} defined in both "
                    f"{exported[symbol]!r} and {module.name!r}"
                )
            exported[symbol] = module.name

    all_statements: List[Statement] = []
    undefined: Dict[str, Set[str]] = {}
    for module in modules:
        statements = parsed[module.name]
        globals_here = _declared(statements, ".global")
        externs_here = _declared(statements, ".extern")
        mapping = {
            name: f"{module.name}${name}"
            for name in defined[module.name]
            if name not in globals_here
        }
        for stmt in statements:
            renamed = _rename_statement(stmt, mapping)
            all_statements.append(renamed)
            # track references that are neither local nor exported
            for operand in renamed.operands:
                if isinstance(operand, Expr):
                    for _, term in operand.terms:
                        if (
                            isinstance(term, str)
                            and "$" not in term
                            and term not in exported
                            and term not in globals_here
                        ):
                            undefined.setdefault(module.name, set()).add(term)
        # declared externs that no module exports get reported below
        for symbol in externs_here:
            if symbol not in exported:
                undefined.setdefault(module.name, set()).add(symbol)

    # everything still undefined must be satisfied by some module's export
    truly_undefined = {
        mod: {sym for sym in syms if sym not in exported}
        for mod, syms in undefined.items()
    }
    problems = {mod: syms for mod, syms in truly_undefined.items() if syms}
    if problems:
        details = "; ".join(
            f"{mod}: {', '.join(sorted(syms))}" for mod, syms in sorted(problems.items())
        )
        raise AsmError(f"undefined symbols after linking — {details}")

    return Assembler("<linked>").assemble_statements(all_statements)
