"""Macro expansion and file inclusion for the R8 assembler.

Adds two classic assembler facilities on top of the statement parser:

``.include "file"``
    Textual inclusion, resolved relative to the including file, with
    cycle detection.

``.macro name, param...`` / ``.endm``
    Statement-level macros.  Parameters substitute wherever they appear
    as operands (registers or expression symbols); labels defined inside
    a macro body are made unique per expansion so loops inside macros
    work::

        .macro ADDI, rd, rs, value
                LDI  R15, value
                ADD  rd, rs, R15
        .endm

                ADDI R1, R2, 1000
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Union

from .errors import AsmError
from .parser import Expr, Reg, Statement

_INCLUDE_RE = re.compile(r'^\s*\.include\s+"([^"]+)"\s*(;.*)?$', re.IGNORECASE)

#: Expansion depth bound: macros may invoke macros, but not forever.
MAX_DEPTH = 16


def resolve_includes(
    source: str,
    filename: str = "<asm>",
    _stack: Optional[Set[str]] = None,
) -> str:
    """Splice ``.include`` directives into *source* recursively."""
    stack = _stack if _stack is not None else set()
    base = Path(filename).parent if filename not in ("<asm>",) else Path(".")
    out_lines: List[str] = []
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _INCLUDE_RE.match(line)
        if not match:
            out_lines.append(line)
            continue
        target = (base / match.group(1)).resolve()
        key = str(target)
        if key in stack:
            raise AsmError(
                f"circular include of {match.group(1)!r}", line_no, filename
            )
        try:
            text = target.read_text()
        except OSError as exc:
            raise AsmError(
                f"cannot include {match.group(1)!r}: {exc}", line_no, filename
            ) from exc
        stack.add(key)
        out_lines.append(resolve_includes(text, str(target), stack))
        stack.remove(key)
    return "\n".join(out_lines)


@dataclass
class MacroDef:
    """One ``.macro`` body."""

    name: str
    params: List[str]
    body: List[Statement]
    line: int = 0

    @property
    def local_labels(self) -> Set[str]:
        return {label for stmt in self.body for label in stmt.labels}


Operand = Union[Reg, Expr, str]


def _collect_macros(
    statements: Sequence[Statement], filename: str
) -> (Dict[str, MacroDef], List[Statement]):
    """Split macro definitions out of the statement stream."""
    macros: Dict[str, MacroDef] = {}
    rest: List[Statement] = []
    current: Optional[MacroDef] = None
    for stmt in statements:
        if stmt.op == ".macro":
            if current is not None:
                raise AsmError("nested .macro", stmt.line, filename)
            names = []
            for operand in stmt.operands:
                if isinstance(operand, Expr) and len(operand.terms) == 1 and \
                        isinstance(operand.terms[0][1], str):
                    names.append(operand.terms[0][1])
                elif isinstance(operand, Reg):
                    raise AsmError(
                        ".macro parameters must not be register names",
                        stmt.line,
                        filename,
                    )
                else:
                    raise AsmError(
                        ".macro needs: name, params...", stmt.line, filename
                    )
            if not names:
                raise AsmError(".macro needs a name", stmt.line, filename)
            current = MacroDef(names[0].upper(), names[1:], [], stmt.line)
            continue
        if stmt.op == ".endm":
            if current is None:
                raise AsmError(".endm without .macro", stmt.line, filename)
            if current.name in macros:
                raise AsmError(
                    f"duplicate macro {current.name!r}", stmt.line, filename
                )
            macros[current.name] = current
            current = None
            continue
        if current is not None:
            current.body.append(stmt)
        else:
            rest.append(stmt)
    if current is not None:
        raise AsmError(f".macro {current.name!r} missing .endm", current.line, filename)
    return macros, rest


def _substitute_expr(
    expr: Expr, bindings: Dict[str, Operand], renames: Dict[str, str],
    line: int, filename: str,
) -> Operand:
    """Rewrite an expression: bound parameters and renamed local labels."""
    # a bare parameter reference may substitute a whole operand (even a Reg)
    if len(expr.terms) == 1 and expr.terms[0][0] == 1:
        term = expr.terms[0][1]
        if isinstance(term, str) and term in bindings:
            return bindings[term]
    new_terms = []
    for sign, term in expr.terms:
        if isinstance(term, str):
            if term in bindings:
                bound = bindings[term]
                if isinstance(bound, Reg):
                    raise AsmError(
                        f"macro parameter {term!r} is a register but is "
                        "used inside an expression",
                        line,
                        filename,
                    )
                if isinstance(bound, Expr):
                    if len(bound.terms) == 1:
                        inner_sign, inner_term = bound.terms[0]
                        new_terms.append((sign * inner_sign, inner_term))
                        continue
                    raise AsmError(
                        f"macro argument for {term!r} is too complex to "
                        "embed in an expression",
                        line,
                        filename,
                    )
            term = renames.get(term, term)
        new_terms.append((sign, term))
    return Expr(tuple(new_terms))


def _expand_invocation(
    macro: MacroDef,
    stmt: Statement,
    counter: int,
    filename: str,
) -> List[Statement]:
    if len(stmt.operands) != len(macro.params):
        raise AsmError(
            f"macro {macro.name} expects {len(macro.params)} argument(s), "
            f"got {len(stmt.operands)}",
            stmt.line,
            filename,
        )
    bindings = dict(zip(macro.params, stmt.operands))
    renames = {
        label: f"{label}__m{counter}" for label in macro.local_labels
    }
    expanded: List[Statement] = []
    # labels on the invocation line attach to the first expanded statement
    pending_labels = list(stmt.labels)
    for body_stmt in macro.body:
        new_ops: List[Operand] = []
        for operand in body_stmt.operands:
            if isinstance(operand, Expr):
                new_ops.append(
                    _substitute_expr(
                        operand, bindings, renames, body_stmt.line, filename
                    )
                )
            else:
                new_ops.append(operand)
        expanded.append(
            Statement(
                line=stmt.line,
                labels=pending_labels
                + [renames.get(l, l) for l in body_stmt.labels],
                op=body_stmt.op,
                operands=new_ops,
                source_text=f"{body_stmt.source_text.strip()}  ; from {macro.name}",
            )
        )
        pending_labels = []
    if pending_labels:
        # empty macro body: keep the labels on a bare statement
        expanded.append(Statement(line=stmt.line, labels=pending_labels))
    return expanded


def expand_macros(
    statements: Sequence[Statement], filename: str = "<asm>"
) -> List[Statement]:
    """Extract macro definitions and expand every invocation."""
    macros, stream = _collect_macros(statements, filename)
    counter = 0
    depth = 0
    while True:
        out: List[Statement] = []
        expanded_any = False
        for stmt in stream:
            if stmt.op is not None and stmt.op in macros:
                counter += 1
                out.extend(
                    _expand_invocation(macros[stmt.op], stmt, counter, filename)
                )
                expanded_any = True
            else:
                out.append(stmt)
        stream = out
        if not expanded_any:
            return stream
        depth += 1
        if depth > MAX_DEPTH:
            raise AsmError(
                f"macro expansion exceeded depth {MAX_DEPTH} "
                "(recursive macro?)",
            )
