"""Two-pass assembler for the R8 instruction set."""

from .assembler import Assembler, assemble
from .errors import AsmError
from .linker import Module, link
from .objectfile import ObjectCode
from .parser import Expr, Reg, Statement, parse

__all__ = [
    "AsmError",
    "Assembler",
    "Expr",
    "Module",
    "link",
    "ObjectCode",
    "Reg",
    "Statement",
    "assemble",
    "parse",
]
