"""Two-pass R8 assembler.

Pass 1 walks the statements maintaining a location counter and collects
every label and ``.equ`` into the symbol table; pass 2 encodes
instructions and data with all symbols known.

Supported directives::

    .org  expr          set the location counter
    .word expr, ...     emit literal words
    .space expr         reserve zero-filled words
    .string "text"      one character per word, NUL terminated
    .equ  name, expr    define a constant

Pseudo-instructions::

    LDI  Rt, expr       -> LDH + LDL           (16-bit constant load)
    CLR  Rt             -> XOR Rt, Rt, Rt
    JMP  label          -> JMPD with computed displacement
    JSR  label          -> JSRD with computed displacement

Displacement jumps accept either a register-free expression (a target
address, converted to a PC-relative displacement) — this is the common
case with labels — and raise if the target is out of the signed 8-bit
range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import isa
from .errors import AsmError
from .macro import expand_macros, resolve_includes
from .objectfile import ObjectCode
from .parser import Expr, Reg, Statement, parse

#: pseudo-instruction -> emitted word count
_PSEUDO_SIZES = {"LDI": 2, "CLR": 1, "JMP": 1, "JSR": 1}

#: mnemonics taking a displacement expression operand
_DISP_OPS = {
    "JMPD",
    "JMPND",
    "JMPZD",
    "JMPCD",
    "JMPVD",
    "JSRD",
}


@dataclass
class _Item:
    """A pass-1 placement: statement plus its resolved address."""

    stmt: Statement
    address: int


class Assembler:
    """Reusable two-pass assembler instance."""

    def __init__(self, filename: str = "<asm>"):
        self.filename = filename

    # -- public API ----------------------------------------------------------

    def assemble(self, source: str) -> ObjectCode:
        source = resolve_includes(source, self.filename)
        statements = expand_macros(parse(source, self.filename), self.filename)
        return self.assemble_statements(statements)

    def assemble_statements(self, statements: List[Statement]) -> ObjectCode:
        """Run the two passes over already-parsed statements (used by the
        linker, which stitches statement streams from several modules)."""
        symbols, items = self._pass1(statements)
        return self._pass2(items, symbols)

    # -- pass 1: layout -------------------------------------------------------

    def _statement_size(self, stmt: Statement, symbols: Dict[str, int]) -> int:
        op = stmt.op
        if op is None:
            return 0
        if op.startswith("."):
            if op == ".org":
                return 0  # handled separately
            if op == ".word":
                return len(stmt.operands)
            if op == ".space":
                return self._const_operand(stmt, 0, symbols)
            if op == ".string":
                if len(stmt.operands) != 1 or not isinstance(stmt.operands[0], str):
                    raise AsmError(".string needs one string", stmt.line, self.filename)
                return len(stmt.operands[0]) + 1
            if op == ".equ":
                return 0
            if op in (".global", ".extern"):
                return 0  # visibility markers, consumed by the linker
            raise AsmError(f"unknown directive {op}", stmt.line, self.filename)
        if op in _PSEUDO_SIZES:
            return _PSEUDO_SIZES[op]
        if op.upper() in isa.SPECS:
            return 1
        raise AsmError(f"unknown mnemonic {op}", stmt.line, self.filename)

    def _const_operand(
        self, stmt: Statement, index: int, symbols: Dict[str, int]
    ) -> int:
        """Evaluate an operand that must be constant already in pass 1."""
        if index >= len(stmt.operands):
            raise AsmError(f"{stmt.op} needs operand {index + 1}", stmt.line, self.filename)
        operand = stmt.operands[index]
        if not isinstance(operand, Expr):
            raise AsmError(f"{stmt.op} needs a constant", stmt.line, self.filename)
        return operand.evaluate(symbols, stmt.line, self.filename)

    def _pass1(
        self, statements: List[Statement]
    ) -> Tuple[Dict[str, int], List[_Item]]:
        symbols: Dict[str, int] = {}
        items: List[_Item] = []
        lc = 0
        for stmt in statements:
            for label in stmt.labels:
                if label in symbols:
                    raise AsmError(
                        f"duplicate symbol {label!r}", stmt.line, self.filename
                    )
                symbols[label] = lc
            if stmt.op == ".org":
                lc = self._const_operand(stmt, 0, symbols)
                items.append(_Item(stmt, lc))
                continue
            if stmt.op == ".equ":
                if len(stmt.operands) != 2 or not isinstance(stmt.operands[0], Expr):
                    raise AsmError(
                        ".equ needs: name, value", stmt.line, self.filename
                    )
                name_terms = stmt.operands[0].terms
                if len(name_terms) != 1 or not isinstance(name_terms[0][1], str):
                    raise AsmError(
                        ".equ needs a symbol name", stmt.line, self.filename
                    )
                name = name_terms[0][1]
                if name in symbols:
                    raise AsmError(
                        f"duplicate symbol {name!r}", stmt.line, self.filename
                    )
                value = stmt.operands[1]
                if not isinstance(value, Expr):
                    raise AsmError(".equ value must be constant", stmt.line, self.filename)
                symbols[name] = value.evaluate(symbols, stmt.line, self.filename)
                continue
            items.append(_Item(stmt, lc))
            lc += self._statement_size(stmt, symbols)
        return symbols, items

    # -- pass 2: encode -------------------------------------------------------

    def _pass2(self, items: List[_Item], symbols: Dict[str, int]) -> ObjectCode:
        obj = ObjectCode(symbols=dict(symbols))
        segment_origin = 0
        words: List[int] = []
        next_address = 0

        def flush() -> None:
            nonlocal words
            if words:
                obj.segments.append((segment_origin, words))
                words = []

        for item in items:
            stmt = item.stmt
            if stmt.op == ".org":
                flush()
                segment_origin = item.address
                next_address = item.address
                continue
            if stmt.op is None:
                continue
            emitted = self._encode_statement(stmt, item.address, symbols)
            if emitted:
                if words and item.address != next_address:
                    flush()
                    segment_origin = item.address
                elif not words:
                    segment_origin = item.address
            for offset, word in enumerate(emitted):
                obj.listing.append(
                    f"{item.address + offset:04x}  "
                    f"{word:04x}  {stmt.source_text.strip()}"
                )
                words.append(word)
            next_address = item.address + len(emitted)
        flush()
        return obj

    def _reg(self, stmt: Statement, index: int) -> int:
        if index >= len(stmt.operands) or not isinstance(stmt.operands[index], Reg):
            raise AsmError(
                f"{stmt.op}: operand {index + 1} must be a register",
                stmt.line,
                self.filename,
            )
        return stmt.operands[index].index  # type: ignore[union-attr]

    def _value(
        self, stmt: Statement, index: int, symbols: Dict[str, int]
    ) -> int:
        if index >= len(stmt.operands) or not isinstance(stmt.operands[index], Expr):
            raise AsmError(
                f"{stmt.op}: operand {index + 1} must be an expression",
                stmt.line,
                self.filename,
            )
        return stmt.operands[index].evaluate(symbols, stmt.line, self.filename)

    def _expect_operands(self, stmt: Statement, count: int) -> None:
        if len(stmt.operands) != count:
            raise AsmError(
                f"{stmt.op} expects {count} operand(s), got {len(stmt.operands)}",
                stmt.line,
                self.filename,
            )

    def _disp_from(
        self, stmt: Statement, index: int, address: int, symbols: Dict[str, int]
    ) -> int:
        """Displacement = target - (address of next instruction)."""
        target = self._value(stmt, index, symbols)
        disp = target - (address + 1)
        if not -128 <= disp <= 127:
            raise AsmError(
                f"{stmt.op}: target {target:#06x} out of displacement range "
                f"({disp} not in [-128, 127])",
                stmt.line,
                self.filename,
            )
        return disp & 0xFF

    def _encode_statement(
        self, stmt: Statement, address: int, symbols: Dict[str, int]
    ) -> List[int]:
        op = stmt.op
        assert op is not None

        # directives emitting data
        if op == ".word":
            out = []
            for i in range(len(stmt.operands)):
                value = self._value(stmt, i, symbols) & 0xFFFF
                out.append(value)
            if not out:
                raise AsmError(".word needs at least one value", stmt.line, self.filename)
            return out
        if op == ".space":
            return [0] * self._const_operand(stmt, 0, symbols)
        if op == ".string":
            text = stmt.operands[0]
            assert isinstance(text, str)
            return [ord(ch) & 0xFFFF for ch in text] + [0]
        if op in (".global", ".extern"):
            return []
        if op.startswith("."):
            raise AsmError(f"unknown directive {op}", stmt.line, self.filename)

        # pseudo-instructions
        if op == "LDI":
            self._expect_operands(stmt, 2)
            rt = self._reg(stmt, 0)
            value = self._value(stmt, 1, symbols) & 0xFFFF
            ldh = isa.Instruction(isa.spec("LDH"), rt=rt, imm=(value >> 8) & 0xFF)
            ldl = isa.Instruction(isa.spec("LDL"), rt=rt, imm=value & 0xFF)
            return [isa.encode(ldh), isa.encode(ldl)]
        if op == "CLR":
            self._expect_operands(stmt, 1)
            rt = self._reg(stmt, 0)
            return [isa.encode(isa.Instruction(isa.spec("XOR"), rt=rt, rs1=rt, rs2=rt))]
        if op == "JMP":
            self._expect_operands(stmt, 1)
            disp = self._disp_from(stmt, 0, address, symbols)
            return [isa.encode(isa.Instruction(isa.spec("JMPD"), imm=disp))]
        if op == "JSR":
            self._expect_operands(stmt, 1)
            disp = self._disp_from(stmt, 0, address, symbols)
            return [isa.encode(isa.Instruction(isa.spec("JSRD"), imm=disp))]

        spec = isa.spec(op)

        if spec.fmt == isa.Fmt.RRR:
            self._expect_operands(stmt, 3)
            instr = isa.Instruction(
                spec,
                rt=self._reg(stmt, 0),
                rs1=self._reg(stmt, 1),
                rs2=self._reg(stmt, 2),
            )
        elif spec.fmt == isa.Fmt.RI:
            self._expect_operands(stmt, 2)
            imm = self._value(stmt, 1, symbols)
            if not -128 <= imm <= 255:
                raise AsmError(
                    f"{op}: immediate {imm} out of 8-bit range",
                    stmt.line,
                    self.filename,
                )
            instr = isa.Instruction(spec, rt=self._reg(stmt, 0), imm=imm & 0xFF)
        elif spec.fmt == isa.Fmt.RR:
            if spec.mnemonic in ("PUSH", "LDSP"):
                self._expect_operands(stmt, 1)
                instr = isa.Instruction(spec, rs1=self._reg(stmt, 0))
            elif spec.mnemonic in ("POP", "RDSP"):
                self._expect_operands(stmt, 1)
                instr = isa.Instruction(spec, rt=self._reg(stmt, 0))
            else:  # NOT, shifts, MOV: Rt, Rs
                self._expect_operands(stmt, 2)
                instr = isa.Instruction(
                    spec, rt=self._reg(stmt, 0), rs1=self._reg(stmt, 1)
                )
        elif spec.fmt == isa.Fmt.JR:
            self._expect_operands(stmt, 1)
            instr = isa.Instruction(spec, rs1=self._reg(stmt, 0))
        elif spec.fmt == isa.Fmt.JD:
            self._expect_operands(stmt, 1)
            instr = isa.Instruction(
                spec, imm=self._disp_from(stmt, 0, address, symbols)
            )
        elif spec.fmt == isa.Fmt.SUBR:
            if spec.mnemonic == "JSRR":
                self._expect_operands(stmt, 1)
                instr = isa.Instruction(spec, rs1=self._reg(stmt, 0))
            elif spec.mnemonic == "JSRD":
                self._expect_operands(stmt, 1)
                instr = isa.Instruction(
                    spec, imm=self._disp_from(stmt, 0, address, symbols)
                )
            else:  # RTS
                self._expect_operands(stmt, 0)
                instr = isa.Instruction(spec)
        else:  # MISC
            self._expect_operands(stmt, 0)
            instr = isa.Instruction(spec)
        return [isa.encode(instr)]


def assemble(source: str, filename: str = "<asm>") -> ObjectCode:
    """Assemble *source* and return its :class:`ObjectCode`."""
    return Assembler(filename).assemble(source)
