"""Tokenizer for R8 assembly source.

The surface syntax follows the classic two-pass assembler conventions the
R8 Simulator environment used: one statement per line, optional
``label:`` prefix, ``;`` comments, ``.directives``, ``R0``..``R15``
registers, decimal / ``0x`` hex / ``'c'`` character literals.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List

from .errors import AsmError


class TokKind(Enum):
    LABEL = "label"  # identifier followed by ':'
    IDENT = "ident"  # mnemonic, directive argument, symbol
    DIRECTIVE = "directive"  # .org, .word, ...
    REGISTER = "register"  # R0..R15
    NUMBER = "number"
    STRING = "string"
    COMMA = "comma"
    PLUS = "plus"
    MINUS = "minus"
    NEWLINE = "newline"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    value: int = 0
    line: int = 0


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<comment>;[^\n]*|//[^\n]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<char>'(?:[^'\\]|\\.)')
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<number>\d+)
  | (?P<directive>\.[A-Za-z_][A-Za-z0-9_]*)
  | (?P<label>[A-Za-z_][A-Za-z0-9_]*[ \t]*:)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<comma>,)
  | (?P<plus>\+)
  | (?P<minus>-)
  | (?P<hash>\#)
    """,
    re.VERBOSE,
)

_REGISTER_RE = re.compile(r"^[rR](\d{1,2})$")

_ESCAPES = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'", '"': '"'}


def _unescape(body: str) -> str:
    out = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            out.append(_ESCAPES.get(body[i + 1], body[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def tokenize(source: str, filename: str = "<asm>") -> List[Token]:
    """Tokenize assembly *source* into a flat token list.

    Every line ends with a NEWLINE token (including the last), so the
    parser can treat lines uniformly.
    """
    tokens: List[Token] = []
    for line_no, line in enumerate(source.splitlines(), start=1):
        pos = 0
        while pos < len(line):
            m = _TOKEN_RE.match(line, pos)
            if m is None:
                raise AsmError(
                    f"unexpected character {line[pos]!r}", line_no, filename
                )
            pos = m.end()
            kind = m.lastgroup
            text = m.group()
            if kind in ("ws", "comment"):
                continue
            if kind == "comment":
                break
            if kind == "hash":
                continue  # optional '#' immediate prefix is decorative
            if kind == "hex":
                tokens.append(Token(TokKind.NUMBER, text, int(text, 16), line_no))
            elif kind == "number":
                tokens.append(Token(TokKind.NUMBER, text, int(text, 10), line_no))
            elif kind == "char":
                ch = _unescape(text[1:-1])
                if len(ch) != 1:
                    raise AsmError(f"bad char literal {text}", line_no, filename)
                tokens.append(Token(TokKind.NUMBER, text, ord(ch), line_no))
            elif kind == "string":
                tokens.append(
                    Token(TokKind.STRING, _unescape(text[1:-1]), 0, line_no)
                )
            elif kind == "directive":
                tokens.append(Token(TokKind.DIRECTIVE, text.lower(), 0, line_no))
            elif kind == "label":
                name = text.rstrip()[:-1].rstrip()
                tokens.append(Token(TokKind.LABEL, name, 0, line_no))
            elif kind == "ident":
                reg = _REGISTER_RE.match(text)
                if reg and int(reg.group(1)) < 16:
                    tokens.append(
                        Token(TokKind.REGISTER, text, int(reg.group(1)), line_no)
                    )
                else:
                    tokens.append(Token(TokKind.IDENT, text, 0, line_no))
            elif kind == "comma":
                tokens.append(Token(TokKind.COMMA, text, 0, line_no))
            elif kind == "plus":
                tokens.append(Token(TokKind.PLUS, text, 0, line_no))
            elif kind == "minus":
                tokens.append(Token(TokKind.MINUS, text, 0, line_no))
        tokens.append(Token(TokKind.NEWLINE, "\n", 0, line_no))
    return tokens
