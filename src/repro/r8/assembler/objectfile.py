"""R8 object-code container and its text serialisation.

The paper's flow sends "the text file obtained after the application
simulation" to the board through the Serial software.  We reconstruct
that artifact as a simple line-oriented hex format::

    ; r8 object file
    ;sym start=0000
    @0000
    9105
    B510
    ...

``@hhhh`` records set the load address; other lines are 16-bit words in
hex.  ``;sym name=hhhh`` comment records carry the symbol table for the
debugger; loaders may ignore every comment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class ObjectCode:
    """Assembled program: memory segments plus symbols and a listing."""

    segments: List[Tuple[int, List[int]]] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    listing: List[str] = field(default_factory=list)

    @property
    def size_words(self) -> int:
        """Total words across all segments."""
        return sum(len(words) for _, words in self.segments)

    def memory_image(self, size: int = 1024, fill: int = 0) -> List[int]:
        """Flatten into a memory image of *size* words."""
        image = [fill] * size
        for origin, words in self.segments:
            if origin + len(words) > size:
                raise ValueError(
                    f"segment at {origin:#06x} ({len(words)} words) exceeds "
                    f"{size}-word memory"
                )
            image[origin : origin + len(words)] = words
        return image

    def word_records(self) -> List[Tuple[int, int]]:
        """All (address, word) pairs in load order."""
        records = []
        for origin, words in self.segments:
            for i, w in enumerate(words):
                records.append((origin + i, w))
        return records

    # -- text format --------------------------------------------------------

    def to_text(self) -> str:
        lines = ["; r8 object file"]
        for name in sorted(self.symbols):
            lines.append(f";sym {name}={self.symbols[name]:04x}")
        for origin, words in self.segments:
            lines.append(f"@{origin:04x}")
            lines.extend(f"{w:04x}" for w in words)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "ObjectCode":
        obj = cls()
        address = 0
        current: List[int] = []
        current_origin = 0

        def flush() -> None:
            nonlocal current
            if current:
                obj.segments.append((current_origin, current))
                current = []

        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            if line.startswith(";sym "):
                name, _, value = line[5:].partition("=")
                obj.symbols[name.strip()] = int(value, 16)
                continue
            if line.startswith(";"):
                continue
            if line.startswith("@"):
                flush()
                address = int(line[1:], 16)
                current_origin = address
                continue
            word = int(line, 16)
            if not 0 <= word <= 0xFFFF:
                raise ValueError(f"object word {line!r} out of 16-bit range")
            if not current:
                current_origin = address
            current.append(word)
            address += 1
        flush()
        return obj
