"""Assembler diagnostics."""

from __future__ import annotations


class AsmError(Exception):
    """An assembly-time error, carrying source position information."""

    def __init__(self, message: str, line: int = 0, source: str = "<asm>"):
        self.message = message
        self.line = line
        self.source = source
        super().__init__(f"{source}:{line}: {message}" if line else message)
