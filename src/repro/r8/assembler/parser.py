"""Statement parser for R8 assembly."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .errors import AsmError
from .lexer import TokKind, Token, tokenize


@dataclass(frozen=True)
class Reg:
    """A register operand R0..R15."""

    index: int


@dataclass(frozen=True)
class Expr:
    """A constant expression: sum of signed symbol/number terms.

    ``terms`` is a list of (sign, symbol-or-int); evaluation happens in
    the assembler's second pass when all symbols are known.
    """

    terms: Tuple[Tuple[int, Union[str, int]], ...]

    def evaluate(self, symbols, line: int, source: str) -> int:
        total = 0
        for sign, term in self.terms:
            if isinstance(term, int):
                total += sign * term
            else:
                if term not in symbols:
                    raise AsmError(f"undefined symbol {term!r}", line, source)
                total += sign * symbols[term]
        return total


Operand = Union[Reg, Expr, str]  # str only for .string


@dataclass
class Statement:
    """One source line: optional labels, optional operation with operands."""

    line: int
    labels: List[str] = field(default_factory=list)
    op: Optional[str] = None  # mnemonic (upper) or directive (lower, with dot)
    operands: List[Operand] = field(default_factory=list)
    source_text: str = ""


class _TokenStream:
    def __init__(self, tokens: List[Token], source: str):
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    @property
    def done(self) -> bool:
        return self.pos >= len(self.tokens)


def _parse_expr(stream: _TokenStream) -> Expr:
    terms: List[Tuple[int, Union[str, int]]] = []
    sign = 1
    tok = stream.peek()
    if tok.kind == TokKind.MINUS:
        stream.next()
        sign = -1
    elif tok.kind == TokKind.PLUS:
        stream.next()
    while True:
        tok = stream.next()
        if tok.kind == TokKind.NUMBER:
            terms.append((sign, tok.value))
        elif tok.kind == TokKind.IDENT:
            terms.append((sign, tok.text))
        else:
            raise AsmError(
                f"expected number or symbol, got {tok.text!r}",
                tok.line,
                stream.source,
            )
        nxt = stream.peek()
        if nxt.kind == TokKind.PLUS:
            stream.next()
            sign = 1
        elif nxt.kind == TokKind.MINUS:
            stream.next()
            sign = -1
        else:
            return Expr(tuple(terms))


def _parse_operand(stream: _TokenStream) -> Operand:
    tok = stream.peek()
    if tok.kind == TokKind.REGISTER:
        stream.next()
        return Reg(tok.value)
    if tok.kind == TokKind.STRING:
        stream.next()
        return tok.text
    return _parse_expr(stream)


def parse(source: str, filename: str = "<asm>") -> List[Statement]:
    """Parse assembly source into a list of statements."""
    tokens = tokenize(source, filename)
    stream = _TokenStream(tokens, filename)
    lines = source.splitlines()
    statements: List[Statement] = []

    while not stream.done:
        tok = stream.peek()
        stmt = Statement(
            line=tok.line,
            source_text=lines[tok.line - 1] if tok.line <= len(lines) else "",
        )
        # leading labels
        while stream.peek().kind == TokKind.LABEL:
            stmt.labels.append(stream.next().text)
        tok = stream.peek()
        if tok.kind in (TokKind.IDENT, TokKind.DIRECTIVE):
            stream.next()
            stmt.op = tok.text.upper() if tok.kind == TokKind.IDENT else tok.text
            # operands until newline
            if stream.peek().kind != TokKind.NEWLINE:
                stmt.operands.append(_parse_operand(stream))
                while stream.peek().kind == TokKind.COMMA:
                    stream.next()
                    stmt.operands.append(_parse_operand(stream))
        nl = stream.next()
        if nl.kind != TokKind.NEWLINE:
            raise AsmError(
                f"unexpected {nl.text!r} at end of statement", nl.line, filename
            )
        if stmt.labels or stmt.op:
            statements.append(stmt)
    return statements
