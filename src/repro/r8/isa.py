"""The R8 instruction set architecture.

The paper describes R8 as "a load-store 16-bit processor architecture,
containing a 16x16 bit register file, and supporting execution of 36
distinct instructions" with PC/SP/IR and four status flags (negative,
zero, carry, overflow).  The original PUCRS specification is no longer
available, so this module reconstructs a 36-instruction ISA satisfying
every constraint in the paper (see DESIGN.md, "Key reconstruction
decisions").

Instruction formats (16-bit words)::

    RRR  [op:4][rt:4][rs1:4][rs2:4]   ADD..XOR, LD, ST
    RI   [op:4][rt:4][imm:8]          LDL, LDH
    RR   [0xB][sub:4][rt:4][rs:4]     NOT..RDSP group
    JR   [0xC][cond:4][rs:4][0:4]     register jumps
    JD   [0xD][cond:4][disp:8]        displacement jumps
    SUB  [0xE][sub:4][disp:8]         JSRR/JSRD/RTS (JSRR: rs in disp low nibble)
    MISC [0xF][sub:4][0:8]            NOP, HALT

Conventions
-----------
* All registers and memory words are 16 bit.  R0..R15 are general
  purpose.
* Arithmetic sets N, Z, C, V; logic and shifts set N and Z (shifts also
  set C to the shifted-out bit); moves and loads leave flags alone.
* For SUB/SUBC the carry flag holds the *borrow* (C=1 when the unsigned
  subtraction underflowed); SUBC subtracts the incoming borrow.
* The stack grows downward: PUSH stores at SP then decrements; POP
  increments then loads.
* JMPxD/JSRD displacements are signed 8-bit, relative to the already
  incremented PC (the address following the jump instruction).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple


class Fmt(Enum):
    """Encoding format of an instruction."""

    RRR = "rrr"  # rt, rs1, rs2
    RI = "ri"  # rt, imm8
    RR = "rr"  # rt, rs (either may be unused)
    JR = "jr"  # rs
    JD = "jd"  # disp8
    SUBR = "subr"  # JSRR: rs / JSRD: disp8 / RTS: none
    MISC = "misc"  # no operands


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one of the 36 instructions."""

    mnemonic: str
    fmt: Fmt
    opcode: int  # major opcode nibble
    sub: Optional[int] = None  # sub-opcode / condition nibble
    cycles: int = 2  # CPI of the multicycle implementation
    reads_mem: bool = False
    writes_mem: bool = False

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.mnemonic


# Condition codes for jump groups.
COND_ALWAYS = 0x0
COND_N = 0x1
COND_Z = 0x2
COND_C = 0x3
COND_V = 0x4

_OP_GROUP_RR = 0xB
_OP_GROUP_JR = 0xC
_OP_GROUP_JD = 0xD
_OP_GROUP_SUBR = 0xE
_OP_GROUP_MISC = 0xF

# Sub-opcodes of the RR group.
SUB_NOT = 0x0
SUB_SL0 = 0x1
SUB_SL1 = 0x2
SUB_SR0 = 0x3
SUB_SR1 = 0x4
SUB_MOV = 0x5
SUB_PUSH = 0x6
SUB_POP = 0x7
SUB_LDSP = 0x8
SUB_RDSP = 0x9

# Sub-opcodes of the subroutine group.
SUB_JSRR = 0x0
SUB_JSRD = 0x1
SUB_RTS = 0x2

# Sub-opcodes of the misc group.
SUB_NOP = 0x0
SUB_HALT = 0x1


def _specs() -> Dict[str, InstrSpec]:
    table = [
        # ALU register-register: CPI 2 (fetch + execute).
        InstrSpec("ADD", Fmt.RRR, 0x0),
        InstrSpec("ADDC", Fmt.RRR, 0x1),
        InstrSpec("SUB", Fmt.RRR, 0x2),
        InstrSpec("SUBC", Fmt.RRR, 0x3),
        InstrSpec("AND", Fmt.RRR, 0x4),
        InstrSpec("OR", Fmt.RRR, 0x5),
        InstrSpec("XOR", Fmt.RRR, 0x6),
        # Memory: LD is CPI 4 (fetch, EA, bus, latch), ST is CPI 3.
        InstrSpec("LD", Fmt.RRR, 0x7, cycles=4, reads_mem=True),
        InstrSpec("ST", Fmt.RRR, 0x8, cycles=3, writes_mem=True),
        # Byte immediates.
        InstrSpec("LDL", Fmt.RI, 0x9),
        InstrSpec("LDH", Fmt.RI, 0xA),
        # RR group.
        InstrSpec("NOT", Fmt.RR, _OP_GROUP_RR, SUB_NOT),
        InstrSpec("SL0", Fmt.RR, _OP_GROUP_RR, SUB_SL0),
        InstrSpec("SL1", Fmt.RR, _OP_GROUP_RR, SUB_SL1),
        InstrSpec("SR0", Fmt.RR, _OP_GROUP_RR, SUB_SR0),
        InstrSpec("SR1", Fmt.RR, _OP_GROUP_RR, SUB_SR1),
        InstrSpec("MOV", Fmt.RR, _OP_GROUP_RR, SUB_MOV),
        InstrSpec("PUSH", Fmt.RR, _OP_GROUP_RR, SUB_PUSH, cycles=3, writes_mem=True),
        InstrSpec("POP", Fmt.RR, _OP_GROUP_RR, SUB_POP, cycles=4, reads_mem=True),
        InstrSpec("LDSP", Fmt.RR, _OP_GROUP_RR, SUB_LDSP),
        InstrSpec("RDSP", Fmt.RR, _OP_GROUP_RR, SUB_RDSP),
        # Register-absolute jumps.
        InstrSpec("JMPR", Fmt.JR, _OP_GROUP_JR, COND_ALWAYS),
        InstrSpec("JMPNR", Fmt.JR, _OP_GROUP_JR, COND_N),
        InstrSpec("JMPZR", Fmt.JR, _OP_GROUP_JR, COND_Z),
        InstrSpec("JMPCR", Fmt.JR, _OP_GROUP_JR, COND_C),
        InstrSpec("JMPVR", Fmt.JR, _OP_GROUP_JR, COND_V),
        # PC-relative jumps.
        InstrSpec("JMPD", Fmt.JD, _OP_GROUP_JD, COND_ALWAYS),
        InstrSpec("JMPND", Fmt.JD, _OP_GROUP_JD, COND_N),
        InstrSpec("JMPZD", Fmt.JD, _OP_GROUP_JD, COND_Z),
        InstrSpec("JMPCD", Fmt.JD, _OP_GROUP_JD, COND_C),
        InstrSpec("JMPVD", Fmt.JD, _OP_GROUP_JD, COND_V),
        # Subroutines: JSR pushes the return address (CPI 3), RTS pops (CPI 4).
        InstrSpec("JSRR", Fmt.SUBR, _OP_GROUP_SUBR, SUB_JSRR, cycles=3, writes_mem=True),
        InstrSpec("JSRD", Fmt.SUBR, _OP_GROUP_SUBR, SUB_JSRD, cycles=3, writes_mem=True),
        InstrSpec("RTS", Fmt.SUBR, _OP_GROUP_SUBR, SUB_RTS, cycles=4, reads_mem=True),
        # Misc.
        InstrSpec("NOP", Fmt.MISC, _OP_GROUP_MISC, SUB_NOP),
        InstrSpec("HALT", Fmt.MISC, _OP_GROUP_MISC, SUB_HALT),
    ]
    return {spec.mnemonic: spec for spec in table}


#: Mnemonic -> static spec for all 36 instructions.
SPECS: Dict[str, InstrSpec] = _specs()

assert len(SPECS) == 36, f"ISA must have 36 instructions, has {len(SPECS)}"

#: Jump-group condition nibble -> flag name ('' = unconditional).
COND_FLAG = {
    COND_ALWAYS: "",
    COND_N: "n",
    COND_Z: "z",
    COND_C: "c",
    COND_V: "v",
}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction: spec plus operand fields."""

    spec: InstrSpec
    rt: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0  # 8-bit immediate or displacement (raw, unsigned)

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def disp(self) -> int:
        """The immediate interpreted as a signed 8-bit displacement."""
        return self.imm - 256 if self.imm >= 128 else self.imm


class DecodeError(Exception):
    """A 16-bit word does not encode a valid R8 instruction."""


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction back into its 16-bit word."""
    spec = instr.spec
    op = spec.opcode << 12
    if spec.fmt == Fmt.RRR:
        return op | (instr.rt << 8) | (instr.rs1 << 4) | instr.rs2
    if spec.fmt == Fmt.RI:
        return op | (instr.rt << 8) | (instr.imm & 0xFF)
    if spec.fmt == Fmt.RR:
        return op | (spec.sub << 8) | (instr.rt << 4) | instr.rs1
    if spec.fmt == Fmt.JR:
        return op | (spec.sub << 8) | (instr.rs1 << 4)
    if spec.fmt == Fmt.JD:
        return op | (spec.sub << 8) | (instr.imm & 0xFF)
    if spec.fmt == Fmt.SUBR:
        if spec.sub == SUB_JSRR:
            return op | (SUB_JSRR << 8) | instr.rs1
        if spec.sub == SUB_JSRD:
            return op | (SUB_JSRD << 8) | (instr.imm & 0xFF)
        return op | (SUB_RTS << 8)
    if spec.fmt == Fmt.MISC:
        return op | (spec.sub << 8)
    raise DecodeError(f"unencodable format {spec.fmt}")  # pragma: no cover


_RRR_BY_OP = {s.opcode: s for s in SPECS.values() if s.fmt == Fmt.RRR}
_RI_BY_OP = {s.opcode: s for s in SPECS.values() if s.fmt == Fmt.RI}
_RR_BY_SUB = {s.sub: s for s in SPECS.values() if s.fmt == Fmt.RR}
_JR_BY_COND = {s.sub: s for s in SPECS.values() if s.fmt == Fmt.JR}
_JD_BY_COND = {s.sub: s for s in SPECS.values() if s.fmt == Fmt.JD}
_SUBR_BY_SUB = {s.sub: s for s in SPECS.values() if s.fmt == Fmt.SUBR}
_MISC_BY_SUB = {s.sub: s for s in SPECS.values() if s.fmt == Fmt.MISC}


#: word -> decoded Instruction.  Instructions are frozen, so sharing one
#: object per word across fetches is safe; the cache is bounded by the
#: 64K word space and removes re-decode cost from the fetch hot path.
_DECODE_CACHE: Dict[int, Instruction] = {}


def decode(word: int) -> Instruction:
    """Decode a 16-bit memory word into an :class:`Instruction`."""
    instr = _DECODE_CACHE.get(word)
    if instr is not None:
        return instr
    instr = _decode_uncached(word)
    _DECODE_CACHE[word] = instr
    return instr


def _decode_uncached(word: int) -> Instruction:
    if not 0 <= word <= 0xFFFF:
        raise DecodeError(f"word {word!r} out of 16-bit range")
    op = (word >> 12) & 0xF
    f1 = (word >> 8) & 0xF
    f2 = (word >> 4) & 0xF
    f3 = word & 0xF
    low8 = word & 0xFF

    if op in _RRR_BY_OP:
        return Instruction(_RRR_BY_OP[op], rt=f1, rs1=f2, rs2=f3)
    if op in _RI_BY_OP:
        return Instruction(_RI_BY_OP[op], rt=f1, imm=low8)
    if op == _OP_GROUP_RR:
        spec = _RR_BY_SUB.get(f1)
        if spec is None:
            raise DecodeError(f"bad RR sub-opcode {f1:#x} in word {word:#06x}")
        return Instruction(spec, rt=f2, rs1=f3)
    if op == _OP_GROUP_JR:
        spec = _JR_BY_COND.get(f1)
        if spec is None:
            raise DecodeError(f"bad jump condition {f1:#x} in word {word:#06x}")
        return Instruction(spec, rs1=f2)
    if op == _OP_GROUP_JD:
        spec = _JD_BY_COND.get(f1)
        if spec is None:
            raise DecodeError(f"bad jump condition {f1:#x} in word {word:#06x}")
        return Instruction(spec, imm=low8)
    if op == _OP_GROUP_SUBR:
        spec = _SUBR_BY_SUB.get(f1)
        if spec is None:
            raise DecodeError(f"bad subroutine sub-op {f1:#x} in word {word:#06x}")
        if spec.sub == SUB_JSRR:
            return Instruction(spec, rs1=f3)
        if spec.sub == SUB_JSRD:
            return Instruction(spec, imm=low8)
        return Instruction(spec)
    if op == _OP_GROUP_MISC:
        spec = _MISC_BY_SUB.get(f1)
        if spec is None:
            raise DecodeError(f"bad misc sub-op {f1:#x} in word {word:#06x}")
        return Instruction(spec)
    raise DecodeError(f"unknown opcode {op:#x} in word {word:#06x}")


def spec(mnemonic: str) -> InstrSpec:
    """Look up an instruction spec by mnemonic (case-insensitive)."""
    try:
        return SPECS[mnemonic.upper()]
    except KeyError as exc:
        raise DecodeError(f"unknown mnemonic {mnemonic!r}") from exc
