"""Architectural state of the R8 processor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .alu import Flags, MASK16

#: Number of general-purpose registers ("16x16 bit register file").
N_REGS = 16

#: Reset value of the stack pointer: top of the 1K-word local memory.
RESET_SP = 0x03FF


@dataclass
class R8State:
    """Registers, PC, SP, flags and halt status of one R8 core."""

    regs: List[int] = field(default_factory=lambda: [0] * N_REGS)
    pc: int = 0
    sp: int = RESET_SP
    flags: Flags = field(default_factory=Flags)
    halted: bool = True  # processors start inactive until "activate"

    def reset(self, sp: int = RESET_SP) -> None:
        self.regs = [0] * N_REGS
        self.pc = 0
        self.sp = sp
        self.flags = Flags()
        self.halted = True

    def activate(self) -> None:
        """Start executing from address 0 (the "activate processor" service)."""
        self.pc = 0
        self.halted = False

    def set_reg(self, index: int, value: int) -> None:
        self.regs[index] = value & MASK16

    def get_reg(self, index: int) -> int:
        return self.regs[index]

    def copy(self) -> "R8State":
        return R8State(
            regs=list(self.regs),
            pc=self.pc,
            sp=self.sp,
            flags=self.flags.copy(),
            halted=self.halted,
        )

    def __str__(self) -> str:  # pragma: no cover - debug aid
        regs = " ".join(f"R{i}={v:04x}" for i, v in enumerate(self.regs))
        return (
            f"PC={self.pc:04x} SP={self.sp:04x} [{self.flags}] "
            f"{'HALT' if self.halted else 'RUN '} {regs}"
        )
