"""Cycle-accurate multicycle model of the R8 soft core.

The core is a classic multicycle FSM ("CPI (Clocks Per Instruction)
between 2 and 4", paper Section 2.4):

=============  ====================================  ===
instructions   states                                CPI
=============  ====================================  ===
ALU, moves,    FETCH, EXEC                            2
jumps, NOP
ST, PUSH,      FETCH, EXEC, WRITE                     3
JSRR, JSRD
LD, POP, RTS   FETCH, EXEC, MEM, MEM(latch)           4
=============  ====================================  ===

A data access that the environment cannot complete immediately (remote
memory, I/O, wait/notify — anything crossing the NoC) leaves its
:class:`~repro.r8.bus.Transaction` pending, and the core simply stays in
its MEM/WRITE state: that *is* the ``waitR8`` stall of Figure 5.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Component
from . import alu, isa
from .alu import MASK16
from .bus import MemoryBus, Transaction
from .semantics import condition_met
from .state import R8State

S_HALT = 0
S_FETCH = 1
S_EXEC = 2
S_MEM = 3
S_WRITE = 4

_STATE_NAMES = {
    S_HALT: "HALT",
    S_FETCH: "FETCH",
    S_EXEC: "EXEC",
    S_MEM: "MEM",
    S_WRITE: "WRITE",
}

#: mnemonics whose MEM-state result lands in PC instead of a register
_MEM_TO_PC = frozenset(["RTS"])


class R8Cpu(Component):
    """One R8 core attached to a :class:`~repro.r8.bus.MemoryBus`.

    The core powers up halted; :meth:`activate` (driven by the "activate
    processor" packet service) starts execution at address 0.
    """

    def __init__(self, name: str, bus: MemoryBus):
        super().__init__(name)
        self.bus = bus
        self.state = R8State()
        self._fsm = S_HALT
        self._instr: Optional[isa.Instruction] = None
        self._txn: Optional[Transaction] = None
        self._mem_settle = 0
        #: externally forced stall (the "wait" *packet* service): while
        #: True the core idles at its next fetch boundary.
        self.paused = False
        # performance counters
        self.cycles_active = 0
        self.cycles_stalled = 0
        self.instructions_retired = 0
        #: optional TelemetrySink; one None-check per active cycle
        self.sink = None
        self._now = 0
        self._burst_start: Optional[int] = None
        self._burst_base = 0
        self._stall_start: Optional[int] = None
        #: optional PC sampling: ``(call_stack, pc) -> cycles`` when
        #: enabled, ``None`` otherwise (one None-check per active cycle).
        #: ``call_stack`` is the tuple of call-site PCs of the JSR chain
        #: currently live, so samples fold into real flame-graph stacks.
        self.pc_samples: Optional[dict] = None
        self._cur_pc = 0
        self._call_key: tuple = ()

    # -- control ------------------------------------------------------------

    def activate(self) -> None:
        """Start (or restart) execution from local address 0."""
        self.state.activate()
        self._fsm = S_FETCH
        self._instr = None
        self._txn = None
        if self.pc_samples is not None:
            self._call_key = ()
            self._cur_pc = 0
        self.wake()

    def enable_pc_sampling(self) -> None:
        """Turn on per-PC cycle sampling (the post-mortem profiler feed).

        Every active cycle is charged to ``(call_stack, pc)``; the
        accumulated counts are flushed as ``pcsample`` trace events by
        :meth:`flush_pc_samples`.  Sampling never changes architectural
        behaviour — it only reads the FSM.
        """
        if self.pc_samples is None:
            self.pc_samples = {}

    def flush_pc_samples(self) -> int:
        """Emit accumulated PC samples as ``pcsample`` instants and clear.

        Returns the number of distinct ``(stack, pc)`` buckets flushed.
        No-op (returning 0) when sampling is disabled or no sink is
        attached.
        """
        if self.pc_samples is None or self.sink is None or not self.pc_samples:
            return 0
        buckets = sorted(self.pc_samples.items())
        for (stack, pc), cycles in buckets:
            self.sink.instant(
                self.name,
                "pcsample",
                self._now,
                stack=list(stack),
                pc=pc,
                cycles=cycles,
            )
        self.pc_samples = {}
        return len(buckets)

    @property
    def halted(self) -> bool:
        return self._fsm == S_HALT

    @property
    def stalled(self) -> bool:
        """True while a pending bus transaction is blocking the core."""
        return (
            self._txn is not None
            and not self._txn.done
            and self._fsm in (S_MEM, S_WRITE)
            and self._mem_settle == 0
        )

    @property
    def sleepable(self) -> bool:
        """True when the next eval cannot change core state: halted,
        paused at a fetch boundary (the "wait" service), or stalled on a
        bus transaction that only an external event can complete.  Used
        by the enclosing IP's quiescence predicate; skipped cycles are
        re-credited through :meth:`credit_idle_cycles`."""
        if self._fsm == S_HALT:
            return True
        if self._fsm == S_FETCH:
            return self.paused
        return self.stalled

    def credit_idle_cycles(self, n: int) -> None:
        """Account *n* kernel-skipped idle evals exactly as lock-step
        evaluation would have: a halted core counts nothing; a paused or
        stalled core accrues active+stalled cycles and PC samples."""
        if n <= 0 or self._fsm == S_HALT:
            return
        self.cycles_active += n
        self.cycles_stalled += n
        if self.pc_samples is not None:
            pc = self.state.pc if self._fsm == S_FETCH else self._cur_pc
            key = (self._call_key, pc)
            self.pc_samples[key] = self.pc_samples.get(key, 0) + n

    @property
    def fsm_state(self) -> str:
        return _STATE_NAMES[self._fsm]

    @property
    def progress(self) -> tuple:
        """(pc, instructions retired) — changes iff the core advances.

        The CPU stall watchdog compares successive readings: an active
        core whose progress tuple stays frozen is wedged (a never-answered
        scanf, a lost read return, a wait with no notify...).
        """
        return (self.state.pc, self.instructions_retired)

    def cpi(self) -> float:
        """Measured clocks per instruction since reset."""
        if self.instructions_retired == 0:
            return 0.0
        return self.cycles_active / self.instructions_retired

    # -- simulation -----------------------------------------------------------

    def reset(self) -> None:
        super().reset()
        self.state.reset()
        self._fsm = S_HALT
        self._instr = None
        self._txn = None
        self._mem_settle = 0
        self.paused = False
        self.cycles_active = 0
        self.cycles_stalled = 0
        self.instructions_retired = 0
        self._burst_start = None
        self._stall_start = None
        if self.pc_samples is not None:
            self.pc_samples = {}
        self._call_key = ()
        self._cur_pc = 0

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict:
        st = self.state
        txn = self._txn
        return {
            "regs": list(st.regs),
            "pc": st.pc,
            "sp": st.sp,
            "flags": list(st.flags.as_tuple()),
            "halted": st.halted,
            "fsm": self._fsm,
            "instr": None if self._instr is None else isa.encode(self._instr),
            "txn": (
                None
                if txn is None
                else [txn.is_write, txn.addr, txn.value, txn.done]
            ),
            "mem_settle": self._mem_settle,
            "paused": self.paused,
            "cycles_active": self.cycles_active,
            "cycles_stalled": self.cycles_stalled,
            "instructions_retired": self.instructions_retired,
            "now": self._now,
            "burst_start": self._burst_start,
            "burst_base": self._burst_base,
            "stall_start": self._stall_start,
            "pc_samples": (
                None
                if self.pc_samples is None
                else [
                    [list(stack), pc, n]
                    for (stack, pc), n in sorted(self.pc_samples.items())
                ]
            ),
            "cur_pc": self._cur_pc,
            "call_key": list(self._call_key),
        }

    def restore_state(self, state: dict) -> None:
        st = self.state
        st.regs[:] = state["regs"]
        st.pc = state["pc"]
        st.sp = state["sp"]
        n, z, c, v = state["flags"]
        st.flags.n, st.flags.z, st.flags.c, st.flags.v = n, z, c, v
        st.halted = state["halted"]
        self._fsm = state["fsm"]
        instr = state["instr"]
        self._instr = None if instr is None else isa.decode(instr)
        txn = state["txn"]
        if txn is None:
            self._txn = None
        else:
            is_write, addr, value, done = txn
            t = Transaction(is_write, addr, value)
            t.done = done
            self._txn = t
        self._mem_settle = state["mem_settle"]
        self.paused = state["paused"]
        self.cycles_active = state["cycles_active"]
        self.cycles_stalled = state["cycles_stalled"]
        self.instructions_retired = state["instructions_retired"]
        self._now = state["now"]
        self._burst_start = state["burst_start"]
        self._burst_base = state["burst_base"]
        self._stall_start = state["stall_start"]
        samples = state["pc_samples"]
        if samples is None:
            self.pc_samples = None
        else:
            self.pc_samples = {
                (tuple(stack), pc): n for stack, pc, n in samples
            }
        self._cur_pc = state["cur_pc"]
        self._call_key = tuple(state["call_key"])

    def eval(self, cycle: int) -> None:
        if self._fsm == S_HALT:
            return
        self.cycles_active += 1
        if self.sink is not None:
            self._telemetry_tick(cycle)
        if self.pc_samples is not None:
            # FETCH cycles (and pause-at-fetch stalls) belong to the
            # instruction about to be fetched; later FSM states to the
            # instruction fetched earlier.
            pc = self.state.pc if self._fsm == S_FETCH else self._cur_pc
            key = (self._call_key, pc)
            self.pc_samples[key] = self.pc_samples.get(key, 0) + 1
        if self._fsm == S_FETCH:
            if self.paused:
                self.cycles_stalled += 1
                return
            self._do_fetch()
        elif self._fsm == S_EXEC:
            self._do_exec()
        elif self._fsm == S_MEM:
            self._do_mem()
        elif self._fsm == S_WRITE:
            self._do_write()

    # -- FSM states --------------------------------------------------------------

    def _do_fetch(self) -> None:
        if self.pc_samples is not None:
            self._cur_pc = self.state.pc
        word = self.bus.fetch(self.state.pc)
        self._instr = isa.decode(word)
        self.state.pc = (self.state.pc + 1) & MASK16
        self._fsm = S_EXEC

    def _retire(self, next_state: int = S_FETCH) -> None:
        self.instructions_retired += 1
        self._instr = None
        self._txn = None
        self._fsm = next_state
        if next_state == S_HALT and self.sink is not None:
            self._end_burst()

    # -- telemetry (all under a single `if self.sink` in eval) ---------------

    def _telemetry_tick(self, cycle: int) -> None:
        """Track execution bursts and stall spans; runs once per active
        cycle, only while a sink is attached."""
        self._now = cycle
        if self._burst_start is None:
            self._burst_start = cycle
            self._burst_base = self.instructions_retired
            self.sink.instant(self.name, "activate", cycle)
        stalled = self.stalled or (self.paused and self._fsm == S_FETCH)
        if stalled:
            if self._stall_start is None:
                self._stall_start = cycle
        elif self._stall_start is not None:
            self.sink.complete(
                self.name,
                "stall",
                self._stall_start,
                cycle - self._stall_start,
            )
            self._stall_start = None

    def _end_burst(self) -> None:
        if self._burst_start is None:
            return
        self.sink.complete(
            self.name,
            "exec",
            self._burst_start,
            self._now + 1 - self._burst_start,
            retired=self.instructions_retired - self._burst_base,
        )
        self._burst_start = None

    def _do_exec(self) -> None:
        instr = self._instr
        assert instr is not None
        st = self.state
        regs = st.regs
        flags = st.flags
        m = instr.mnemonic

        if m == "ADD":
            st.set_reg(instr.rt, alu.add(regs[instr.rs1], regs[instr.rs2], flags))
        elif m == "ADDC":
            st.set_reg(
                instr.rt,
                alu.add(regs[instr.rs1], regs[instr.rs2], flags, carry_in=int(flags.c)),
            )
        elif m == "SUB":
            st.set_reg(instr.rt, alu.sub(regs[instr.rs1], regs[instr.rs2], flags))
        elif m == "SUBC":
            st.set_reg(
                instr.rt,
                alu.sub(regs[instr.rs1], regs[instr.rs2], flags, borrow_in=int(flags.c)),
            )
        elif m == "AND":
            st.set_reg(instr.rt, alu.logic_and(regs[instr.rs1], regs[instr.rs2], flags))
        elif m == "OR":
            st.set_reg(instr.rt, alu.logic_or(regs[instr.rs1], regs[instr.rs2], flags))
        elif m == "XOR":
            st.set_reg(instr.rt, alu.logic_xor(regs[instr.rs1], regs[instr.rs2], flags))
        elif m == "LDL":
            st.set_reg(instr.rt, (regs[instr.rt] & 0xFF00) | instr.imm)
        elif m == "LDH":
            st.set_reg(instr.rt, (instr.imm << 8) | (regs[instr.rt] & 0x00FF))
        elif m == "NOT":
            st.set_reg(instr.rt, alu.logic_not(regs[instr.rs1], flags))
        elif m == "SL0":
            st.set_reg(instr.rt, alu.shift_left(regs[instr.rs1], 0, flags))
        elif m == "SL1":
            st.set_reg(instr.rt, alu.shift_left(regs[instr.rs1], 1, flags))
        elif m == "SR0":
            st.set_reg(instr.rt, alu.shift_right(regs[instr.rs1], 0, flags))
        elif m == "SR1":
            st.set_reg(instr.rt, alu.shift_right(regs[instr.rs1], 1, flags))
        elif m == "MOV":
            st.set_reg(instr.rt, regs[instr.rs1])
        elif m == "LDSP":
            st.sp = regs[instr.rs1]
        elif m == "RDSP":
            st.set_reg(instr.rt, st.sp)
        elif m == "NOP":
            pass
        elif m == "HALT":
            st.halted = True
            self._retire(S_HALT)
            return
        elif m in ("JMPR", "JMPNR", "JMPZR", "JMPCR", "JMPVR"):
            if condition_met(st, instr.spec.sub):
                st.pc = regs[instr.rs1]
        elif m in ("JMPD", "JMPND", "JMPZD", "JMPCD", "JMPVD"):
            if condition_met(st, instr.spec.sub):
                st.pc = (st.pc + instr.disp) & MASK16
        elif m == "LD":
            addr = (regs[instr.rs1] + regs[instr.rs2]) & MASK16
            self._txn = self.bus.read(addr)
            self._mem_settle = 1
            self._fsm = S_MEM
            return
        elif m == "POP":
            st.sp = (st.sp + 1) & MASK16
            self._txn = self.bus.read(st.sp)
            self._mem_settle = 1
            self._fsm = S_MEM
            return
        elif m == "RTS":
            st.sp = (st.sp + 1) & MASK16
            self._txn = self.bus.read(st.sp)
            self._mem_settle = 1
            self._fsm = S_MEM
            return
        elif m == "ST":
            addr = (regs[instr.rs1] + regs[instr.rs2]) & MASK16
            self._txn = self.bus.write(addr, regs[instr.rt])
            self._fsm = S_WRITE
            return
        elif m == "PUSH":
            self._txn = self.bus.write(st.sp, regs[instr.rs1])
            st.sp = (st.sp - 1) & MASK16
            self._fsm = S_WRITE
            return
        elif m in ("JSRR", "JSRD"):
            if self.pc_samples is not None:
                self._call_key = self._call_key + (self._cur_pc,)
            self._txn = self.bus.write(st.sp, st.pc)
            st.sp = (st.sp - 1) & MASK16
            if m == "JSRR":
                st.pc = regs[instr.rs1]
            else:
                st.pc = (st.pc + instr.disp) & MASK16
            self._fsm = S_WRITE
            return
        else:  # pragma: no cover - the spec table is closed
            raise NotImplementedError(m)
        self._retire()

    def _do_mem(self) -> None:
        if self._mem_settle > 0:
            self._mem_settle -= 1
            return
        txn = self._txn
        assert txn is not None
        if not txn.done:
            self.cycles_stalled += 1
            return
        instr = self._instr
        assert instr is not None
        if instr.mnemonic in _MEM_TO_PC:
            self.state.pc = txn.value & MASK16
            if self.pc_samples is not None and self._call_key:
                self._call_key = self._call_key[:-1]
        else:
            self.state.set_reg(instr.rt, txn.value)
        self._retire()

    def _do_write(self) -> None:
        txn = self._txn
        assert txn is not None
        if not txn.done:
            self.cycles_stalled += 1
            return
        self._retire()
