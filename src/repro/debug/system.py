"""The full-system time-travel debugger.

:class:`SystemDebugger` wraps one live
:class:`~repro.core.platform.PlatformSession` (system model + simulator
+ host software) behind the same scriptable command interface as the
R8-only :class:`~repro.r8.debugger.Debugger` — ``execute`` one line,
get its textual output back — and delegates the per-core commands
(``regs``/``mem``/``dis``/``where``/``break``) to per-processor R8
debuggers through :class:`CoreAdapter`.

Break conditions span every IP:

* ``break <pid> <addr>`` — PC breakpoint on either CPU (edge-triggered
  per instruction visit, so multi-cycle FSM states hit once).
* ``watch <target> <addr> [r|w|rw]`` — memory watchpoint on a
  processor's local memory or a Memory IP.  Hooked below the service
  FSM, so it fires for the core's own loads/stores *and* for NUMA
  traffic arriving over the NoC — a remote write into ``proc2``'s
  memory trips ``watch 2 0x300`` no matter who issued it.  Instruction
  fetches go through the hook-free fast path and never fire.
* ``pbreak <target>`` — a packet finishing reassembly at an IP's
  network interface.
* ``lbreak <x> <y> <port>`` — activity (a tx toggle) on one router
  output link.
* ``hbreak printf|scanf|readreturn|any`` — a board->host frame landing
  at the host.
* ``expr <name> <python-expr>`` — a watch expression over the live
  ``probe_state`` probes; fires on a falsy->truthy edge.

Time travel restores the nearest ring checkpoint at or before the
target cycle and deterministically re-executes with all break
conditions disarmed (the telemetry stream is truncated to the
checkpoint's high-water mark first, so replay re-emits the tail without
duplicates).  Because the whole simulation is bit-deterministic, a
condition hit, reversed over, and run again hits at the same cycle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..noc.flit import encode_address
from ..noc.routing import Port
from ..r8.assembler import ObjectCode, assemble
from ..r8.debugger import Debugger as R8Debugger
from ..r8.debugger import DebuggerError
from ..serial import protocol
from ..sim import (
    CheckpointError,
    CheckpointRing,
    SimulationTimeout,
    VcdWriter,
    save_checkpoint,
)
from ..sim.checkpoint import restore_checkpoint

#: board->host frame class name -> hbreak kind token
_FRAME_KINDS = {
    "ReadReturnFrame": "readreturn",
    "PrintfFrame": "printf",
    "ScanfFrame": "scanf",
}

_HELP = """\
system debugger commands:
  cycle                       current simulation cycle
  step [n]                    advance n cycles (default 1)
  continue [max]              run until a break condition or all HALT
  break <pid> <addr>          PC breakpoint (symbol or address)
  unbreak <pid> <addr>        clear a PC breakpoint
  watch <tgt> <addr> [r|w|rw] memory watchpoint (default w)
  unwatch <tgt> <addr>        clear a memory watchpoint
  pbreak <tgt> / punbreak     break on packet arrival at an NI
  lbreak <x> <y> <port>       break on activity on a router output link
  lunbreak <x> <y> <port>     clear a link break
  hbreak <kind> / hunbreak    break on host frames (printf|scanf|readreturn|any)
  expr <name> <python-expr>   watch expression over probe_state dicts
  unexpr <name>               drop a watch expression
  info                        all break conditions, ring state, last hits
  regs <pid>                  core registers (delegated)
  mem <tgt> <addr> [n]        dump memory words
  dis <pid> <addr> [n]        disassemble (delegated)
  where <pid>                 PC context (delegated)
  probe <tgt>                 probe_state as JSON
  sync                        host baud sync
  load <pid> <file>           load a program through the host
  activate <pid>              activate a processor
  hostwrite <tgt> <addr> <w>+ queue a host write (non-blocking)
  hostread <tgt> <addr> <n>   blocking host read
  answer <value>              answer the oldest pending scanf
  checkpoint <file>           save a full-system checkpoint
  restore <file>              restore a checkpoint file
  ring                        checkpoint ring summary
  reverse-step [n]            go back n cycles (default 1; alias rstep)
  goto <cycle>                travel to an absolute cycle
  vcdslice <file>             write the captured waveform window as VCD
targets: a processor id (1, 2, ...), memN, or serial"""


class CoreAdapter:
    """R8Simulator-shaped facade over one :class:`ProcessorIp`.

    Exposes exactly the surface the r8 debugger's inspection commands
    touch — ``state``, ``dump_memory``, ``memory_words`` and the
    ``breakpoints``/``watchpoints`` sets — so per-core ``regs``, ``mem``,
    ``dis``, ``where``, ``break`` and ``info`` work unchanged against a
    core embedded in the full system.  Memory reads go through the
    hook-free ``fetch_word`` path: inspecting memory from the debugger
    must never trip a watchpoint.
    """

    def __init__(self, proc):
        self.proc = proc
        self.breakpoints: Set[int] = set()
        self.watchpoints: Set[int] = set()

    @property
    def state(self):
        return self.proc.cpu.state

    @property
    def memory_words(self) -> int:
        return self.proc.banks.depth

    def dump_memory(self, start: int, count: int) -> List[int]:
        banks = self.proc.banks
        return [banks.fetch_word((start + i) % banks.depth) for i in range(count)]


def _load_object(path: str) -> ObjectCode:
    """Object file or assembly source, by extension (CLI convention)."""
    text = Path(path).read_text()
    if path.endswith((".obj", ".hex")):
        return ObjectCode.from_text(text)
    return assemble(text, filename=path)


class SystemDebugger:
    """Scriptable debugger over one live platform session.

    Attaching starts the periodic checkpoint ring (the origin entry is
    recorded immediately and pinned, bounding how far back time travel
    reaches) and a VCD capture of the serial lines, and registers one
    kernel watcher evaluating the cycle-sampled break conditions.
    """

    def __init__(
        self,
        session,
        checkpoint_interval: int = 1000,
        checkpoint_capacity: int = 8,
        vcd_wires=None,
    ):
        self.session = session
        self.sim = session.sim
        self.system = session.system
        self.host = session.host
        self.sink = session.telemetry
        self.ring = CheckpointRing(
            self.sim,
            interval=checkpoint_interval,
            capacity=checkpoint_capacity,
            sink=self.sink,
        ).attach()
        # advertise the ring so the live observation plane can mark
        # restore points in its frames without knowing about debuggers
        self.sim.checkpoint_ring = self.ring
        self.vcd = VcdWriter(
            list(vcd_wires)
            if vcd_wires is not None
            else [self.system.rxd, self.system.txd]
        )
        self.sim.add_watcher(self.vcd.sample)

        self._cores: Dict[int, R8Debugger] = {}
        #: (target name, address) -> "r" | "w" | "rw"
        self._watch_conds: Dict[Tuple[str, int], str] = {}
        self._hooked_banks: Set[str] = set()
        self._pbreaks: Set[str] = set()
        self._hooked_nis: Set[str] = set()
        self._hbreaks: Set[str] = set()
        self._frame_hooked = False
        #: (x, y, port) -> last seen tx value (edge detector)
        self._lbreaks: Dict[Tuple[int, int, Port], Optional[int]] = {}
        #: name -> {"src", "code", "last"}
        self._exprs: Dict[str, dict] = {}
        self._last_pc: Dict[int, int] = {}
        self._hits: List[str] = []
        self._replaying = False
        self._pending_record = False
        self._hook_host_sends()

        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "help": lambda args: _HELP,
            "cycle": self._cmd_cycle,
            "step": self._cmd_step,
            "continue": self._cmd_continue,
            "break": self._cmd_break,
            "unbreak": self._cmd_unbreak,
            "watch": self._cmd_watch,
            "unwatch": self._cmd_unwatch,
            "pbreak": self._cmd_pbreak,
            "punbreak": self._cmd_punbreak,
            "lbreak": self._cmd_lbreak,
            "lunbreak": self._cmd_lunbreak,
            "hbreak": self._cmd_hbreak,
            "hunbreak": self._cmd_hunbreak,
            "expr": self._cmd_expr,
            "unexpr": self._cmd_unexpr,
            "info": self._cmd_info,
            "regs": self._cmd_delegate,
            "dis": self._cmd_delegate,
            "where": self._cmd_delegate,
            "mem": self._cmd_mem,
            "probe": self._cmd_probe,
            "sync": self._cmd_sync,
            "load": self._cmd_load,
            "activate": self._cmd_activate,
            "hostwrite": self._cmd_hostwrite,
            "hostread": self._cmd_hostread,
            "answer": self._cmd_answer,
            "checkpoint": self._cmd_checkpoint,
            "restore": self._cmd_restore,
            "ring": lambda args: self.ring.describe(),
            "reverse-step": self._cmd_reverse_step,
            "goto": self._cmd_goto,
            "vcdslice": self._cmd_vcdslice,
        }
        self._aliases = {"c": "continue", "rstep": "reverse-step", "b": "break"}
        self.sim.add_watcher(self._on_cycle)
        self._prime()

    def detach(self) -> None:
        """Remove the debugger's kernel watchers (hooks stay installed
        but go inert: their condition sets are only mutable through the
        debugger)."""
        self.sim.remove_watcher(self._on_cycle)
        self.sim.remove_watcher(self.vcd.sample)
        self.ring.detach()
        if getattr(self.sim, "checkpoint_ring", None) is self.ring:
            self.sim.checkpoint_ring = None

    # -- command dispatch --------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns its textual output."""
        parts = line.split()
        if not parts:
            return ""
        name, args = parts[0].lower(), parts[1:]
        name = self._aliases.get(name, name)
        handler = self._commands.get(name)
        if handler is None:
            raise DebuggerError(
                f"unknown command {name!r}; known: {sorted(self._commands)}"
            )
        if name in ("regs", "dis", "where"):
            return handler([name] + args)
        return handler(args)

    def run_script(self, script: str) -> List[str]:
        """Execute a newline-separated command script."""
        outputs = []
        for line in script.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                outputs.append(self.execute(line))
        return outputs

    # -- target resolution -------------------------------------------------

    def _pid(self, token: str) -> int:
        tok = token[4:] if token.startswith("proc") else token
        try:
            pid = int(tok, 0)
        except ValueError:
            raise DebuggerError(f"not a processor id: {token!r}") from None
        if pid not in self.system.processors:
            raise DebuggerError(
                f"no processor {pid}; have {sorted(self.system.processors)}"
            )
        return pid

    def _core(self, pid: int) -> R8Debugger:
        if pid not in self._cores:
            self._cores[pid] = R8Debugger(
                simulator=CoreAdapter(self.system.processors[pid])
            )
        dbg = self._cores[pid]
        # symbol tables live on the ProcessorIp (stashed by the host at
        # load time, and rebuilt by checkpoint restore) — refresh so
        # `break main` resolves after either path
        symbols = self.system.processors[pid].symbols
        if symbols:
            dbg.symbols.update(symbols)
        return dbg

    def _banks(self, token: str):
        """(canonical name, MemoryBanks, pid-or-None) for a memory target."""
        if token.startswith("mem"):
            try:
                mem = self.system.memories[int(token[3:] or "0")]
            except (ValueError, IndexError):
                raise DebuggerError(f"no memory IP {token!r}") from None
            return mem.name, mem.banks, None
        pid = self._pid(token)
        proc = self.system.processors[pid]
        return proc.name, proc.banks, pid

    def _ni(self, token: str):
        """(canonical name, NetworkInterface) for any NoC endpoint."""
        if token == "serial":
            return "serial", self.system.serial.ni
        if token.startswith("mem"):
            name, _, _ = self._banks(token)
            return name, self.system.memories[int(token[3:] or "0")].ni
        pid = self._pid(token)
        proc = self.system.processors[pid]
        return proc.name, proc.ni

    def _addr_of(self, token: str) -> Tuple[int, int]:
        """NoC (x, y) address of a target, for host transactions."""
        if token == "serial":
            return self.system.config.serial
        if token.startswith("mem"):
            try:
                return self.system.config.memories[int(token[3:] or "0")]
            except (ValueError, IndexError):
                raise DebuggerError(f"no memory IP {token!r}") from None
        return self.system.config.processors[self._pid(token)]

    def _resolve(self, token: str, addr_token: str) -> int:
        """Resolve an address argument, using the core's symbol table
        when the target is a processor."""
        if not token.startswith("mem") and token != "serial":
            return self._core(self._pid(token)).resolve(addr_token)
        try:
            return int(addr_token, 0)
        except ValueError:
            raise DebuggerError(f"not an address: {addr_token!r}") from None

    # -- break machinery ---------------------------------------------------

    def _hook_host_sends(self) -> None:
        """Checkpoint after every host->board injection.

        Bytes queued on the host UART by Python calls (``sync``,
        ``load``, ``hostwrite``, scanf answers) are *inputs* to the
        simulation, not products of it, so deterministic replay can only
        reproduce them from a checkpoint taken after they were queued.
        Wrapping the host's send methods marks a ring record, which the
        cycle watcher performs at the next cycle boundary (the send may
        happen mid-cycle, e.g. an auto-answered scanf inside ``eval``,
        where snapshotting would be unsound).
        """
        host = self.host

        def mark() -> None:
            if not self._replaying:
                self._pending_record = True

        orig_byte, orig_bytes = host.uart_tx.send_byte, host.uart_tx.send_bytes

        def send_byte(byte: int):
            result = orig_byte(byte)
            mark()
            return result

        def send_bytes(data):
            result = orig_bytes(data)
            mark()
            return result

        host.uart_tx.send_byte = send_byte
        host.uart_tx.send_bytes = send_bytes

    def _record_hit(self, desc: str) -> None:
        if self._replaying:
            return
        self._hits.append(f"{desc} at cycle {self.sim.cycle}")
        if self.sink is not None:
            self.sink.instant("checkpoint", "debug_break", self.sim.cycle, hit=desc)

    def _on_cycle(self, cycle: int) -> None:
        if self._pending_record:
            self._pending_record = False
            self.ring.record()
        armed = not self._replaying
        for pid, dbg in self._cores.items():
            bps = dbg.sim.breakpoints
            if not bps:
                continue
            proc = self.system.processors[pid]
            pc = proc.cpu.state.pc
            if pc != self._last_pc.get(pid):
                self._last_pc[pid] = pc
                if armed and pc in bps and not proc.cpu.halted:
                    self._record_hit(f"breakpoint proc{pid} pc={pc:04x}")
        for key, last in self._lbreaks.items():
            x, y, port = key
            tx = self.system.mesh.router((x, y)).out_ch[port].tx.value
            if tx != last:
                self._lbreaks[key] = tx
                if armed and last is not None:
                    self._record_hit(
                        f"link activity router({x},{y}).{port.name.lower()}"
                    )
        if self._exprs:
            env = self._expr_env()
            for name, rec in self._exprs.items():
                try:
                    value = bool(eval(rec["code"], {"__builtins__": {}}, env))
                except Exception:
                    value = False
                if value and not rec["last"] and armed:
                    self._record_hit(f"expression {name!r} ({rec['src']}) true")
                rec["last"] = value

    def _expr_env(self) -> dict:
        env = {"cycle": self.sim.cycle, "stats": self.system.stats}
        for pid, proc in self.system.processors.items():
            env[f"proc{pid}"] = proc.probe_state()
        return env

    def _prime(self) -> None:
        """Reset every edge detector to the current state so resuming
        (after attach, restore or replay) never fires a stale edge."""
        for pid, proc in self.system.processors.items():
            self._last_pc[pid] = proc.cpu.state.pc
        for key in self._lbreaks:
            x, y, port = key
            self._lbreaks[key] = (
                self.system.mesh.router((x, y)).out_ch[port].tx.value
            )
        if self._exprs:
            env = self._expr_env()
            for rec in self._exprs.values():
                try:
                    rec["last"] = bool(
                        eval(rec["code"], {"__builtins__": {}}, env)
                    )
                except Exception:
                    rec["last"] = False

    def _ensure_bank_hook(self, name: str, banks) -> None:
        if name in self._hooked_banks:
            return

        def hook(is_write: bool, addr: int, value: int, _name=name) -> None:
            mode = self._watch_conds.get((_name, addr))
            if mode is None:
                return
            if ("w" if is_write else "r") not in mode:
                return
            kind = "write" if is_write else "read"
            self._record_hit(
                f"{kind} watchpoint {_name}@{addr:04x} value={value:04x}"
            )

        banks.watch = hook
        self._hooked_banks.add(name)

    def _ensure_ni_hook(self, name: str, ni) -> None:
        if name in self._hooked_nis:
            return

        def hook(_ni, packet, cycle, _name=name) -> None:
            if _name in self._pbreaks:
                self._record_hit(
                    f"packet at {_name} ({len(packet.payload)} payload flits)"
                )

        ni.on_packet = hook
        self._hooked_nis.add(name)

    def _ensure_frame_hook(self) -> None:
        if self._frame_hooked:
            return

        def hook(message, cycle) -> None:
            kind = _FRAME_KINDS.get(type(message).__name__, "other")
            if "any" in self._hbreaks or kind in self._hbreaks:
                self._record_hit(f"host {kind} frame")

        self.host.on_frame = hook
        self._frame_hooked = True

    # -- execution commands ------------------------------------------------

    def _cmd_cycle(self, args: List[str]) -> str:
        return f"cycle {self.sim.cycle}"

    def _cmd_step(self, args: List[str]) -> str:
        count = int(args[0]) if args else 1
        self._hits.clear()
        self.sim.step(count)
        out = [f"cycle {self.sim.cycle}"]
        out += self._hits
        return "\n".join(out)

    def _quiet(self) -> bool:
        """Nothing left to run: every core halted, the NoC drained and
        the host link silent (so a queued ``hostwrite`` still lands
        before an otherwise-idle ``continue`` returns)."""
        return (
            self.system.all_halted
            and self.system.idle
            and not self.host.uart_tx.busy
            and self.host.is_quiescent()
        )

    def _cmd_continue(self, args: List[str]) -> str:
        budget = int(args[0]) if args else 1_000_000
        self._hits.clear()
        self._prime()
        try:
            self.sim.run_until(
                lambda: bool(self._hits) or self._quiet(),
                max_cycles=budget,
                label="debugger continue",
            )
        except SimulationTimeout:
            return f"no break condition hit in {budget} cycles (cycle {self.sim.cycle})"
        if self._hits:
            return "\n".join(self._hits + [f"stopped at cycle {self.sim.cycle}"])
        return f"system quiescent at cycle {self.sim.cycle}"

    # -- break condition commands ------------------------------------------

    def _cmd_break(self, args: List[str]) -> str:
        if len(args) < 2:
            raise DebuggerError("break needs <pid> <addr>")
        return self._core(self._pid(args[0])).execute(f"break {args[1]}")

    def _cmd_unbreak(self, args: List[str]) -> str:
        if len(args) < 2:
            raise DebuggerError("unbreak needs <pid> <addr>")
        return self._core(self._pid(args[0])).execute(f"unbreak {args[1]}")

    def _cmd_watch(self, args: List[str]) -> str:
        if len(args) < 2:
            raise DebuggerError("watch needs <target> <addr> [r|w|rw]")
        mode = args[2].lower() if len(args) > 2 else "w"
        if mode not in ("r", "w", "rw"):
            raise DebuggerError(f"watch mode must be r, w or rw, not {mode!r}")
        name, banks, pid = self._banks(args[0])
        addr = self._resolve(args[0], args[1])
        self._watch_conds[(name, addr)] = mode
        self._ensure_bank_hook(name, banks)
        if pid is not None:
            self._core(pid).sim.watchpoints.add(addr)
        return f"watchpoint ({mode}) set at {name}@{addr:04x}"

    def _cmd_unwatch(self, args: List[str]) -> str:
        if len(args) < 2:
            raise DebuggerError("unwatch needs <target> <addr>")
        name, _, pid = self._banks(args[0])
        addr = self._resolve(args[0], args[1])
        self._watch_conds.pop((name, addr), None)
        if pid is not None:
            self._core(pid).sim.watchpoints.discard(addr)
        return f"watchpoint cleared at {name}@{addr:04x}"

    def _cmd_pbreak(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("pbreak needs a target")
        name, ni = self._ni(args[0])
        self._pbreaks.add(name)
        self._ensure_ni_hook(name, ni)
        return f"packet break set at {name}"

    def _cmd_punbreak(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("punbreak needs a target")
        name, _ = self._ni(args[0])
        self._pbreaks.discard(name)
        return f"packet break cleared at {name}"

    def _parse_link(self, args: List[str]) -> Tuple[int, int, Port]:
        if len(args) < 3:
            raise DebuggerError("link breaks need <x> <y> <port>")
        x, y = int(args[0], 0), int(args[1], 0)
        if (x, y) not in self.system.mesh.routers:
            raise DebuggerError(f"no router at ({x}, {y})")
        try:
            port = Port[args[2].upper()]
        except KeyError:
            raise DebuggerError(
                f"port must be one of {[p.name.lower() for p in Port]}"
            ) from None
        if self.system.mesh.router((x, y)).out_ch[port] is None:
            raise DebuggerError(f"router ({x}, {y}) has no {args[2]} output")
        return x, y, port

    def _cmd_lbreak(self, args: List[str]) -> str:
        x, y, port = self._parse_link(args)
        self._lbreaks[(x, y, port)] = (
            self.system.mesh.router((x, y)).out_ch[port].tx.value
        )
        return f"link break set on router({x},{y}).{port.name.lower()}"

    def _cmd_lunbreak(self, args: List[str]) -> str:
        x, y, port = self._parse_link(args)
        self._lbreaks.pop((x, y, port), None)
        return f"link break cleared on router({x},{y}).{port.name.lower()}"

    def _cmd_hbreak(self, args: List[str]) -> str:
        kinds = set(_FRAME_KINDS.values()) | {"any"}
        if not args or args[0].lower() not in kinds:
            raise DebuggerError(f"hbreak needs one of {sorted(kinds)}")
        self._hbreaks.add(args[0].lower())
        self._ensure_frame_hook()
        return f"host break set on {args[0].lower()} frames"

    def _cmd_hunbreak(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("hunbreak needs a frame kind")
        self._hbreaks.discard(args[0].lower())
        return f"host break cleared on {args[0].lower()} frames"

    def _cmd_expr(self, args: List[str]) -> str:
        if len(args) < 2:
            raise DebuggerError("expr needs <name> <python-expr>")
        name, src = args[0], " ".join(args[1:])
        try:
            code = compile(src, f"<expr {name}>", "eval")
        except SyntaxError as exc:
            raise DebuggerError(f"bad expression: {exc}") from exc
        self._exprs[name] = {"src": src, "code": code, "last": False}
        self._prime()
        return f"expression {name!r} armed: {src}"

    def _cmd_unexpr(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("unexpr needs a name")
        self._exprs.pop(args[0], None)
        return f"expression {args[0]!r} dropped"

    def _cmd_info(self, args: List[str]) -> str:
        lines = [f"cycle {self.sim.cycle}", self.ring.describe()]
        bps = [
            f"  proc{pid} {addr:04x}"
            for pid, dbg in sorted(self._cores.items())
            for addr in sorted(dbg.sim.breakpoints)
        ]
        lines.append("breakpoints:" if bps else "breakpoints: none")
        lines += bps
        wps = [
            f"  {name}@{addr:04x} ({mode})"
            for (name, addr), mode in sorted(self._watch_conds.items())
        ]
        lines.append("watchpoints:" if wps else "watchpoints: none")
        lines += wps
        if self._pbreaks:
            lines.append("packet breaks: " + ", ".join(sorted(self._pbreaks)))
        if self._lbreaks:
            lines.append(
                "link breaks: "
                + ", ".join(
                    f"({x},{y}).{p.name.lower()}"
                    for x, y, p in sorted(self._lbreaks)
                )
            )
        if self._hbreaks:
            lines.append("host breaks: " + ", ".join(sorted(self._hbreaks)))
        for name, rec in sorted(self._exprs.items()):
            lines.append(f"expression {name}: {rec['src']}")
        if self._hits:
            lines.append("last hits:")
            lines += [f"  {h}" for h in self._hits]
        return "\n".join(lines)

    # -- inspection commands -----------------------------------------------

    def _cmd_delegate(self, args: List[str]) -> str:
        cmd, args = args[0], args[1:]
        if not args:
            raise DebuggerError(f"{cmd} needs a processor id")
        pid = self._pid(args[0])
        return self._core(pid).execute(" ".join([cmd] + args[1:]))

    def _cmd_mem(self, args: List[str]) -> str:
        if len(args) < 2:
            raise DebuggerError("mem needs <target> <addr> [n]")
        if not args[0].startswith("mem"):
            pid = self._pid(args[0])
            return self._core(pid).execute(" ".join(["mem"] + args[1:]))
        name, banks, _ = self._banks(args[0])
        start = self._resolve(args[0], args[1])
        count = int(args[2]) if len(args) > 2 else 8
        words = [
            banks.fetch_word((start + i) % banks.depth) for i in range(count)
        ]
        lines = []
        for i in range(0, len(words), 8):
            chunk = " ".join(f"{w:04x}" for w in words[i : i + 8])
            lines.append(f"{start + i:04x}: {chunk}")
        return "\n".join(lines)

    def _cmd_probe(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("probe needs a target")
        if args[0].startswith("mem") or args[0] == "serial":
            _, ni = self._ni(args[0])
            state = ni.probe_state()
        else:
            state = self.system.processors[self._pid(args[0])].probe_state()
        return json.dumps(state, sort_keys=True, default=list)

    # -- host commands ------------------------------------------------------

    def _cmd_sync(self, args: List[str]) -> str:
        if self.host.synced:
            return "already synced"
        self.host.sync()
        return f"synced at cycle {self.sim.cycle}"

    def _cmd_load(self, args: List[str]) -> str:
        if len(args) < 2:
            raise DebuggerError("load needs <pid> <file>")
        pid = self._pid(args[0])
        try:
            obj = _load_object(args[1])
        except OSError as exc:
            raise DebuggerError(f"cannot read {args[1]}: {exc}") from exc
        if not self.host.synced:
            self.host.sync()
        self.host.load_program(self.system.config.processors[pid], obj)
        return f"{obj.size_words} words -> proc{pid}"

    def _cmd_activate(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("activate needs a pid")
        pid = self._pid(args[0])
        self.host.activate(self.system.config.processors[pid])
        return f"proc{pid} activated at cycle {self.sim.cycle}"

    def _cmd_hostwrite(self, args: List[str]) -> str:
        if len(args) < 3:
            raise DebuggerError("hostwrite needs <target> <addr> <word>...")
        addr = self._resolve(args[0], args[1])
        words = [int(w, 0) & 0xFFFF for w in args[2:]]
        flit = encode_address(*self._addr_of(args[0]))
        # non-blocking by design: the frame is queued on the host UART
        # and lands while a later `continue` runs, so a watchpoint on
        # the written cell catches the write in flight
        self.host.uart_tx.send_bytes(protocol.frame_write(flit, addr, words))
        return f"write queued: {len(words)} word(s) -> {args[0]}@{addr:04x}"

    def _cmd_hostread(self, args: List[str]) -> str:
        if len(args) < 2:
            raise DebuggerError("hostread needs <target> <addr> [n]")
        addr = self._resolve(args[0], args[1])
        count = int(args[2]) if len(args) > 2 else 1
        words = self.host.read_memory(self._addr_of(args[0]), addr, count)
        return " ".join(f"{w:04x}" for w in words)

    def _cmd_answer(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("answer needs a value")
        self.host.answer_scanf(int(args[0], 0))
        return f"scanf answered with {int(args[0], 0):#06x}"

    # -- time travel --------------------------------------------------------

    def _cmd_checkpoint(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("checkpoint needs a file path")
        meta = {
            "mesh": list(self.system.config.mesh),
            "processors": sorted(self.system.processors),
        }
        path = save_checkpoint(self.sim, args[0], meta=meta)
        return f"checkpoint (cycle {self.sim.cycle}) -> {path}"

    def _cmd_restore(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("restore needs a file path")
        try:
            cycle = restore_checkpoint(self.sim, args[0])
        except CheckpointError as exc:
            raise DebuggerError(str(exc)) from exc
        self._rewind_vcd(cycle)
        self._prime()
        self._hits.clear()
        return f"restored to cycle {cycle}"

    def _cmd_reverse_step(self, args: List[str]) -> str:
        count = int(args[0]) if args else 1
        if count < 1:
            raise DebuggerError("reverse-step needs a positive count")
        origin = self.ring.entries[0].cycle
        target = max(origin, self.sim.cycle - count)
        self._travel(target)
        return f"cycle {self.sim.cycle}"

    def _cmd_goto(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("goto needs a cycle number")
        target = int(args[0], 0)
        if target < self.ring.entries[0].cycle:
            raise DebuggerError(
                f"cycle {target} is before the origin checkpoint "
                f"({self.ring.entries[0].cycle})"
            )
        self._travel(target)
        return f"cycle {self.sim.cycle}"

    def _travel(self, target: int) -> None:
        """Restore the nearest checkpoint at or before *target* (when
        moving backwards) and deterministically replay up to it with
        every break condition disarmed."""
        if target < self.sim.cycle:
            try:
                entry = self.ring.restore_nearest(target)
            except CheckpointError as exc:
                raise DebuggerError(str(exc)) from exc
            if self.sink is not None and entry.events_len is not None:
                self.sink.truncate_to(entry.events_len)
            self._rewind_vcd(entry.cycle)
        if target > self.sim.cycle:
            self._replaying = True
            try:
                self.sim.step(target - self.sim.cycle)
            finally:
                self._replaying = False
        self._hits.clear()
        self._prime()

    def _rewind_vcd(self, cycle: int) -> None:
        """Drop captured waveform changes after *cycle*; replay appends
        the (identical) tail again, keeping the VCD timeline monotone."""
        vcd = self.vcd
        vcd._changes = [c for c in vcd._changes if c[0] <= cycle]
        vcd._cycles = cycle
        for wire in vcd.wires:
            if isinstance(wire.value, int):
                vcd._last[wire.name] = wire.value

    def _cmd_vcdslice(self, args: List[str]) -> str:
        if not args:
            raise DebuggerError("vcdslice needs a file path")
        path = self.vcd.write(args[0])
        return f"waveform ({len(self.vcd._changes)} changes) -> {path}"
