"""Full-system interactive debugging for MultiNoC.

The paper positions MultiNoC as a teaching and prototyping platform;
:mod:`repro.r8.debugger` covers the single-core half of that story.
This package covers the whole board: :class:`SystemDebugger` drives a
live :class:`~repro.core.platform.PlatformSession` with cross-IP break
conditions (PC breakpoints on any core, memory watchpoints on local and
remote memories, packet-arrival and link-activity conditions on the
NoC, host-transaction events), watch expressions over the components'
``probe_state`` probes, and time travel (reverse-step / goto-cycle)
built on the deterministic checkpoint ring in
:mod:`repro.sim.checkpoint`.
"""

from .system import CoreAdapter, SystemDebugger

__all__ = ["CoreAdapter", "SystemDebugger"]
