#!/usr/bin/env python
"""Health monitoring walkthrough: watch a live system, then wedge it.

1. run a healthy program with the monitor attached — watchdogs and
   invariant checks stay silent, the sampler records a timeline;
2. build a bare 2x2 mesh with a *wedged* sink NI (never consumes a
   flit), inject a packet and let the deadlock watchdog localise the
   wormhole: the raised HealthViolation carries the port wait-for
   graph, per-port FIFO snapshots and last-movement cycles.
"""

import json

from repro import HealthViolation, MultiNoCPlatform
from repro.noc.mesh import Mesh
from repro.noc.ni import NetworkInterface
from repro.noc.packet import Packet
from repro.noc.stats import NetworkStats
from repro.sim import Simulator
from repro.telemetry.health import HealthMonitor

PROGRAM = """
; count down from 10, printf each value, halt.
        CLR  R0
        LDI  R2, 0xFFFF
        LDL  R1, 10
        LDL  R3, 1
loop:   ST   R1, R2, R0        ; printf(R1)
        SUB  R1, R1, R3
        JMPZD done
        JMP  loop
done:   HALT
"""


def healthy_run() -> None:
    """A monitored, sampled run of a well-behaved program."""
    session = MultiNoCPlatform.standard().launch()
    monitor = session.monitor_health(
        check_interval=32, sample_interval=200, invariants=True
    )
    session.host.sync()
    session.run(1, PROGRAM)
    print(f"printed: {session.host.monitor(1).printf_values}")
    print(f"checks run: {monitor.checks_run}, "
          f"violations: {len(monitor.violations)}")
    print("sampled timeline:")
    print(monitor.sampler.timeline(width=48))
    assert not monitor.violations, "a healthy run must stay clean"


def wedged_run() -> None:
    """A deliberately wedged mesh, diagnosed by the deadlock watchdog."""
    stats = NetworkStats()
    mesh = Mesh(2, 2, stats=stats)

    class WedgedNI(NetworkInterface):
        """A sink that never acknowledges a flit — the wormhole wedges."""

        def _eval_receiver(self, cycle):
            pass

    source = NetworkInterface("source", (0, 0), stats=stats)
    into, out = mesh.local_channels((0, 0))
    source.attach(to_router=into, from_router=out)
    sink = WedgedNI("wedged-sink", (1, 1), stats=stats)
    into, out = mesh.local_channels((1, 1))
    sink.attach(to_router=into, from_router=out)

    sim = Simulator()
    sim.add(mesh)
    sim.add(source)
    sim.add(sink)
    monitor = HealthMonitor(deadlock_cycles=400, check_interval=16)
    monitor.attach(sim, mesh=mesh, stats=stats, nis=[source, sink])

    source.send_packet(Packet(target=(1, 1), payload=[0xAB, 0xCD]))
    try:
        sim.step(5_000)
    except HealthViolation as violation:
        print(f"diagnosed: {violation}")
        print()
        print(monitor.describe())
        print()
        print("wait-for graph (JSON payload):")
        print(json.dumps(violation.details["wait_for"], indent=2))
        assert violation.kind == "deadlock"
        assert "wedged-sink.rx" in violation.details["wait_for"]["roots"]
        return
    raise AssertionError("the wedge must trip the deadlock watchdog")


def main() -> None:
    print("== healthy run ==")
    healthy_run()
    print()
    print("== wedged run ==")
    wedged_run()


if __name__ == "__main__":
    main()
