#!/usr/bin/env python
"""Fleet telemetry walkthrough: many sessions, one observation plane.

1. **aggregate** — two concurrent sessions multiplexed through one
   `TelemetryServer`: the primary session plus a second attached with
   `add_stream`, each frame tagged with its session name;
2. **watch** — fetch the `/runs` fleet document and render the fleet
   table (one row per session: cycle, sim rate, health, link-util
   sparkline), exactly as `multinoc top --url ... --fleet` would;
3. **history** — record both runs in a cross-run registry and see the
   newest records surface in the same fleet view.

The same thing from the command line:

    multinoc system a.asm --serve 9777 --linger 60 &   # session one
    multinoc top --url http://127.0.0.1:9777 --fleet   # fleet table
    multinoc runs list                                 # the history
"""

import tempfile

from repro import MultiNoCPlatform
from repro.telemetry import MeshTop, RunRegistry, TelemetryServer
from repro.telemetry.top import fetch_runs

PROGRAM = """
; count down from 20, printf each value, halt.
        CLR  R0
        LDI  R2, 0xFFFF
        LDL  R1, 20
        LDL  R3, 1
loop:   ST   R1, R2, R0        ; printf(R1)
        SUB  R1, R1, R3
        JMPZD done
        JMP  loop
done:   HALT
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        registry = RunRegistry(tmp)

        # two independent sessions, one aggregator serving them both
        alpha = MultiNoCPlatform.standard().launch()
        beta = MultiNoCPlatform.standard().launch()
        server = TelemetryServer(
            alpha.live_stream(stride=512),
            name="alpha",
            run_registry=registry,
        )
        server.add_stream("beta", beta.live_stream(stride=512))
        server.start()
        print(f"fleet aggregator at {server.address}")

        # run both workloads; interleave starts so the fleet is live
        for session in (alpha, beta):
            session.host.sync()
            session.start(1, PROGRAM)
        for session in (alpha, beta):
            session.wait_all_halted()
            session.live.force()

        # durable history: one record per run, served at /runs too
        for name, session in (("alpha", alpha), ("beta", beta)):
            record = session.record_run(
                registry=registry, meta={"session": name}, git_rev=None
            )
            print(f"recorded {name}: {record['run_id']}")

        # the fleet view, as `multinoc top --fleet` renders it
        document = fetch_runs(server.address)
        print()
        print(MeshTop(color=False).render_fleet(document))
        server.close()


if __name__ == "__main__":
    main()
