#!/usr/bin/env python
"""Live observation plane walkthrough: watch a simulation as it runs.

1. **in-process** — attach a `LiveStream` and a `MeshTop` dashboard to
   a session and run a program: the dashboard repaints on every frame
   and a subscriber callback sees the raw `multinoc-live/1` dicts;
2. **remote** — start the localhost HTTP server, then attach over HTTP
   from this same script exactly as `multinoc top --url ...` would
   from another terminal: scrape `/metrics`, fetch the latest `/frame`
   and consume the `/frames` JSONL stream.

The same thing from the command line:

    multinoc system prog.asm --top                     # in-process
    multinoc system prog.asm --serve 9777 --linger 30  # + HTTP
    multinoc top --url http://127.0.0.1:9777           # remote attach
"""

import urllib.request

from repro import MultiNoCPlatform
from repro.telemetry import MeshTop
from repro.telemetry.top import fetch_frame, stream_frames

PROGRAM = """
; count down from 20, printf each value, halt.
        CLR  R0
        LDI  R2, 0xFFFF
        LDL  R1, 20
        LDL  R3, 1
loop:   ST   R1, R2, R0        ; printf(R1)
        SUB  R1, R1, R3
        JMPZD done
        JMP  loop
done:   HALT
"""


def in_process() -> None:
    """Dashboard and subscriber attached directly to the session."""
    print("== in-process attach ==")
    session = MultiNoCPlatform.standard().launch()
    live = session.live_stream(stride=512)

    # raw frames via a subscriber (runs on the simulation thread)
    peaks = []
    live.subscribe(
        lambda frame: peaks.append(frame["packets"]["in_flight"])
    )

    # the terminal dashboard repaints on every frame; color=False keeps
    # this demo's output linear instead of clearing the screen
    MeshTop(color=False).attach(live)

    session.host.sync()
    session.run(1, PROGRAM)
    live.force()  # one final frame at the end-of-run state

    print(f"\n{live.frames_emitted} frames; peak in-flight {max(peaks)}")


def remote() -> None:
    """The same plane consumed over localhost HTTP."""
    print("\n== remote attach ==")
    session = MultiNoCPlatform.standard().launch()
    session.live_stream(stride=512)
    server = session.serve_telemetry()  # port=0: pick a free port
    print(f"serving at {server.address}")

    session.host.sync()
    session.run(1, PROGRAM)
    session.live.force()

    # Prometheus scrape — what a real monitoring stack would poll
    with urllib.request.urlopen(server.address + "/metrics") as resp:
        scraped = resp.read().decode()
    delivered = [
        line for line in scraped.splitlines()
        if line.startswith("noc_packets_delivered_total ")
    ]
    print(f"scraped {len(scraped.splitlines())} metric lines; {delivered[0]}")

    # latest frame + stream, as `multinoc top --url` consumes them
    frame = fetch_frame(server.address)
    print(f"latest frame: cycle {frame['cycle']}, seq {frame['seq']}")
    top = MeshTop(color=False)
    for streamed in stream_frames(server.address, limit=1):
        top.display(streamed)
    server.close()


if __name__ == "__main__":
    in_process()
    remote()
