#!/usr/bin/env python
"""Message-passing synchronisation: a producer/consumer pipeline.

"Multiprocessor systems require synchronization mechanisms among
processors ... The synchronization among processors can be done through
shared memory or explicit message exchange.  The second mechanism was
chosen due to the use of NoCs." (paper Section 2.4)

Processor 1 produces squares into processor 2's local memory (a NUMA
store through the NoC), then notifies; processor 2 waits, consumes the
batch, printfs a checksum and notifies back — a classic double-buffered
hand-off built only from the paper's wait/notify cells.
"""

from repro.core import MultiNoCPlatform

BATCHES = 4
BATCH_WORDS = 8
BUFFER = 0x300  # inside P2's local memory, away from its code

PRODUCER = f"""
; P1: produce {BATCHES} batches of squares into P2's buffer
        CLR  R0
        LDL  R9, 0             ; batch index
        LDI  R10, {BATCHES}
outer:  CLR  R1                ; i = 0
        LDI  R2, {1024 + BUFFER} ; P2's buffer through the NUMA window
        LDI  R3, {BATCH_WORDS}
        LDL  R4, 1
fill:   ; value = (batch*8 + i)^2, squared by repeated addition
        CLR  R5                ; square accumulator
        MOV  R6, R9
        SL0  R6, R6
        SL0  R6, R6
        SL0  R6, R6
        ADD  R6, R6, R1        ; n = batch*8 + i
        MOV  R7, R6
sq:     OR   R7, R7, R7
        JMPZD sqdone
        ADD  R5, R5, R6
        SUB  R7, R7, R4
        JMP  sq
sqdone: ST   R5, R2, R1        ; remote store into P2's memory
        ADD  R1, R1, R4
        SUB  R8, R3, R1
        JMPZD batch_done
        JMP  fill
batch_done:
        LDI  R5, 2
        LDI  R6, 0xFFFD
        ST   R5, R6, R0        ; notify P2: batch ready
        LDI  R5, 2
        LDI  R6, 0xFFFE
        ST   R5, R6, R0        ; wait until P2 consumed it
        ADD  R9, R9, R4
        SUB  R8, R10, R9
        JMPZD all_done
        JMP  outer
all_done:
        HALT
"""

CONSUMER = f"""
; P2: consume {BATCHES} batches, printf each checksum
        CLR  R0
        LDL  R9, 0
        LDI  R10, {BATCHES}
        LDL  R4, 1
outer:  LDI  R5, 1
        LDI  R6, 0xFFFE
        ST   R5, R6, R0        ; wait for P1's batch
        CLR  R1
        CLR  R5                ; checksum
        LDI  R2, {BUFFER}
        LDI  R3, {BATCH_WORDS}
sum:    LD   R7, R2, R1        ; local read: the data is already here
        ADD  R5, R5, R7
        ADD  R1, R1, R4
        SUB  R8, R3, R1
        JMPZD consumed
        JMP  sum
consumed:
        LDI  R6, 0xFFFF
        ST   R5, R6, R0        ; printf(checksum)
        LDI  R5, 1
        LDI  R6, 0xFFFD
        ST   R5, R6, R0        ; notify P1: buffer free
        ADD  R9, R9, R4
        SUB  R8, R10, R9
        JMPZD all_done
        JMP  outer
all_done:
        HALT
"""


def main() -> None:
    session = MultiNoCPlatform.standard().launch()
    session.host.sync()
    session.start(2, CONSUMER)
    session.start(1, PRODUCER)
    session.wait_all_halted(max_cycles=5_000_000)
    session.sim.step(6000)  # drain the serial link

    checksums = session.host.monitor(2).printf_values
    expected = [
        sum((b * BATCH_WORDS + i) ** 2 for i in range(BATCH_WORDS)) & 0xFFFF
        for b in range(BATCHES)
    ]
    print("batch checksums from P2:", checksums)
    print("expected               :", expected)
    assert checksums == expected
    p1 = session.system.processor(1).cpu
    p2 = session.system.processor(2).cpu
    print(f"P1 stalled {p1.cycles_stalled} cycles on remote stores/waits; "
          f"P2 stalled {p2.cycles_stalled} cycles waiting for data")
    print("producer/consumer pipeline OK")


if __name__ == "__main__":
    main()
