#!/usr/bin/env python
"""Post-mortem trace analytics walkthrough.

1. record a contended NoC workload (two flows colliding on one output
   port) into a TelemetrySink, then reconstruct every packet's critical
   path: per-hop latency decomposed into queueing / routing / blocked /
   serialization cycles, blocked cycles attributed to the interfering
   flow, hotspot links ranked;
2. run a small program with a call tree on the full platform, flush the
   R8 PC samples and render a symbol-resolved profile as folded stacks
   (flamegraph.pl / speedscope input) plus an annotated listing;
3. round-trip the platform trace through JSONL and diff the reloaded
   analysis against the live one — a self-diff must be clean.
"""

import json

from repro import MultiNoCPlatform
from repro.noc import HermesNetwork
from repro.telemetry import (
    TelemetrySink,
    analyze_trace,
    diff_traces,
    load_jsonl,
    write_jsonl,
)

PROGRAM = """
; two calls into emit(), so cycles fold under main;emit
main:   CLR  R0
        LDI  R2, 0xFFFF
        JSRD emit
        JSRD emit
        HALT
emit:   LDI  R1, 7
        ST   R1, R2, R0        ; printf(7)
        RTS
"""


def critical_paths() -> None:
    """Record a collision on router10>NORTH and decompose the damage."""
    sink = TelemetrySink()
    net = HermesNetwork(2, 2, telemetry=sink)
    sim = net.make_simulator()
    sim.reset()
    for i in range(3):
        net.send((0, 0), (1, 1), [10 + i, 20, 30])  # EAST then NORTH
        net.send((1, 0), (1, 1), [40 + i, 50])      # NORTH directly
    net.run_to_drain(sim)

    analysis = analyze_trace(sink)
    assert len(analysis.delivered()) == 6
    assert analysis.unresolved_hops == 0
    print(analysis.report())

    print("\nslowest packet, hop by hop:")
    worst = max(analysis.packets, key=lambda p: p.latency)
    for hop in worst.hops:
        blame = ", ".join(
            f"{flow} x{cycles}" for flow, cycles in hop.blocked_by
        )
        print(
            f"  {hop.router}:{hop.in_port}>{hop.out_port}  "
            f"queue={hop.queueing} route={hop.routing} "
            f"blocked={hop.blocked} serial={hop.serialization}"
            + (f"  (blocked by {blame})" if blame else "")
        )
    # the decomposition is cycle-exact, not approximate
    assert sum(worst.decomposition().values()) == worst.latency
    # the colliding flows blame each other
    assert analysis.contention
    top = analysis.hotspots(top=1)[0]
    assert top.name == "router10>NORTH"
    print(f"\nhotspot: {top.name} blocked {top.blocked_cycles} cycles")


def cpu_profile(tmp_jsonl: str) -> None:
    """Profile a call tree on processor 1 and emit folded stacks."""
    session = MultiNoCPlatform.standard().launch(telemetry=True)
    session.host.sync()
    program = session.run(1, PROGRAM)
    assert session.host.monitor(1).printf_values == [7, 7]

    analysis = session.analyze()  # flushes PC samples into the sink
    profile = analysis.profiles["proc1.r8"]
    print("functions by cycles:")
    for name, cycles in sorted(
        profile.functions().items(), key=lambda kv: -kv[1]
    ):
        pct = 100.0 * cycles / profile.total_cycles
        print(f"  {name:<10} {cycles:>6}  {pct:5.1f}%")
    assert {"main", "emit"} <= set(profile.functions())

    folded = profile.folded_stacks()
    print("\nfolded stacks (feed to flamegraph.pl):")
    for line in folded:
        print(f"  {line}")
    assert any(line.startswith("proc1.r8;main;emit ") for line in folded)

    print("\nannotated listing:")
    for line in profile.annotate(program.obj):
        print(f"  {line}")

    # the whole analysis survives a JSONL round trip...
    write_jsonl(session.telemetry, tmp_jsonl)
    reloaded = analyze_trace(load_jsonl(tmp_jsonl))
    assert reloaded.to_dict() == analysis.to_dict()
    # ...and a self-diff reports nothing
    diff = diff_traces(reloaded, analysis)
    assert diff.ok and not diff.regressions
    print(f"\nJSONL round-trip identical, self-diff clean: {diff.ok}")
    doc = json.dumps(analysis.to_dict())
    print(f"analysis document: {len(doc)} bytes of JSON")


def main() -> None:
    print("== critical paths & congestion attribution ==")
    critical_paths()
    print()
    print("== R8 profile, flame graph & trace diff ==")
    cpu_profile("/tmp/multinoc_trace_analysis.jsonl")


if __name__ == "__main__":
    main()
