#!/usr/bin/env python
"""The paper's future work, delivered: a C compiler for the R8.

"Another important tool is a C compiler to automatically generate R8
assembly code, allowing faster software implementation." (Section 5)

Compiles a C implementation of the sieve of Eratosthenes plus a
host-interactive GCD, shows a slice of the generated assembly, runs the
code on the stand-alone R8 simulator and then on the full MultiNoC.
"""

from repro.cc import compile_source, compile_to_asm
from repro.core import MultiNoCPlatform
from repro.r8 import R8Simulator

SIEVE = """
int flags[64];

void main() {
    int i;
    int j;
    int count = 0;
    for (i = 2; i < 64; ++i) flags[i] = 1;
    for (i = 2; i < 64; ++i) {
        if (flags[i]) {
            printf(i);              // each prime goes to the host
            count += 1;
            for (j = i * i; j < 64; j += i) flags[j] = 0;
        }
    }
    printf(count);
    halt();
}
"""

GCD = """
int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}

void main() {
    int a = scanf();
    int b = scanf();
    printf(gcd(a, b));
    halt();
}
"""


def main() -> None:
    print("compiling the sieve to R8 assembly...")
    asm = compile_to_asm(SIEVE)
    lines = asm.splitlines()
    print(f"  {len(lines)} lines of assembly; main() starts like this:")
    start = lines.index("main:")
    for line in lines[start : start + 10]:
        print("   ", line)

    print("\nrunning on the stand-alone R8 Simulator...")
    sim = R8Simulator()
    sim.load(compile_source(SIEVE))
    sim.activate()
    sim.run(max_instructions=3_000_000)
    primes, count = sim.printed[:-1], sim.printed[-1]
    print(f"  primes below 64: {primes}")
    print(f"  count: {count}, CPI {sim.cpi():.2f}, {sim.cycles} cycles")
    assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
                      47, 53, 59, 61]

    print("\nrunning the interactive GCD on the full MultiNoC...")
    session = MultiNoCPlatform.standard().launch()
    session.host.sync()
    inputs = iter([462, 1071])
    session.host.set_scanf_handler(1, lambda: next(inputs))
    obj = compile_source(GCD)
    addr = session.processor_address(1)
    session.host.load_program(addr, obj)
    session.host.activate(addr)
    session.sim.run_until(
        lambda: session.system.processor(1).cpu.halted, max_cycles=5_000_000
    )
    session.sim.step(4000)
    result = session.host.monitor(1).printf_values[-1]
    print(f"  gcd(462, 1071) computed on the board: {result}")
    assert result == 21
    print("C toolchain OK")


if __name__ == "__main__":
    main()
