#!/usr/bin/env python
"""A scripted debugging session in the R8 Simulator environment.

The paper's flow begins with "writing, simulating and debugging
assembly code" (Section 4) and pitches MultiNoC for teaching
(Section 5).  This example drives the debugger exactly like a student
at the prompt: disassemble, set breakpoints and watchpoints, single
step, inspect registers and memory.
"""

from repro.r8 import assemble
from repro.r8.debugger import Debugger

PROGRAM = """
; compute 13 factorial-style product steps into `result`
        CLR  R0
        LDI  R1, 1          ; accumulator
        LDI  R2, 5          ; n
        LDL  R3, 1
loop:   OR   R2, R2, R2
        JMPZD store
        ; accumulator *= n, by repeated addition
        CLR  R4
        MOV  R5, R2
mul:    OR   R5, R5, R5
        JMPZD muldone
        ADD  R4, R4, R1
        SUB  R5, R5, R3
        JMP  mul
muldone:
        MOV  R1, R4
        SUB  R2, R2, R3
        JMP  loop
store:  LDI  R6, result
        ST   R1, R6, R0
        HALT
result: .word 0
"""

SESSION = """
dis 0 6
break muldone
run
regs
mem result 1
unbreak muldone
watch result
run
mem result 1
"""


def main() -> None:
    dbg = Debugger()
    dbg.load_object(assemble(PROGRAM))

    for line in SESSION.strip().splitlines():
        line = line.strip()
        print(f"(r8db) {line}")
        print(dbg.execute(line))
        print()

    result = dbg.sim.memory[dbg.symbols["result"]]
    print(f"final result: {result} (5! = 120)")
    assert result == 120
    hit = dbg.sim.watch_hits[0]
    print(f"watchpoint saw a {hit[0]} of {hit[2]} at {hit[1]:#06x} "
          f"from PC {hit[3]:#06x}")


if __name__ == "__main__":
    main()
