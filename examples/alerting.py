#!/usr/bin/env python
"""Alerting & SLO walkthrough: declarative rules over live telemetry.

1. **live** — attach an `AlertEngine` to a session's live stream with a
   rule file: a deliberately-hot rule walks the full Prometheus-style
   lifecycle (inactive -> pending -> firing -> resolved) while an SLO
   objective tracks its error budget; stderr notices, a JSONL alert log
   and the `multinoc top` banner all fan out from the same transitions;
2. **replay** — mirror the live frames into the telemetry event stream,
   write the trace to JSONL, and replay it through a *fresh* engine:
   the replayed verdicts are bit-identical to the live ones, which is
   what lets `multinoc alerts check --trace` gate CI post-hoc.

The same thing from the command line:

    multinoc system prog.asm --alerts rules.alerts \
        --alert-log alerts.jsonl --trace-jsonl trace.jsonl
    multinoc alerts lint rules.alerts -v
    multinoc alerts check rules.alerts --trace trace.jsonl   # exit 1 if fired
"""

import io
import json

from repro import MultiNoCPlatform
from repro.telemetry import (
    MeshTop,
    TelemetrySink,
    check_frames,
    frames_from_trace,
    load_jsonl,
    parse_rules,
    write_jsonl,
)

PROGRAM = """
; count down from 30, printf each value, halt.
        CLR  R0
        LDI  R2, 0xFFFF
        LDL  R1, 30
        LDL  R3, 1
loop:   ST   R1, R2, R0        ; printf(R1)
        SUB  R1, R1, R3
        JMPZD done
        JMP  loop
done:   HALT
"""

# Any serial traffic lights up the processor-1 links, so this rule is
# guaranteed to pend (one 256-cycle stride), fire, and resolve when the
# run drains.  The SLO keeps a trailing error budget on p99 latency.
RULES = """
alert link_hot
    expr: link_util{link=~".*"} > 0.01
    for: 256
    severity: page
    annotation: link {{link}} utilisation {{value}}

slo delivery_latency
    expr: latency_p99 <= 500
    target: 0.9
    window: 4096
"""


def live(tmp_log="alerts.jsonl"):
    """The engine evaluates every live frame; sinks fan out."""
    print("== live alerting ==")
    notices = io.StringIO()
    session = MultiNoCPlatform.standard().launch()
    session.live_stream(stride=256)
    engine = session.alert_engine(RULES, log=tmp_log, notify=notices)

    session.host.sync()
    session.run(1, PROGRAM)
    engine.close()  # flush + resolve bookkeeping at end of run

    states = [(t["rule"], t["state"], t["cycle"]) for t in engine.transitions]
    for rule, state, cycle in states:
        print(f"  {rule:<10} {state:<9} @cycle {cycle}")
    assert ("link_hot", "firing") in {(r, s) for r, s, _ in states}
    assert engine.fired_ever()

    # the stderr-style notices carry the same lifecycle, human-readable
    assert "ALERT FIRING" in notices.getvalue()
    # ... as does the JSONL alert log
    logged = [json.loads(l) for l in open(tmp_log)]
    assert all(l["schema"] == "multinoc-alert/1" for l in logged)
    # ... and the dashboard banner summarises the current verdict
    banner = MeshTop(color=False).attach_alerts(engine).render(
        session.live.latest
    )
    print("  top banner:", [
        line for line in banner.splitlines() if "alert" in line.lower()
    ][0].strip())

    print(engine.report())
    return engine


def replay(live_engine, trace_path="trace.jsonl"):
    """Replayed verdicts from a stored trace match the live run."""
    print("\n== replay from stored trace ==")
    sink = TelemetrySink()
    session = MultiNoCPlatform.standard().launch(telemetry=sink)
    live_stream = session.live_stream(stride=256)
    live_stream.mirror_to(sink)  # every frame into the event stream
    engine = session.alert_engine(RULES)
    session.host.sync()
    session.run(1, PROGRAM)
    live_stream.force()
    session.system.flush_telemetry()
    engine.close()

    write_jsonl(sink, trace_path)
    frames = frames_from_trace(load_jsonl(trace_path))
    replayed = check_frames(parse_rules(RULES), frames)

    assert list(replayed.transitions) == list(engine.transitions)
    assert replayed.report() == engine.report()
    print(f"  {len(frames)} frames replayed; "
          f"{len(replayed.transitions)} transitions, bit-identical")
    print("  verdict:", "FIRED" if replayed.fired_ever() else "clean",
          "(exactly what `multinoc alerts check --trace` would gate on)")


if __name__ == "__main__":
    import tempfile
    import os

    with tempfile.TemporaryDirectory() as tmp:
        engine = live(os.path.join(tmp, "alerts.jsonl"))
        replay(engine, os.path.join(tmp, "trace.jsonl"))
