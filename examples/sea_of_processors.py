#!/usr/bin/env python
"""The "sea of processors" (paper abstract and Section 1).

"The main motivation to propose this design is to enable the
investigation of current trends to increase the number of embedded
processors in SoCs, leading to the concept of 'sea of processors'
systems."

Twelve R8 processors on a 4x4 mesh cooperatively sum the series
1..N_TOTAL: every processor computes a partial sum over its own chunk,
then a wait/notify chain reduces the partials — each processor reads its
successor's result straight out of that processor's local memory through
the NUMA window, adds its own, and passes the baton down until processor
1 printf's the grand total to the host.
"""

import time

from repro.core import MultiNoCPlatform

N_PROCS = 12
CHUNK = 50  # numbers per processor
RESULT_ADDR = 0x80  # where each processor parks its (partial) total


def window_base(pid: int, peer: int) -> int:
    """NUMA window base through which *pid* sees *peer*'s local memory.

    Windows are assigned in peer-id order (see
    MultiNoC._build_address_map): 1K per remote IP, starting at 1024.
    """
    others = [p for p in range(1, N_PROCS + 1) if p != pid]
    return 1024 * (1 + others.index(peer))


def worker(pid: int) -> str:
    """Partial sum of [(pid-1)*CHUNK + 1 .. pid*CHUNK], then reduce."""
    first = (pid - 1) * CHUNK + 1
    last = pid * CHUNK
    reduce_part = ""
    if pid < N_PROCS:
        # wait for the successor, then fetch its accumulated total
        successor_result = window_base(pid, pid + 1) + RESULT_ADDR
        reduce_part = f"""
        LDI  R3, {pid + 1}
        LDI  R2, 0xFFFE
        ST   R3, R2, R0      ; wait for P{pid + 1}
        LDI  R2, {successor_result}
        LD   R4, R2, R0      ; successor's accumulated total (NUMA read)
        ADD  R5, R5, R4
        LDI  R2, {RESULT_ADDR}
        ST   R5, R2, R0      ; re-publish the accumulated total
"""
    finish = (
        f"""
        LDI  R2, 0xFFFF
        ST   R5, R2, R0      ; P1 announces the grand total
        HALT
"""
        if pid == 1
        else f"""
        LDI  R3, {pid - 1}
        LDI  R2, 0xFFFD
        ST   R3, R2, R0      ; pass the baton to P{pid - 1}
        HALT
"""
    )
    return f"""
; worker {pid}: sum {first}..{last}, then chain-reduce
        CLR  R0
        LDI  R1, {first}
        LDI  R6, {last}
        LDL  R7, 1
        CLR  R5
sum:    ADD  R5, R5, R1
        SUB  R8, R6, R1
        JMPZD summed
        ADD  R1, R1, R7
        JMP  sum
summed: LDI  R2, {RESULT_ADDR}
        ST   R5, R2, R0      ; publish the partial for my predecessor
{reduce_part}{finish}
"""


def run_sea(strict_lockstep: bool = False):
    """Deploy and run the whole reduction; returns results + wall time."""
    t0 = time.perf_counter()
    session = MultiNoCPlatform(mesh=(4, 4), n_processors=N_PROCS).launch(
        strict_lockstep=strict_lockstep
    )
    session.host.sync()
    for pid in range(1, N_PROCS + 1):
        session.start(pid, worker(pid))
    start = session.sim.cycle
    session.wait_all_halted(max_cycles=10_000_000)
    elapsed = session.sim.cycle - start
    session.sim.step(6000)
    return session, elapsed, time.perf_counter() - t0


def main() -> None:
    n_total = N_PROCS * CHUNK
    expected = n_total * (n_total + 1) // 2

    print(f"deploying {N_PROCS} workers over a 4x4 Hermes mesh...")
    session, elapsed, wall = run_sea()

    total = session.host.monitor(1).printf_values[-1]
    print(f"sum(1..{n_total}) computed by the sea of processors: {total}")
    print(f"expected: {expected & 0xFFFF} (mod 2^16)")
    assert total == expected & 0xFFFF

    partials = [
        session.read(pid, RESULT_ADDR, 1)[0] for pid in range(1, N_PROCS + 1)
    ]
    print("accumulated totals down the chain:", partials)
    stalls = {
        pid: session.system.processor(pid).cpu.cycles_stalled
        for pid in (1, N_PROCS)
    }
    print(f"the chain drained {elapsed} cycles after the last activation "
          "(workers compute while later ones are still being loaded); "
          f"P1 (chain end) stalled {stalls[1]} cycles in wait states, "
          f"P{N_PROCS} (chain start) only {stalls[N_PROCS]}")

    print("\nre-running in strict lock-step (--no-idle-skip) for comparison...")
    strict_session, strict_elapsed, strict_wall = run_sea(strict_lockstep=True)
    assert strict_session.host.monitor(1).printf_values[-1] == total
    assert strict_elapsed == elapsed, "kernel modes must be cycle-exact"
    print(f"quiescence-aware kernel: {wall:.2f}s wall clock; "
          f"strict lock-step: {strict_wall:.2f}s "
          f"-> {strict_wall / wall:.1f}x kernel speedup, identical cycles")
    print("sea-of-processors reduction OK")


if __name__ == "__main__":
    main()
